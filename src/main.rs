//! `taichi` — command-line front end to the simulator.
//!
//! ```text
//! taichi run   [--mode M] [--seed N] [--util F] [--bursty] [--cp N] [--until MS]
//! taichi compare [--seed N] [--util F] [--cp N] [--until MS]
//! taichi vmstorm [--density D] [--vms N] [--mode M] [--seed N]
//! taichi modes
//! ```
//!
//! A thin, dependency-free argument parser over the library: the same
//! flows the examples script, but parameterized for exploration.

use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::sim::report::Table;
use taichi::sim::{Dist, Rng, SimDuration, SimTime};

use std::process::ExitCode;

/// Parsed command-line options (shared across subcommands; unused
/// flags are simply ignored by commands that don't consume them).
#[derive(Clone, Debug)]
struct Opts {
    mode: Mode,
    seed: u64,
    util: f64,
    bursty: bool,
    cp_tasks: u32,
    until_ms: u64,
    density: u32,
    vms: u32,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            mode: Mode::TaiChi,
            seed: 0xD1CE,
            util: 0.3,
            bursty: true,
            cp_tasks: 16,
            until_ms: 1000,
            density: 4,
            vms: 4,
        }
    }
}

fn parse_mode(s: &str) -> Option<Mode> {
    Some(match s {
        "baseline" => Mode::Baseline,
        "taichi" => Mode::TaiChi,
        "taichi-no-hwprobe" | "no-hwprobe" => Mode::TaiChiNoHwProbe,
        "taichi-vdp" | "vdp" => Mode::TaiChiVdp,
        "type2" => Mode::Type2,
        _ => return None,
    })
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--mode" => {
                let v = val("--mode")?;
                o.mode = parse_mode(v)
                    .ok_or_else(|| format!("unknown mode '{v}' (see `taichi modes`)"))?;
            }
            "--seed" => {
                let v = val("--seed")?;
                o.seed = v
                    .parse()
                    .map_err(|_| format!("--seed: '{v}' is not a number"))?;
            }
            "--util" => {
                let v = val("--util")?;
                o.util = v
                    .parse()
                    .map_err(|_| format!("--util: '{v}' is not a number"))?;
                if !(0.01..=2.0).contains(&o.util) {
                    return Err(format!("--util must be in [0.01, 2.0], got {}", o.util));
                }
            }
            "--bursty" => o.bursty = true,
            "--smooth" => o.bursty = false,
            "--cp" => {
                let v = val("--cp")?;
                o.cp_tasks = v
                    .parse()
                    .map_err(|_| format!("--cp: '{v}' is not a number"))?;
            }
            "--until" => {
                let v = val("--until")?;
                o.until_ms = v
                    .parse()
                    .map_err(|_| format!("--until: '{v}' is not a number (ms)"))?;
                if o.until_ms == 0 {
                    return Err("--until must be positive".into());
                }
            }
            "--density" => {
                let v = val("--density")?;
                o.density = v
                    .parse()
                    .map_err(|_| format!("--density: '{v}' is not a number"))?;
            }
            "--vms" => {
                let v = val("--vms")?;
                o.vms = v
                    .parse()
                    .map_err(|_| format!("--vms: '{v}' is not a number"))?;
                if o.vms == 0 {
                    return Err("--vms must be positive".into());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(o)
}

fn traffic(o: &Opts, dp_cpus: u32) -> TrafficGen {
    let pattern = if o.bursty {
        let duty = (o.util / 0.9).clamp(0.02, 1.0);
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(200.0 * (1.0 - duty) / duty.max(0.01)),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / 8.0),
        }
    } else {
        ArrivalPattern::OpenLoop {
            gap_us: Dist::exponential(1.5 / o.util / 8.0),
        }
    };
    TrafficGen::new(
        pattern,
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(CpuId).collect(),
    )
}

fn build(o: &Opts, mode: Mode) -> Machine {
    let cfg = MachineConfig {
        seed: o.seed,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, mode);
    // Spread the same aggregate offered load over however many DP CPUs
    // this mode actually has (type-2 loses one to emulation).
    let dp_cpus = m.services().len() as u32;
    m.add_traffic(traffic(o, dp_cpus));
    if o.cp_tasks > 0 {
        let synth = SynthCp::default();
        let mut rng = Rng::new(o.seed ^ 0xC11);
        m.schedule_cp_batch(synth.workload(o.cp_tasks, &mut rng), SimTime::ZERO);
    }
    m
}

fn report_row(mode: Mode, r: &RunReport) -> Vec<String> {
    vec![
        mode.to_string(),
        r.dp.packets().to_string(),
        format!("{:.2}", r.dp.total_latency().mean() / 1e3),
        format!("{:.2}", r.dp.total_latency().percentile(99.0) as f64 / 1e3),
        format!("{:.1}", r.mean_cp_turnaround_ms()),
        r.cp_finished.to_string(),
        r.yields.to_string(),
    ]
}

const HEADER: [&str; 7] = [
    "mode",
    "packets",
    "dp mean (us)",
    "dp p99 (us)",
    "cp mean (ms)",
    "cp finished",
    "yields",
];

fn cmd_run(o: &Opts) -> ExitCode {
    let mut m = build(o, o.mode);
    m.run_until(SimTime::from_millis(o.until_ms));
    let r = RunReport::collect(&m);
    let mut t = Table::new(
        &format!(
            "taichi run — mode {} seed {:#x} util {:.0}% {} cp {} for {} ms",
            o.mode,
            o.seed,
            o.util * 100.0,
            if o.bursty { "bursty" } else { "smooth" },
            o.cp_tasks,
            o.until_ms
        ),
        &HEADER,
    );
    t.row(&report_row(o.mode, &r));
    print!("{}", t.render());
    ExitCode::SUCCESS
}

fn cmd_compare(o: &Opts) -> ExitCode {
    let mut t = Table::new(
        &format!(
            "taichi compare — seed {:#x} util {:.0}% cp {} for {} ms",
            o.seed,
            o.util * 100.0,
            o.cp_tasks,
            o.until_ms
        ),
        &HEADER,
    );
    let mut cp_means = Vec::new();
    for mode in Mode::all() {
        let mut m = build(o, mode);
        m.run_until(SimTime::from_millis(o.until_ms));
        let r = RunReport::collect(&m);
        cp_means.push((mode, r.mean_cp_turnaround_ms()));
        t.row(&report_row(mode, &r));
    }
    print!("{}", t.render());
    if let (Some(base), Some(tc)) = (
        cp_means.iter().find(|(m, _)| *m == Mode::Baseline),
        cp_means.iter().find(|(m, _)| *m == Mode::TaiChi),
    ) {
        if tc.1 > 0.0 {
            println!(
                "\ncontrol-plane speedup (baseline/taichi): {:.2}x",
                base.1 / tc.1
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_vmstorm(o: &Opts) -> ExitCode {
    let mut m = build(
        &Opts {
            cp_tasks: 0,
            ..o.clone()
        },
        o.mode,
    );
    let factory = TaskFactory::default();
    for i in 0..o.vms {
        let mut req =
            VmCreateRequest::at_density(i as u64, o.density, SimTime::from_millis(i as u64 * 5));
        req.qemu_boot = SimDuration::from_millis(10);
        m.schedule_vm_create(req, &factory);
    }
    let mut horizon = SimTime::from_secs(2);
    while (m.vm_startup_times().len() as u32) < o.vms && horizon < SimTime::from_secs(120) {
        m.run_until(horizon);
        horizon += SimDuration::from_secs(2);
    }
    let times = m.vm_startup_times();
    if (times.len() as u32) < o.vms {
        eprintln!(
            "error: only {}/{} VMs started within 120 s of simulated time",
            times.len(),
            o.vms
        );
        return ExitCode::FAILURE;
    }
    let mut t = Table::new(
        &format!(
            "taichi vmstorm — mode {} density {}x, {} VMs",
            o.mode, o.density, o.vms
        ),
        &["vm", "startup (ms)"],
    );
    for (i, d) in times.iter().enumerate() {
        t.row(&[i.to_string(), format!("{:.1}", d.as_millis_f64())]);
    }
    let mean = times.iter().map(|d| d.as_millis_f64()).sum::<f64>() / times.len() as f64;
    t.row(&["mean".into(), format!("{mean:.1}")]);
    print!("{}", t.render());
    ExitCode::SUCCESS
}

fn cmd_modes() -> ExitCode {
    println!("available modes:");
    for m in Mode::all() {
        let desc = match m {
            Mode::Baseline => "production static partitioning (8 DP + 4 CP pCPUs)",
            Mode::TaiChi => "full Tai Chi hybrid virtualization",
            Mode::TaiChiNoHwProbe => {
                "Tai Chi without the hardware workload probe (Table 5 ablation)"
            }
            Mode::TaiChiVdp => "type-1-like: data plane inside vCPUs (§6.3)",
            Mode::Type2 => "QEMU+KVM-like: CP in a guest OS, 1 DP CPU lost to emulation",
        };
        println!("  {:<18} {desc}", m.to_string());
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: taichi <command> [flags]\n\
         \n\
         commands:\n\
         \x20 run       simulate one mode and print the run report\n\
         \x20 compare   run every scheduling mode on the same workload\n\
         \x20 vmstorm   VM-creation storm (Figs. 2/17 style)\n\
         \x20 modes     list scheduling modes\n\
         \n\
         flags:\n\
         \x20 --mode M      scheduling mode (default taichi)\n\
         \x20 --seed N      RNG seed (default 0xD1CE as decimal 53710)\n\
         \x20 --util F      target DP utilization 0.01-2.0 (default 0.3)\n\
         \x20 --bursty      on/off bursty arrivals (default)\n\
         \x20 --smooth      smooth Poisson arrivals\n\
         \x20 --cp N        concurrent synth_cp tasks (default 16)\n\
         \x20 --until MS    simulated horizon in ms (default 1000)\n\
         \x20 --density D   vmstorm instance density (default 4)\n\
         \x20 --vms N       vmstorm VM count (default 4)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "modes" {
        return cmd_modes();
    }
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "vmstorm" => cmd_vmstorm(&opts),
        _ => {
            eprintln!("error: unknown command '{cmd}'");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_opts(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_when_no_flags() {
        let o = parse(&[]).expect("empty args parse");
        assert_eq!(o.mode, Mode::TaiChi);
        assert_eq!(o.cp_tasks, 16);
        assert!(o.bursty);
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--mode",
            "type2",
            "--seed",
            "7",
            "--util",
            "0.5",
            "--smooth",
            "--cp",
            "3",
            "--until",
            "250",
            "--density",
            "2",
            "--vms",
            "6",
        ])
        .expect("valid flags parse");
        assert_eq!(o.mode, Mode::Type2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.util, 0.5);
        assert!(!o.bursty);
        assert_eq!(o.cp_tasks, 3);
        assert_eq!(o.until_ms, 250);
        assert_eq!(o.density, 2);
        assert_eq!(o.vms, 6);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--util", "9"]).is_err());
        assert!(parse(&["--until", "0"]).is_err());
        assert!(parse(&["--vms", "0"]).is_err());
        assert!(parse(&["--seed", "xyz"]).is_err());
        assert!(parse(&["--mode", "nope"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--mode"]).is_err(), "missing value");
    }

    #[test]
    fn mode_aliases() {
        assert_eq!(parse_mode("vdp"), Some(Mode::TaiChiVdp));
        assert_eq!(parse_mode("no-hwprobe"), Some(Mode::TaiChiNoHwProbe));
        assert_eq!(parse_mode(""), None);
    }
}
