//! Tai Chi: hybrid-virtualization co-scheduling for SmartNICs.
//!
//! This is the facade crate of the Tai Chi reproduction (SOSP 2025,
//! Alibaba Group): a deterministic simulation of a SmartNIC SoC plus a
//! faithful implementation of the Tai Chi scheduling framework — the
//! softirq-based vCPU scheduler, the unified IPI orchestrator, and the
//! software/hardware workload probes — together with the paper's
//! baselines and its entire evaluation.
//!
//! # Quickstart
//!
//! ```
//! use taichi::core::machine::{Machine, Mode};
//! use taichi::core::MachineConfig;
//! use taichi::cp::SynthCp;
//! use taichi::sim::{Rng, SimTime};
//!
//! // A 12-CPU SmartNIC (8 data-plane + 4 control-plane) under Tai Chi.
//! let mut machine = Machine::new(MachineConfig::default(), Mode::TaiChi);
//!
//! // 8 concurrent 50 ms control-plane tasks, zero code modifications:
//! // they are plain programs bound by CPU affinity.
//! let synth = SynthCp::default();
//! let mut rng = Rng::new(42);
//! let batch = machine.schedule_cp_batch(synth.workload(8, &mut rng), SimTime::ZERO);
//!
//! machine.run_until(SimTime::from_millis(200));
//! assert_eq!(machine.batch_threads(batch).len(), 8);
//! ```
//!
//! # Crate map
//!
//! - [`core`]: the paper's contribution — scheduler, orchestrator,
//!   probes, machine composition, run reports.
//! - [`sim`]: deterministic discrete-event substrate.
//! - [`hw`]: SmartNIC hardware model (accelerator, rings, APIC, PCIe).
//! - [`os`]: kernel model (threads, fair scheduling, non-preemptible
//!   routines, spinlocks, hotplug).
//! - [`virt`]: vCPU contexts and virtualization cost models.
//! - [`dp`]: poll-mode data-plane services and traffic generators.
//! - [`cp`]: control-plane task programs and the VM lifecycle.
//! - [`workloads`]: fio/netperf/sockperf/ping/MySQL/Nginx analogues.

pub use taichi_core as core;
pub use taichi_cp as cp;
pub use taichi_dp as dp;
pub use taichi_hw as hw;
pub use taichi_os as os;
pub use taichi_sim as sim;
pub use taichi_virt as virt;
pub use taichi_workloads as workloads;
