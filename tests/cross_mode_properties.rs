//! Cross-mode invariants: properties that must hold in *every*
//! scheduling regime, exercised through the public facade.

use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::SynthCp;
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::sim::{Dist, Rng, SimTime};

fn bursty(dp_cpus: u32) -> TrafficGen {
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp_cpus as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(CpuId).collect(),
    )
}

fn loaded_machine(mode: Mode, seed: u64) -> Machine {
    let cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, mode);
    let dp = m.services().len() as u32;
    m.add_traffic(bursty(dp));
    let synth = SynthCp::default();
    let mut rng = Rng::new(seed ^ 0xAB);
    m.schedule_cp_batch(synth.workload(12, &mut rng), SimTime::ZERO);
    m
}

#[test]
fn every_mode_completes_cp_work() {
    for mode in Mode::all() {
        let mut m = loaded_machine(mode, 1);
        m.run_until(SimTime::from_secs(3));
        let r = RunReport::collect(&m);
        assert_eq!(r.cp_finished, 12, "{mode}: CP tasks must complete");
    }
}

#[test]
fn no_mode_drops_packets_below_saturation() {
    for mode in Mode::all() {
        let mut m = loaded_machine(mode, 2);
        m.run_until(SimTime::from_millis(400));
        let r = RunReport::collect(&m);
        assert_eq!(r.dp_dropped, 0, "{mode}: drops below saturation");
        assert!(r.dp.packets() > 50_000, "{mode}: traffic flows");
    }
}

#[test]
fn baseline_and_type2_never_yield() {
    for mode in [Mode::Baseline, Mode::Type2] {
        let mut m = loaded_machine(mode, 3);
        m.run_until(SimTime::from_millis(300));
        let r = RunReport::collect(&m);
        assert_eq!(r.yields, 0, "{mode} has no vCPUs to yield to");
        assert_eq!(r.hw_probe_exits, 0);
    }
}

#[test]
fn taichi_modes_yield_and_account_exits() {
    for mode in [Mode::TaiChi, Mode::TaiChiNoHwProbe, Mode::TaiChiVdp] {
        let mut m = loaded_machine(mode, 4);
        m.run_until(SimTime::from_millis(500));
        let r = RunReport::collect(&m);
        assert!(r.yields > 0, "{mode}: expected yields");
        // Every yield eventually produces exactly one completed exit;
        // in-flight grants at the horizon account for any remainder.
        let exits = r.hw_probe_exits + r.slice_exits + r.halt_exits;
        assert!(
            exits <= r.yields && exits + 16 >= r.yields,
            "{mode}: yields {} vs exits {exits}",
            r.yields
        );
        if mode == Mode::TaiChiNoHwProbe {
            assert_eq!(r.hw_probe_exits, 0, "probe disabled");
        }
    }
}

#[test]
fn dp_latency_ordering_matches_design() {
    // Mean DP latency: baseline <= taichi (tiny pollution) << vdp
    // (guest tax); type2 is higher than baseline (interference tax).
    let mut means = std::collections::HashMap::new();
    for mode in Mode::all() {
        let mut m = loaded_machine(mode, 5);
        m.run_until(SimTime::from_millis(400));
        let r = RunReport::collect(&m);
        means.insert(format!("{mode}"), r.dp.software_latency().mean());
    }
    let g = |k: &str| means[k];
    assert!(g("taichi") < g("baseline") * 1.06, "taichi near-native");
    assert!(g("taichi-vdp") > g("baseline") * 1.04, "vdp pays guest tax");
    assert!(g("type2") > g("baseline") * 1.05, "type2 pays interference");
}

#[test]
fn report_utilization_and_duration_consistent() {
    let mut m = loaded_machine(Mode::TaiChi, 6);
    m.run_until(SimTime::from_millis(250));
    let r = RunReport::collect(&m);
    assert_eq!(r.duration.as_millis_f64(), 250.0);
    assert_eq!(r.dp_utilization.len(), 8);
    for (i, u) in r.dp_utilization.iter().enumerate() {
        assert!((0.0..=1.0).contains(u), "cpu{i} utilization {u}");
    }
    // pps derived from packets and duration.
    let expect = r.dp.packets() as f64 / 0.25;
    assert!((r.dp_pps() - expect).abs() < 1.0);
}

#[test]
fn posted_interrupts_only_with_vcpus() {
    let mut base = loaded_machine(Mode::Baseline, 7);
    base.run_until(SimTime::from_millis(200));
    assert_eq!(base.posted_interrupts(), 0);
    assert_eq!(base.orchestrator().woken_count(), 0);
}

#[test]
fn trace_replay_gives_identical_offered_load_across_modes() {
    // Capture one bursty trace, replay it through every mode: the
    // machine must see exactly the same packets everywhere (trace
    // replay is the strongest form of the paired-workload guarantee).
    use taichi::dp::Trace;
    use taichi::sim::SimDuration;
    let mut gen = bursty(8);
    let mut rng = Rng::new(99);
    let trace = Trace::capture(&mut gen, &mut rng, SimDuration::from_millis(150));
    assert!(trace.len() > 10_000, "trace too small: {}", trace.len());

    let mut totals = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi, Mode::TaiChiVdp] {
        let cfg = MachineConfig {
            seed: 5,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        m.add_traffic(trace.replayer(IoKind::Network));
        let synth = SynthCp::default();
        let mut r2 = Rng::new(1);
        m.schedule_cp_batch(synth.workload(8, &mut r2), SimTime::ZERO);
        m.run_until(SimTime::from_millis(150));
        // Offered = everything that reached a ring: processed, still
        // queued, or dropped (slower modes may have more in flight at
        // the horizon, but arrivals must match).
        let offered: u64 = m
            .services()
            .iter()
            .map(|s| s.processed() + s.pending() as u64 + s.dropped())
            .sum();
        totals.push(offered);
    }
    assert_eq!(totals[0], totals[1], "baseline vs taichi offered load");
    // vdp processes slower; a handful of packets may still sit in the
    // accelerator pipeline (not yet in any ring) at the horizon.
    let diff = totals[1].abs_diff(totals[2]);
    assert!(diff <= 8, "taichi vs vdp offered load differs by {diff}");
}
