//! Causal scheduler invariants, asserted over the deterministic trace.
//!
//! These tests drive real workloads and then use the trace query API to
//! check *why* scheduling events happened, not just how many there
//! were: every hardware-probe VM-exit must be provoked by a probe
//! signal, every VM-enter must come through the dedicated softirq, and
//! every lock-context reschedule must sit between an exit and a
//! re-enter of the same vCPU.

use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::{SynthCp, TaskFactory};
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::os::{LockId, Program};
use taichi::sim::{Dist, Rng, SimTime, TraceKind, TraceTag};

fn bursty(dp_cpus: u32) -> TrafficGen {
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(CpuId).collect(),
    )
}

fn traced_config(seed: u64, capacity: usize) -> MachineConfig {
    let mut cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    cfg.trace.enabled = true;
    cfg.trace.capacity = capacity;
    cfg
}

/// A short mixed run (traffic + CP tasks) that exercises yields, probe
/// IRQs, and slice expiries in Tai Chi mode.
fn mixed_run(mode: Mode, seed: u64, millis: u64) -> Machine {
    let mut m = Machine::new(traced_config(seed, 1 << 20), mode);
    m.add_traffic(bursty(8));
    let synth = SynthCp::default();
    let mut rng = Rng::new(seed ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    m.run_until(SimTime::from_millis(millis));
    m
}

#[test]
fn every_hw_probe_exit_has_a_probe_signal_on_its_cpu() {
    let m = mixed_run(Mode::TaiChi, 77, 20);
    let t = m.tracer().expect("trace enabled");
    assert_eq!(t.dropped(), 0, "ring evicted events; causal scan unsound");

    let pairs = t.causal_pairs(
        &[TraceTag::ProbeIrq, TraceTag::ProbeRecheck],
        &[TraceTag::VmExit],
    );
    let mut probe_exits = 0usize;
    for (cause, effect) in pairs {
        let TraceKind::VmExit { reason, .. } = effect.kind else {
            unreachable!()
        };
        if reason != "hw_probe" {
            continue;
        }
        probe_exits += 1;
        let cause = cause.unwrap_or_else(|| {
            panic!(
                "hw_probe exit at {:?} on cpu {} has no prior probe signal",
                effect.at, effect.cpu
            )
        });
        assert!(cause.seq < effect.seq);
        assert!(
            cause.at <= effect.at,
            "probe signal after its exit: {cause:?} -> {effect:?}"
        );
    }
    // Non-vacuity: this workload must actually provoke probe exits.
    assert!(probe_exits > 0, "workload produced no hw_probe exits");
    let r = RunReport::collect(&m);
    assert!(r.hw_probe_exits > 0);
}

#[test]
fn every_vm_enter_comes_through_the_taichi_softirq() {
    let m = mixed_run(Mode::TaiChi, 78, 20);
    let t = m.tracer().expect("trace enabled");
    assert_eq!(t.dropped(), 0, "ring evicted events; causal scan unsound");

    // Only SoftirqKind::TaiChiVcpu is ever raised in a machine run, so
    // a dispatch cause is necessarily the vCPU-switch softirq.
    let pairs = t.causal_pairs(&[TraceTag::SoftirqDispatch], &[TraceTag::VmEnter]);
    assert!(!pairs.is_empty(), "workload produced no VM-enters");
    for (cause, effect) in &pairs {
        let cause = cause.expect("VM-enter without a softirq dispatch on its CPU");
        let TraceKind::SoftirqDispatch { kind } = cause.kind else {
            unreachable!()
        };
        assert_eq!(kind, "taichi_vcpu");
        assert!(cause.seq < effect.seq);
    }

    // And the grant that raised the softirq names the vCPU that enters.
    for (grant, enter) in t.causal_pairs(&[TraceTag::YieldGrant], &[TraceTag::VmEnter]) {
        let grant = grant.expect("VM-enter without a grant on its CPU");
        let (TraceKind::YieldGrant { vcpu: g }, TraceKind::VmEnter { vcpu: e }) =
            (grant.kind, enter.kind)
        else {
            unreachable!()
        };
        assert_eq!(g, e, "grant/enter vCPU mismatch on cpu {}", enter.cpu);
    }
}

#[test]
fn lock_reschedules_sit_between_exit_and_reenter_of_the_same_vcpu() {
    // Lock storm: tasks hammering one driver lock under preempting
    // traffic — §4.1's safe rescheduling must move lock holders to
    // another host, and the trace must show exit → reschedule → enter.
    let mut m = Machine::new(traced_config(31, 1 << 20), Mode::TaiChi);
    m.add_traffic(bursty(8));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(32);
    let progs: Vec<Program> = (0..30)
        .map(|_| factory.device_init(LockId(1), 3, &mut rng))
        .collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_millis(30));
    let t = m.tracer().expect("trace enabled");
    assert_eq!(t.dropped(), 0, "ring evicted events; causal scan unsound");

    let events = t.snapshot();
    let rescheds: Vec<_> = events
        .iter()
        .filter(|e| e.kind.tag() == TraceTag::LockReschedule)
        .collect();
    assert!(
        !rescheds.is_empty(),
        "workload produced no lock reschedules"
    );
    for r in rescheds {
        let TraceKind::LockReschedule { vcpu } = r.kind else {
            unreachable!()
        };
        let exited_before = events.iter().any(|e| {
            e.seq < r.seq && matches!(e.kind, TraceKind::VmExit { vcpu: v, .. } if v == vcpu)
        });
        assert!(
            exited_before,
            "lock reschedule of vcpu {vcpu} with no prior VM-exit"
        );
        // The reschedule re-places the vCPU on cpu `r.cpu`: the next
        // enter of this vCPU happens there.
        let reentered = events.iter().find(|e| {
            e.seq > r.seq && matches!(e.kind, TraceKind::VmEnter { vcpu: v } if v == vcpu)
        });
        if let Some(enter) = reentered {
            assert_eq!(
                enter.cpu, r.cpu,
                "vcpu {vcpu} re-entered on a different host than rescheduled"
            );
        }
    }
    let r = RunReport::collect(&m);
    assert!(r.lock_reschedules > 0);
}

#[test]
fn trace_is_available_in_every_mode() {
    for mode in Mode::all() {
        let m = mixed_run(mode, 99, 5);
        let t = m.tracer().unwrap_or_else(|| panic!("{mode}: no tracer"));
        assert!(!t.is_empty(), "{mode}: no events recorded");
        let tsv = m.trace_tsv().expect("tracer present");
        assert!(tsv.starts_with("# taichi-trace v1\n"), "{mode}: bad header");
        assert!(tsv.contains("# dropped\t"), "{mode}: missing footer");
        // Baseline has no Tai Chi scheduler: it must never record
        // yields, while Tai Chi modes must.
        let grants = t.matching(TraceTag::YieldGrant).len();
        if mode.has_taichi() {
            assert!(grants > 0, "{mode}: no yield grants traced");
        } else {
            assert_eq!(grants, 0, "{mode}: baseline traced yield grants");
        }
    }
}

#[test]
fn disabled_trace_records_nothing() {
    // Default config: trace off. (When the TAICHI_TRACE env override is
    // set the tracer legitimately exists, so only assert without it.)
    if std::env::var_os("TAICHI_TRACE").is_some() {
        return;
    }
    let cfg = MachineConfig {
        seed: 7,
        ..MachineConfig::default()
    };
    assert!(!cfg.trace.enabled, "trace must default to off");
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(bursty(8));
    m.run_until(SimTime::from_millis(5));
    assert!(m.tracer().is_none(), "tracer allocated while disabled");
    assert!(m.trace_tsv().is_none());
    assert!(m.failure_dump("off").is_none());
}

#[test]
fn failure_dump_guard_is_silent_without_a_panic() {
    // The RAII guard writes $TAICHI_TRACE only while panicking; a
    // passing test must drop it without side effects.
    let m = mixed_run(Mode::TaiChi, 5, 2);
    let guard = m.failure_dump("trace_causality::no_panic");
    assert!(guard.is_some());
    drop(guard);
}

#[test]
fn bounded_ring_evicts_oldest_but_keeps_counting() {
    // A deliberately tiny ring under a real workload: memory stays
    // bounded while counters and the drop tally keep the totals.
    let mut m = Machine::new(traced_config(13, 256), Mode::TaiChi);
    m.add_traffic(bursty(8));
    m.run_until(SimTime::from_millis(5));
    let t = m.tracer().expect("trace enabled");
    assert_eq!(t.len(), 256, "ring should be full");
    assert!(t.dropped() > 0, "this workload must overflow 256 events");
    assert_eq!(t.total_emitted(), t.len() as u64 + t.dropped());
    // Survivors are the newest events, still in seq order.
    let snap = t.snapshot();
    assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(snap.last().unwrap().seq + 1, t.total_emitted());
}
