//! The zero-modification transparency claim (C3, §4.2): control-plane
//! programs contain no Tai Chi concepts, yet execute correctly on
//! vCPUs, keep native IPC semantics, and behave identically across
//! deployment modes.

use taichi::core::machine::{Machine, Mode};
use taichi::core::MachineConfig;
use taichi::cp::{CpTaskKind, TaskFactory};
use taichi::os::{Program, Segment, ThreadState};
use taichi::sim::{Rng, SimDuration, SimTime};

fn machine(mode: Mode, seed: u64) -> Machine {
    let cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    Machine::new(cfg, mode)
}

#[test]
fn identical_programs_run_in_every_mode() {
    // The very same Program values — bit-identical — complete in every
    // mode; only scheduling differs.
    let factory = TaskFactory::default();
    let mut rng = Rng::new(11);
    let programs: Vec<Program> = (0..6)
        .map(|i| {
            let kind = match i % 3 {
                0 => CpTaskKind::DeviceManagement,
                1 => CpTaskKind::Monitoring,
                _ => CpTaskKind::Orchestration,
            };
            factory.build(kind, &mut rng)
        })
        .collect();
    for mode in Mode::all() {
        let mut m = machine(mode, 21);
        let batch = m.schedule_cp_batch(programs.clone(), SimTime::ZERO);
        m.run_until(SimTime::from_secs(2));
        for &tid in m.batch_threads(batch) {
            assert_eq!(
                m.kernel().thread_info(tid).state,
                ThreadState::Finished,
                "{mode}: program stranded"
            );
        }
    }
}

#[test]
fn native_notify_ipc_crosses_the_virtualization_boundary() {
    // A sleeper and a notifier, spawned as plain programs. Under Tai
    // Chi they may land on vCPUs and pCPUs arbitrarily; the Notify
    // (signal/futex analogue) must still wake the sleeper via the
    // unified IPI orchestrator.
    let mut m = machine(Mode::TaiChi, 22);
    let sleeper = Program::new()
        .compute(SimDuration::from_micros(100))
        .sleep(SimDuration::from_secs(30))
        .compute(SimDuration::from_micros(100));
    let b1 = m.schedule_cp_batch(vec![sleeper], SimTime::ZERO);
    m.run_until(SimTime::from_millis(5));
    let sleeper_tid = m.batch_threads(b1)[0];
    assert_eq!(
        m.kernel().thread_info(sleeper_tid).state,
        ThreadState::Sleeping
    );
    let notifier = Program::new()
        .compute(SimDuration::from_micros(50))
        .then(Segment::Notify {
            target: sleeper_tid,
        });
    let b2 = m.schedule_cp_batch(vec![notifier], m.now());
    m.run_until(SimTime::from_millis(100));
    assert_eq!(
        m.kernel().thread_info(sleeper_tid).state,
        ThreadState::Finished,
        "notify must cut the 30 s sleep short"
    );
    assert_eq!(
        m.kernel().thread_info(m.batch_threads(b2)[0]).state,
        ThreadState::Finished
    );
    // The wake completed far before the nominal sleep expiry.
    let t = m.kernel().thread_info(sleeper_tid).finished_at;
    assert!(t.expect("finished") < SimTime::from_secs(1));
}

#[test]
fn monitoring_loops_keep_their_cadence_on_vcpus() {
    // Periodic monitors (sleep-based cadence) must not drift massively
    // just because their CPU time comes from borrowed DP cycles.
    let factory = TaskFactory::default();
    let mut rng = Rng::new(23);
    let monitor = factory.monitoring(10, SimDuration::from_millis(5), &mut rng);
    let ideal_ms = 10.0 * 5.0; // ten 5 ms sleeps dominate the runtime
    for mode in [Mode::Baseline, Mode::TaiChi] {
        let mut m = machine(mode, 24);
        let b = m.schedule_cp_batch(vec![monitor.clone()], SimTime::ZERO);
        m.run_until(SimTime::from_secs(2));
        let tid = m.batch_threads(b)[0];
        let t = m.kernel().thread_info(tid);
        assert_eq!(t.state, ThreadState::Finished, "{mode}");
        let ms = t.turnaround().expect("finished").as_millis_f64();
        assert!(
            ms < ideal_ms * 1.5,
            "{mode}: monitor cadence drifted to {ms:.1} ms"
        );
    }
}

#[test]
fn vcpus_appear_as_native_cpus() {
    let m = machine(Mode::TaiChi, 25);
    let kernel = m.kernel();
    // 4 CP pCPUs + 8 vCPUs registered and online.
    let cpus = kernel.known_cpus();
    assert_eq!(cpus.len(), 12);
    for c in &cpus {
        assert_eq!(
            kernel.cpu_phase(*c),
            Some(taichi::os::kernel::CpuPhase::Online),
            "{c} must be online"
        );
    }
    // vCPU IDs continue the physical numbering, like hotplugged cores.
    assert!(cpus.iter().any(|c| c.0 >= 12));
}

#[test]
fn baseline_has_no_vcpu_cpus() {
    let m = machine(Mode::Baseline, 26);
    assert_eq!(m.kernel().known_cpus().len(), 4);
    assert!(m.vsched().is_empty());
}
