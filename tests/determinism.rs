//! Bit-level reproducibility: the reproduction contract requires that
//! a seed fully determines a run, in every mode, including the heavy
//! benchmark paths.

use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::sim::{Dist, Rng, SimTime};

fn fingerprint(mode: Mode, seed: u64) -> Vec<u64> {
    let cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(seed ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    let factory = TaskFactory::default();
    m.schedule_vm_create(
        VmCreateRequest::at_density(0, 2, SimTime::from_millis(10)),
        &factory,
    );
    m.run_until(SimTime::from_millis(700));
    let r = RunReport::collect(&m);
    vec![
        r.dp.packets(),
        r.dp.total_latency().mean().to_bits(),
        r.dp.total_latency().percentile(99.9),
        r.cp_finished,
        r.cp_turnaround.mean().to_bits(),
        r.cp_spin_time_ns,
        r.yields,
        r.hw_probe_exits,
        r.slice_exits,
        r.lock_reschedules,
        r.vm_startups.first().map(|d| d.as_nanos()).unwrap_or(0),
        m.orchestrator().woken_count(),
        m.posted_interrupts(),
    ]
}

#[test]
fn identical_seeds_identical_runs_every_mode() {
    for mode in Mode::all() {
        assert_eq!(
            fingerprint(mode, 77),
            fingerprint(mode, 77),
            "{mode}: nondeterminism detected"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(Mode::TaiChi, 1);
    let b = fingerprint(Mode::TaiChi, 2);
    assert_ne!(a, b, "seeds must matter");
}

#[test]
fn workload_measurements_are_reproducible() {
    use taichi::sim::SimDuration;
    use taichi::workloads::{measure, BenchTraffic};
    let t = BenchTraffic::net(512.0, 0.35, true);
    let a = measure(Mode::TaiChi, &t, SimDuration::from_millis(120), 9);
    let b = measure(Mode::TaiChi, &t, SimDuration::from_millis(120), 9);
    assert_eq!(a.pps.to_bits(), b.pps.to_bits());
    assert_eq!(a.lat_p999_ns, b.lat_p999_ns);
    assert_eq!(a.yields, b.yields);
    assert_eq!(a.drops, b.drops);
}

/// Same seed, trace enabled: the exported TSV must be byte-identical
/// across runs — the trace layer is part of the determinism contract.
fn traced_tsv(mode: Mode, seed: u64) -> String {
    let mut cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    cfg.trace.enabled = true;
    let mut m = Machine::new(cfg, mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(seed ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    m.run_until(SimTime::from_millis(200));
    m.trace_tsv().expect("trace was enabled")
}

#[test]
fn identical_seeds_identical_traces_every_mode() {
    for mode in Mode::all() {
        let a = traced_tsv(mode, 77);
        let b = traced_tsv(mode, 77);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{mode}: trace TSV differs between identical runs");
    }
}

#[test]
fn enabling_trace_does_not_perturb_the_run() {
    // The tracer only observes: a traced run and an untraced run of the
    // same seed must produce the same report fingerprint. (`fingerprint`
    // runs with trace disabled; compare against a traced twin.)
    let plain = fingerprint(Mode::TaiChi, 77);
    let cfg = {
        let mut c = MachineConfig {
            seed: 77,
            ..MachineConfig::default()
        };
        c.trace.enabled = true;
        c
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(77 ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    let factory = TaskFactory::default();
    m.schedule_vm_create(
        VmCreateRequest::at_density(0, 2, SimTime::from_millis(10)),
        &factory,
    );
    m.run_until(SimTime::from_millis(700));
    let r = RunReport::collect(&m);
    let traced = vec![
        r.dp.packets(),
        r.dp.total_latency().mean().to_bits(),
        r.dp.total_latency().percentile(99.9),
        r.cp_finished,
        r.cp_turnaround.mean().to_bits(),
        r.cp_spin_time_ns,
        r.yields,
        r.hw_probe_exits,
        r.slice_exits,
        r.lock_reschedules,
        r.vm_startups.first().map(|d| d.as_nanos()).unwrap_or(0),
        m.orchestrator().woken_count(),
        m.posted_interrupts(),
    ];
    assert_eq!(plain, traced, "tracing must not perturb the schedule");
}

#[test]
fn ping_benchmark_reproducible() {
    use taichi::workloads::ping;
    let a = ping::run(Mode::TaiChiNoHwProbe, 5);
    let b = ping::run(Mode::TaiChiNoHwProbe, 5);
    assert_eq!(a.max_us.to_bits(), b.max_us.to_bits());
    assert_eq!(a.avg_us.to_bits(), b.avg_us.to_bits());
}
