//! Safety and liveness under adversarial configurations: lock storms,
//! degenerate CPU splits, zero or tiny vCPU pools.

use taichi::core::config::TaiChiConfig;
use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::TaskFactory;
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind, SmartNicSpec};
use taichi::os::{LockId, Program};
use taichi::sim::{Dist, Rng, SimTime};

fn bursty(dp_cpus: u32) -> TrafficGen {
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp_cpus as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(CpuId).collect(),
    )
}

#[test]
fn lock_storm_makes_forward_progress_in_all_taichi_modes() {
    // 30 tasks all hammering the same driver lock, under traffic that
    // constantly preempts their vCPUs: §4.1's safe rescheduling must
    // guarantee completion.
    let factory = TaskFactory::default();
    for mode in [Mode::TaiChi, Mode::TaiChiNoHwProbe, Mode::TaiChiVdp] {
        let cfg = MachineConfig {
            seed: 31,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        m.add_traffic(bursty(8));
        let mut rng = Rng::new(32);
        let progs: Vec<Program> = (0..30)
            .map(|_| factory.device_init(LockId(1), 3, &mut rng))
            .collect();
        m.schedule_cp_batch(progs, SimTime::ZERO);
        m.run_until(SimTime::from_secs(6));
        let r = RunReport::collect(&m);
        assert_eq!(r.cp_finished, 30, "{mode}: lock storm wedged");
        assert!(
            r.lock_reschedules > 0 || r.yields == 0,
            "{mode}: contended grants should trigger safe reschedules"
        );
    }
}

#[test]
fn single_vcpu_pool_still_works() {
    let cfg = MachineConfig {
        seed: 33,
        taichi: TaiChiConfig {
            num_vcpus: 1,
            ..TaiChiConfig::default()
        },
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(bursty(8));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(34);
    let progs: Vec<Program> = (0..10)
        .map(|_| factory.device_init(LockId(2), 2, &mut rng))
        .collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_secs(4));
    let r = RunReport::collect(&m);
    assert_eq!(r.cp_finished, 10);
    assert!(r.yields > 0, "the lone vCPU should still be granted time");
}

#[test]
fn zero_vcpus_degenerates_to_working_baseline() {
    let cfg = MachineConfig {
        seed: 35,
        taichi: TaiChiConfig {
            num_vcpus: 0,
            ..TaiChiConfig::default()
        },
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(bursty(8));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(36);
    let progs: Vec<Program> = (0..8).map(|_| factory.orchestration(&mut rng)).collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_secs(2));
    let r = RunReport::collect(&m);
    assert_eq!(r.cp_finished, 8);
    assert_eq!(r.yields, 0, "no vCPUs, no yields");
}

#[test]
fn minimal_smartnic_split_works() {
    // A 2-CPU SoC: 1 DP + 1 CP.
    let cfg = MachineConfig {
        seed: 37,
        spec: SmartNicSpec::with_split(2, 1),
        taichi: TaiChiConfig {
            num_vcpus: 2,
            ..TaiChiConfig::default()
        },
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(bursty(1));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(38);
    let progs: Vec<Program> = (0..4).map(|_| factory.orchestration(&mut rng)).collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_secs(3));
    let r = RunReport::collect(&m);
    assert_eq!(r.cp_finished, 4);
    assert!(r.dp.packets() > 1000, "the single DP CPU keeps serving");
}

#[test]
fn oversubscribed_vcpu_pool() {
    // More vCPUs than physical CPUs on the whole SoC: placement must
    // still be one-vCPU-per-core and everything completes.
    let cfg = MachineConfig {
        seed: 39,
        taichi: TaiChiConfig {
            num_vcpus: 24,
            ..TaiChiConfig::default()
        },
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(bursty(8));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(40);
    let progs: Vec<Program> = (0..40)
        .map(|_| factory.build(taichi::cp::CpTaskKind::DeviceManagement, &mut rng))
        .collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_secs(6));
    let r = RunReport::collect(&m);
    assert_eq!(r.cp_finished, 40, "oversubscription must not wedge");
}

#[test]
fn saturating_traffic_starves_yields_not_correctness() {
    // At 130 % offered load the data plane never goes idle: Tai Chi
    // must stop yielding (the adaptive threshold does its job) while
    // CP work still completes on the dedicated CP pCPUs.
    let cfg = MachineConfig {
        seed: 41,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OpenLoop {
            gap_us: Dist::exponential(1.5 / 1.3 / 8.0),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(42);
    let progs: Vec<Program> = (0..6).map(|_| factory.orchestration(&mut rng)).collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_millis(600));
    let r = RunReport::collect(&m);
    assert_eq!(r.cp_finished, 6, "CP still completes on its own pCPUs");
    // Throughput is capacity-bound, not offered-bound.
    let cap = 8.0 / 1.5e-6;
    assert!(r.dp_pps() < cap * 1.05, "throughput {} capped", r.dp_pps());
}
