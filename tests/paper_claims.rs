//! The paper's headline claims, asserted end-to-end: each test mirrors
//! one evaluation result (see EXPERIMENTS.md for the full
//! paper-vs-measured accounting).

use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::{CpTaskKind, SynthCp, TaskFactory};
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::sim::{Dist, Rng, SimDuration, SimTime};
use taichi::workloads::fio::FioRw;
use taichi::workloads::ping;

fn bursty_30pct() -> TrafficGen {
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    )
}

/// §6.2 / Fig. 11: substantial CP speedup at high concurrency with DP
/// held near the production p99 utilization.
#[test]
fn claim_cp_speedup_at_32_tasks() {
    let mut results = Vec::new();
    let mut dumps = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi] {
        let cfg = MachineConfig {
            seed: 0xC1A1,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        dumps.extend(m.failure_dump(&format!("claim_cp_speedup_{mode}")));
        m.add_traffic(bursty_30pct());
        // Production CP background, as on the paper's nodes.
        let factory = TaskFactory::default();
        let mut bg = Rng::new(0xB6);
        let mut t = SimTime::from_millis(1);
        while t < SimTime::from_secs(8) {
            m.schedule_cp_batch(
                vec![
                    factory.build(CpTaskKind::DeviceManagement, &mut bg),
                    factory.build(CpTaskKind::Monitoring, &mut bg),
                ],
                t,
            );
            t += SimDuration::from_millis(3);
        }
        let synth = SynthCp::default();
        let mut rng = Rng::new(0x11);
        let batch = m.schedule_cp_batch(synth.workload(32, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_secs(8));
        let k = m.kernel();
        let mean_ms: f64 = m
            .batch_threads(batch)
            .iter()
            .map(|&tid| {
                k.thread_info(tid)
                    .turnaround()
                    .expect("synth task finished")
                    .as_millis_f64()
            })
            .sum::<f64>()
            / 32.0;
        results.push(mean_ms);
    }
    let speedup = results[0] / results[1];
    // Paper: 4x. Accept >2.5x (see EXPERIMENTS.md for the gap analysis).
    assert!(
        speedup > 2.5,
        "CP speedup {speedup:.2}x below the reproduction band"
    );
}

/// §6.5: average DP overhead below ~2 %, despite aggressive harvesting.
#[test]
fn claim_dp_overhead_below_two_percent() {
    let mut means = Vec::new();
    let mut dumps = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi] {
        let cfg = MachineConfig {
            seed: 0xD9,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        dumps.extend(m.failure_dump(&format!("claim_dp_overhead_{mode}")));
        m.add_traffic(bursty_30pct());
        let synth = SynthCp::default();
        let mut rng = Rng::new(3);
        m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_secs(1));
        let r = RunReport::collect(&m);
        means.push(r.dp.total_latency().mean());
    }
    let overhead = (means[1] - means[0]) / means[0];
    assert!(
        overhead < 0.03,
        "mean DP latency overhead {:.2}% exceeds the paper band",
        overhead * 100.0
    );
}

/// §6.4 / Table 5: the hardware probe hides scheduling latency; the
/// ablation shows the un-hidden tail.
#[test]
fn claim_probe_hides_scheduling_latency() {
    let base = ping::run(Mode::Baseline, 0xF00);
    let taichi = ping::run(Mode::TaiChi, 0xF00);
    let noprobe = ping::run(Mode::TaiChiNoHwProbe, 0xF00);
    // With the probe: max RTT within ~40 % of baseline.
    assert!(
        taichi.max_us < base.max_us * 1.4,
        "probed max {:.0} vs baseline {:.0}",
        taichi.max_us,
        base.max_us
    );
    // Without: at least 2x the baseline max (paper: 3x).
    assert!(
        noprobe.max_us > base.max_us * 2.0,
        "no-probe max {:.0} vs baseline {:.0}",
        noprobe.max_us,
        base.max_us
    );
}

/// §6.3 / Figs. 12-13: hybrid virtualization beats both traditional
/// designs — the full ordering at saturation.
#[test]
fn claim_hybrid_beats_type1_and_type2() {
    let fio = FioRw {
        window: SimDuration::from_millis(150),
        ..FioRw::default()
    };
    let base = fio.run(Mode::Baseline, 0xAB).iops;
    let taichi = fio.run(Mode::TaiChi, 0xAB).iops;
    let vdp = fio.run(Mode::TaiChiVdp, 0xAB).iops;
    let t2 = fio.run(Mode::Type2, 0xAB).iops;
    assert!(taichi > 0.98 * base, "hybrid is near-native");
    assert!(vdp < 0.97 * base, "type-1-like pays the guest tax");
    assert!(t2 < 0.85 * base, "type-2 pays the emulation CPU");
    assert!(taichi > vdp && vdp > t2, "full ordering");
}

/// §6.6 / Fig. 17: production VM startup improves under Tai Chi at
/// high density.
#[test]
fn claim_vm_startup_improves_at_density() {
    use taichi::cp::VmCreateRequest;
    let mut means = Vec::new();
    let mut dumps = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi] {
        let cfg = MachineConfig {
            seed: 0xBEEF,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        dumps.extend(m.failure_dump(&format!("claim_vm_startup_{mode}")));
        m.add_traffic(bursty_30pct());
        let factory = TaskFactory::default();
        for i in 0..4 {
            let mut req = VmCreateRequest::at_density(i, 4, SimTime::from_millis(i * 5));
            req.qemu_boot = SimDuration::from_millis(10);
            m.schedule_vm_create(req, &factory);
        }
        m.run_until(SimTime::from_secs(10));
        let s = m.vm_startup_times();
        assert_eq!(s.len(), 4, "{mode}: all VMs started");
        means.push(s.iter().map(|d| d.as_millis_f64()).sum::<f64>() / s.len() as f64);
    }
    let reduction = means[0] / means[1];
    assert!(
        reduction > 1.4,
        "VM startup reduction {reduction:.2}x below band (paper: 3.1x)"
    );
}
