//! On-demand instruction-level auditing (§8).
//!
//! Hybrid virtualization gives the OS a spare superpower: any thread
//! can be moved into a vCPU context *on demand*, where every
//! privileged operation it performs VM-exits and can be monitored,
//! logged, or intercepted — then moved back, with zero persistent
//! overhead and zero changes to the audited application. The paper
//! sketches this in the Discussions section; this module implements
//! it on the kernel model:
//!
//! 1. [`AuditSession::begin`] registers a fresh auditing vCPU through
//!    the orchestrator's hotplug path and re-binds the target thread to
//!    it via plain CPU affinity (deferred past any non-preemptible
//!    routine the thread is currently inside, like a real migration).
//! 2. While the session is open, the audit domain's activity is
//!    tracked: kernel entries (syscalls and non-preemptible routines
//!    are the privileged operations visible to a hypervisor), audited
//!    CPU time, and segment retirements.
//! 3. [`AuditSession::end`] restores the original affinity and
//!    offlines the auditing vCPU once it drains.
//!
//! # Scheduler invariant checking
//!
//! The same module hosts the machine-wide **invariant checker** used
//! by the fault-injection tests ([`check_invariants`] /
//! [`assert_invariants`]): after any run — faulted or not — the
//! scheduler must not have lost a vCPU, wedged a softirq, exceeded its
//! IPI retry budget, stranded a sleeping thread, or run its clock
//! backwards. Violations are reported as strings (one per broken
//! invariant); the asserting variant arms a
//! [`FailureDump`](taichi_sim::trace::FailureDump) first so a failing
//! fault-matrix test leaves a trace TSV behind.

use crate::machine::Machine;
use crate::orchestrator::IpiOrchestrator;
use taichi_hw::CpuId;
use taichi_os::{ActionBuf, CpuSet, Kernel, Segment, ThreadId};
use taichi_sim::{SimDuration, SimTime};

/// What an audit session observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Program segments the thread retired while audited.
    pub segments_retired: u64,
    /// Kernel entries among them (syscalls + non-preemptible routines)
    /// — the privileged operations a hypervisor-level auditor sees.
    pub kernel_entries: u64,
    /// CPU time consumed inside the audit domain.
    pub audited_cpu_time: SimDuration,
    /// How long the session was open (wall-clock, simulated).
    pub session_length: SimDuration,
}

/// An open auditing session for one thread.
#[derive(Clone, Debug)]
pub struct AuditSession {
    target: ThreadId,
    audit_cpu: CpuId,
    original_affinity: CpuSet,
    started_at: SimTime,
    pc_at_start: usize,
    cpu_time_at_start: SimDuration,
}

impl AuditSession {
    /// Opens an audit session: registers a dedicated auditing vCPU and
    /// migrates `target` onto it.
    ///
    /// The kernel actions the driver must apply (migration rearms)
    /// land in `out`. The migration itself honours non-preemptible
    /// sections — the thread enters the audit domain at its next
    /// scheduling point.
    pub fn begin(
        kernel: &mut Kernel,
        orchestrator: &mut IpiOrchestrator,
        target: ThreadId,
        now: SimTime,
        out: &mut ActionBuf,
    ) -> AuditSession {
        let ids = orchestrator.register_vcpus(kernel, 1, now);
        let audit_cpu = ids[0];
        let original_affinity = kernel.thread_info(target).affinity;
        let pc_at_start = kernel.thread_info(target).pc;
        let cpu_time_at_start = kernel.thread_info(target).cpu_time;
        kernel.set_affinity(target, CpuSet::single(audit_cpu), now, out);
        AuditSession {
            target,
            audit_cpu,
            original_affinity,
            started_at: now,
            pc_at_start,
            cpu_time_at_start,
        }
    }

    /// The dedicated auditing vCPU's kernel CPU ID.
    pub fn audit_cpu(&self) -> CpuId {
        self.audit_cpu
    }

    /// The audited thread.
    pub fn target(&self) -> ThreadId {
        self.target
    }

    /// Closes the session: restores the original affinity, offlines
    /// the auditing vCPU (once idle) and returns the report. Driver
    /// actions land in `out`.
    pub fn end(self, kernel: &mut Kernel, now: SimTime, out: &mut ActionBuf) -> AuditReport {
        let t = kernel.thread_info(self.target);
        let pc_now = t.pc;
        let program = t.program.clone();
        let cpu_time_now = t.cpu_time;
        let retired: &[Segment] = {
            let segs = program.segments();
            let hi = pc_now.min(segs.len());
            let lo = self.pc_at_start.min(hi);
            &segs[lo..hi]
        };
        let kernel_entries = retired
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Segment::KernelPreemptible(_) | Segment::NonPreemptible { .. }
                )
            })
            .count() as u64;
        let report = AuditReport {
            segments_retired: retired.len() as u64,
            kernel_entries,
            audited_cpu_time: cpu_time_now.saturating_sub(self.cpu_time_at_start),
            session_length: now.saturating_since(self.started_at),
        };
        kernel.set_affinity(self.target, self.original_affinity, now, out);
        // Tear the audit vCPU down once nothing runs on it; a busy
        // audit CPU (the thread is mid-section) simply stays online
        // until the deferred migration completes — callers may retry.
        let _ = kernel.offline_cpu(self.audit_cpu, now, out);
        report
    }
}

/// Outcome of a machine-wide invariant sweep: one human-readable
/// entry per violated invariant, empty when the schedule is sound.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// One message per broken invariant.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ok() {
            return f.write_str("all scheduler invariants hold");
        }
        writeln!(
            f,
            "{} scheduler invariant(s) violated:",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Checks every machine-wide scheduler invariant at the current
/// (quiescent, between-events) simulation point:
///
/// 1. **vCPU conservation** — each vCPU's state machine, its recorded
///    grant host, and the occupancy map agree; no vCPU is lost or
///    double-placed.
/// 2. **Softirqs drained** — no softirq bit is left pending anywhere
///    and every raise was eventually handled.
/// 3. **IPI retries bounded** — no logical IPI exceeded the degrade
///    policy's retry budget.
/// 4. **No stranded sleepers** — no thread's wakeup was dropped
///    without a re-arm (a thread sleeping forever is how a broken
///    degradation policy manifests).
/// 5. **Monotone clock** — the event loop never observed time running
///    backwards.
/// 6. **Packet conservation** — every packet the accelerator ingested
///    is accounted for exactly once: processed by a service, waiting
///    in a service ring, lost at a ring (overflow drop or fault
///    reject), still in flight through the pipeline, or destined for
///    a CPU with no service behind it (Type-2 emulation). In the
///    multi-tenant configuration, each tenant's staging ring must
///    additionally balance (`staged_in = issued + backlog + losses`).
pub fn check_invariants(m: &Machine) -> InvariantReport {
    let mut violations = Vec::new();
    let health = m.fault_health();
    let grants = m.grant_hosts();
    let vsched = m.vsched();

    // 1. vCPU conservation.
    for (idx, v) in vsched.vcpus().iter().enumerate() {
        let recorded = grants.get(idx).copied().flatten();
        if v.host() != recorded {
            violations.push(format!(
                "vCPU {idx} state machine says host {:?} but the grant table says {recorded:?}",
                v.host()
            ));
        }
        if let Some(h) = recorded {
            if vsched.occupant(h) != Some(idx) {
                violations.push(format!(
                    "vCPU {idx} is granted {h:?} but the occupancy map says {:?}",
                    vsched.occupant(h)
                ));
            }
        }
    }
    for p in 0..m.config().spec.num_cpus {
        let cpu = CpuId(p);
        if let Some(idx) = vsched.occupant(cpu) {
            if grants.get(idx).copied().flatten() != Some(cpu) {
                violations.push(format!(
                    "{cpu:?} hosts vCPU {idx} per the occupancy map but the grant table disagrees"
                ));
            }
        }
    }

    // 2. Softirqs drained.
    let sirq = m.kernel().softirq_state();
    if sirq.any_pending_anywhere() {
        violations.push("softirq pending bits left set after the run quiesced".into());
    }
    if sirq.total_raised() != sirq.total_handled() {
        violations.push(format!(
            "softirq raise/handle imbalance: {} raised vs {} handled",
            sirq.total_raised(),
            sirq.total_handled()
        ));
    }

    // 3. IPI retries bounded.
    if let Some(f) = m.fault() {
        let max = f.degrade().max_ipi_retries;
        if health.ipi_max_attempt > max {
            violations.push(format!(
                "an IPI reached retry attempt {} past the budget of {max}",
                health.ipi_max_attempt
            ));
        }
    }

    // 4. No stranded sleepers.
    if !health.lost_wakeups.is_empty() {
        violations.push(format!(
            "{} thread(s) lost their wakeup and sleep forever: {:?}",
            health.lost_wakeups.len(),
            health.lost_wakeups
        ));
    }

    // 5. Monotone clock.
    if health.clock_regressions > 0 {
        violations.push(format!(
            "event clock ran backwards {} time(s)",
            health.clock_regressions
        ));
    }

    // 6. Packet conservation. Every ingested packet must sit in
    // exactly one ledger: completed, queued, lost at a service ring
    // (overflow drop or fault reject — counted separately since the
    // fault-path double-charge fix), in flight through the pipeline,
    // or ingested for a CPU no service backs (Type-2).
    let ingested = m.accel().packets_ingested();
    let mut processed = 0u64;
    let mut queued = 0u64;
    let mut lost = 0u64;
    for s in m.services() {
        processed += s.processed();
        queued += s.pending() as u64;
        lost += s.lost();
    }
    let inflight = m.dp_inflight_total();
    let unrouted = m.unrouted_packets();
    let accounted = processed + queued + lost + inflight + unrouted;
    if ingested != accounted {
        violations.push(format!(
            "packet conservation broken: {ingested} ingested but {accounted} accounted \
             (processed {processed} + queued {queued} + ring losses {lost} \
             + in flight {inflight} + unrouted {unrouted})"
        ));
    }
    // Multi-tenant: each staging ring must balance on its own —
    // packets enqueued either left through the DRR arbiter or still
    // wait in the ring, and ring losses never reach the pipeline.
    for (t, (enq, deq, backlog, _lost)) in m.accel().tenant_staging_stats().iter().enumerate() {
        if *enq != *deq + *backlog {
            violations.push(format!(
                "tenant {t} staging ring imbalance: {enq} enqueued vs \
                 {deq} issued + {backlog} waiting"
            ));
        }
    }

    InvariantReport { violations }
}

/// Fail-fast variant of [`check_invariants`]: on any violation, arms a
/// [`FailureDump`](taichi_sim::trace::FailureDump) (so the trace TSV
/// lands at `$TAICHI_TRACE` when tracing is on) and panics with the
/// full report.
///
/// # Panics
///
/// Panics when any invariant is violated.
pub fn assert_invariants(m: &Machine, label: &str) {
    let report = check_invariants(m);
    if report.ok() {
        return;
    }
    let _dump = m.failure_dump(label);
    panic!("{label}: {report}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_os::{KernelAction, KernelConfig, Program, ThreadState};
    use taichi_sim::EventQueue;

    /// A persistent driver: pending wake timers survive across
    /// successive `run_until` calls (unlike a one-shot drive loop).
    struct Harness {
        wakes: Vec<(ThreadId, SimTime)>,
        now: SimTime,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                wakes: Vec::new(),
                now: SimTime::ZERO,
            }
        }

        fn absorb(&mut self, acts: &ActionBuf) {
            for a in acts.iter() {
                if let KernelAction::ArmWakeup { tid, at } = a {
                    self.wakes.push((tid, at));
                }
            }
        }

        fn run_until(&mut self, kernel: &mut Kernel, until: SimTime) {
            #[derive(Debug)]
            enum Ev {
                Decide(CpuId),
                Wake(ThreadId),
            }
            let mut q: EventQueue<Ev> = EventQueue::new();
            let arm = |k: &Kernel, q: &mut EventQueue<Ev>, cpu: CpuId, now: SimTime| {
                if let Some(t) = k.next_decision_time(cpu, now) {
                    q.schedule(t.max(now), Ev::Decide(cpu));
                }
            };
            for &(tid, at) in &self.wakes {
                q.schedule(at.max(self.now), Ev::Wake(tid));
            }
            self.wakes.clear();
            for cpu in kernel.known_cpus() {
                arm(kernel, &mut q, cpu, self.now);
            }
            let mut acts = ActionBuf::new();
            while let Some(t) = q.peek_time() {
                if t > until {
                    break;
                }
                let (t, ev) = q.pop().expect("peeked");
                self.now = t;
                acts.clear();
                match ev {
                    Ev::Decide(cpu) => kernel.decide(cpu, t, &mut acts),
                    Ev::Wake(tid) => kernel.wakeup(tid, t, &mut acts),
                };
                for a in acts.iter() {
                    match a {
                        KernelAction::ArmWakeup { tid, at } => {
                            q.schedule(at, Ev::Wake(tid));
                        }
                        KernelAction::Rearm { cpu } => arm(kernel, &mut q, cpu, t),
                        _ => {}
                    }
                }
            }
            // Preserve unfired wake timers for the next run.
            while let Some((t, ev)) = q.pop() {
                if let Ev::Wake(tid) = ev {
                    self.wakes.push((tid, t));
                }
            }
            self.now = until.max(self.now);
        }
    }

    fn drive(kernel: &mut Kernel, pending: &ActionBuf, until: SimTime) {
        let mut h = Harness::new();
        h.absorb(pending);
        h.run_until(kernel, until);
    }

    fn setup() -> (Kernel, IpiOrchestrator) {
        let cp: Vec<CpuId> = (8..12).map(CpuId).collect();
        (
            Kernel::new(KernelConfig::default(), &cp),
            IpiOrchestrator::new(12),
        )
    }

    #[test]
    fn audit_counts_kernel_entries() {
        let (mut k, mut orch) = setup();
        let p = Program::new()
            .compute(SimDuration::from_micros(200))
            .syscall(SimDuration::from_micros(100))
            .critical(SimDuration::from_micros(300))
            .syscall(SimDuration::from_micros(100))
            .compute(SimDuration::from_micros(200));
        let mut pending = ActionBuf::new();
        let tid = k.spawn(p, CpuSet::range(8, 12), SimTime::ZERO, &mut pending);
        // Begin auditing immediately: the whole program runs audited.
        let session = AuditSession::begin(&mut k, &mut orch, tid, SimTime::ZERO, &mut pending);
        drive(&mut k, &pending, SimTime::from_secs(1));
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
        let end = SimTime::from_secs(1);
        let report = session.end(&mut k, end, &mut ActionBuf::new());
        assert_eq!(report.segments_retired, 5);
        assert_eq!(report.kernel_entries, 3, "2 syscalls + 1 routine");
        assert_eq!(report.audited_cpu_time, SimDuration::from_micros(900));
        assert_eq!(report.session_length, SimDuration::from_secs(1));
    }

    #[test]
    fn audited_thread_runs_only_on_audit_cpu() {
        let (mut k, mut orch) = setup();
        let p = Program::new().compute(SimDuration::from_millis(2));
        let mut pending = ActionBuf::new();
        let tid = k.spawn(p, CpuSet::range(8, 12), SimTime::ZERO, &mut pending);
        let session = AuditSession::begin(&mut k, &mut orch, tid, SimTime::ZERO, &mut pending);
        drive(&mut k, &pending, SimTime::from_secs(1));
        // The audit CPU did the work: its utilization is non-zero and
        // the thread finished there.
        let u = k.cpu_utilization(session.audit_cpu(), SimTime::from_millis(4));
        assert!(u > 0.3, "audit cpu utilization {u}");
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
    }

    #[test]
    fn end_restores_affinity_and_offlines_vcpu() {
        let (mut k, mut orch) = setup();
        let p = Program::new()
            .compute(SimDuration::from_micros(100))
            .sleep(SimDuration::from_millis(50))
            .compute(SimDuration::from_micros(100));
        let mut pending = ActionBuf::new();
        let tid = k.spawn(p, CpuSet::range(8, 12), SimTime::ZERO, &mut pending);
        let session = AuditSession::begin(&mut k, &mut orch, tid, SimTime::ZERO, &mut pending);
        let mut h = Harness::new();
        h.absorb(&pending);
        // Run until the thread parks in its sleep (audit CPU drains).
        h.run_until(&mut k, SimTime::from_millis(10));
        let audit_cpu = session.audit_cpu();
        let mut end_acts = ActionBuf::new();
        let report = session.end(&mut k, SimTime::from_millis(10), &mut end_acts);
        assert_eq!(report.segments_retired, 2, "compute + sleep retired");
        assert_eq!(
            k.thread_info(tid).affinity,
            CpuSet::range(8, 12),
            "affinity restored"
        );
        assert_eq!(
            k.cpu_phase(audit_cpu),
            Some(taichi_os::kernel::CpuPhase::Offline),
            "audit vCPU torn down"
        );
        // The thread still completes on its original CPUs.
        h.absorb(&end_acts);
        h.run_until(&mut k, SimTime::from_secs(1));
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
    }

    #[test]
    fn mid_execution_audit_window() {
        let (mut k, mut orch) = setup();
        let p = Program::new()
            .compute(SimDuration::from_millis(1))
            .syscall(SimDuration::from_millis(1))
            .compute(SimDuration::from_millis(1));
        let mut pending = ActionBuf::new();
        let tid = k.spawn(p, CpuSet::range(8, 12), SimTime::ZERO, &mut pending);
        // Let the first segment mostly run un-audited.
        let mut h = Harness::new();
        h.absorb(&pending);
        h.run_until(&mut k, SimTime::from_micros(500));
        let mut a2 = ActionBuf::new();
        let session =
            AuditSession::begin(&mut k, &mut orch, tid, SimTime::from_micros(500), &mut a2);
        h.absorb(&a2);
        h.run_until(&mut k, SimTime::from_secs(1));
        let report = session.end(&mut k, SimTime::from_secs(1), &mut ActionBuf::new());
        // Everything after the audit began is attributed to it.
        assert!(report.audited_cpu_time >= SimDuration::from_millis(2));
        assert!(report.kernel_entries >= 1);
    }
}
