//! The software workload probe: adaptive yield thresholds (§4.3).
//!
//! Each data-plane CPU counts consecutive empty polls; crossing a
//! threshold `N` declares the CPU idle and triggers a DP→CP yield. A
//! fixed `N` is a bad trade — too large wastes idle cycles, too small
//! yields on micro-gaps and forces expensive preemptions — so Tai Chi
//! adapts it per CPU from VM-exit reasons:
//!
//! - **Slice-expiry exit** ⇒ the DP CPU stayed idle through the whole
//!   vCPU slice ⇒ the yield was right and could have come sooner ⇒
//!   *decrease* `N` (halve, floored).
//! - **Hardware-probe exit** ⇒ a packet arrived while the vCPU held the
//!   core ⇒ the yield was a false positive ⇒ *increase* `N` (double,
//!   capped).
//!
//! The probe window is never stepped poll-by-poll: `N` feeds the
//! analytic `idle_notify_time` re-arm (`empty_since + (N + 1) ×
//! poll_iteration`), so a whole idle gap costs one timer event no
//! matter how many empty polls it represents — see DESIGN.md §3.9.
//! [`AdaptiveYield::threshold`] sits on that per-re-arm hot path,
//! hence the `#[inline]` on the accessors.

use taichi_hw::CpuId;
use taichi_virt::VmExitReason;

/// Per-DP-CPU adaptive yield thresholds.
#[derive(Clone, Debug)]
pub struct AdaptiveYield {
    thresholds: Vec<u32>,
    min: u32,
    max: u32,
    decreases: u64,
    increases: u64,
}

impl AdaptiveYield {
    /// Creates thresholds for `num_cpus` CPUs, all at `initial`,
    /// clamped into `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `min > max` or `min == 0`.
    pub fn new(num_cpus: u32, initial: u32, min: u32, max: u32) -> Self {
        assert!(
            min > 0 && min <= max,
            "invalid threshold bounds [{min},{max}]"
        );
        AdaptiveYield {
            thresholds: vec![initial.clamp(min, max); num_cpus as usize],
            min,
            max,
            decreases: 0,
            increases: 0,
        }
    }

    /// Current threshold for `cpu` (the max bound for unknown CPUs,
    /// i.e. effectively never yield).
    #[inline]
    pub fn threshold(&self, cpu: CpuId) -> u32 {
        self.thresholds
            .get(cpu.index())
            .copied()
            .unwrap_or(self.max)
    }

    /// Feeds back a VM-exit that ended a grant on `cpu`.
    #[inline]
    pub fn on_vm_exit(&mut self, cpu: CpuId, reason: VmExitReason) {
        let (min, max) = (self.min, self.max);
        let Some(n) = self.thresholds.get_mut(cpu.index()) else {
            return;
        };
        match reason {
            VmExitReason::SliceExpired => {
                *n = (*n / 2).max(min);
                self.decreases += 1;
            }
            VmExitReason::HwProbe => {
                *n = n.saturating_mul(2).min(max);
                self.increases += 1;
            }
            // Other exits (IPI re-issue, guest halt, forced) say
            // nothing about DP idleness.
            _ => {}
        }
    }

    /// Clamps `cpu`'s threshold straight to the max bound. This is the
    /// storm-starvation degradation: under a sustained CP task storm
    /// the doubling feedback loop takes many probe exits to back off,
    /// each one costing a vCPU switch; when the probe signals repeated
    /// starvation the scheduler jumps to "effectively never yield" in
    /// one step. Returns `true` when the threshold actually changed.
    pub fn clamp_to_max(&mut self, cpu: CpuId) -> bool {
        let max = self.max;
        let Some(n) = self.thresholds.get_mut(cpu.index()) else {
            return false;
        };
        if *n == max {
            return false;
        }
        *n = max;
        self.increases += 1;
        true
    }

    /// Total threshold decreases performed.
    pub fn decreases(&self) -> u64 {
        self.decreases
    }

    /// Total threshold increases performed.
    pub fn increases(&self) -> u64 {
        self.increases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial() {
        let a = AdaptiveYield::new(8, 200, 25, 6400);
        for i in 0..8 {
            assert_eq!(a.threshold(CpuId(i)), 200);
        }
    }

    #[test]
    fn sustained_idleness_decreases() {
        let mut a = AdaptiveYield::new(2, 200, 25, 6400);
        a.on_vm_exit(CpuId(0), VmExitReason::SliceExpired);
        assert_eq!(a.threshold(CpuId(0)), 100);
        assert_eq!(a.threshold(CpuId(1)), 200, "per-CPU isolation");
        for _ in 0..10 {
            a.on_vm_exit(CpuId(0), VmExitReason::SliceExpired);
        }
        assert_eq!(a.threshold(CpuId(0)), 25, "floored at min");
        assert_eq!(a.decreases(), 11);
    }

    #[test]
    fn false_positive_increases() {
        let mut a = AdaptiveYield::new(1, 200, 25, 6400);
        a.on_vm_exit(CpuId(0), VmExitReason::HwProbe);
        assert_eq!(a.threshold(CpuId(0)), 400);
        for _ in 0..10 {
            a.on_vm_exit(CpuId(0), VmExitReason::HwProbe);
        }
        assert_eq!(a.threshold(CpuId(0)), 6400, "capped at max");
        assert_eq!(a.increases(), 11);
    }

    #[test]
    fn neutral_exits_ignored() {
        let mut a = AdaptiveYield::new(1, 200, 25, 6400);
        a.on_vm_exit(CpuId(0), VmExitReason::IpiSend);
        a.on_vm_exit(CpuId(0), VmExitReason::GuestHalt);
        a.on_vm_exit(CpuId(0), VmExitReason::Forced);
        assert_eq!(a.threshold(CpuId(0)), 200);
    }

    #[test]
    fn converges_under_alternating_feedback() {
        // Alternating signals keep N oscillating inside bounds without
        // drifting to either extreme.
        let mut a = AdaptiveYield::new(1, 200, 25, 6400);
        for _ in 0..100 {
            a.on_vm_exit(CpuId(0), VmExitReason::SliceExpired);
            a.on_vm_exit(CpuId(0), VmExitReason::HwProbe);
        }
        let n = a.threshold(CpuId(0));
        assert!((25..=6400).contains(&n));
    }

    #[test]
    fn unknown_cpu_is_max() {
        let mut a = AdaptiveYield::new(1, 200, 25, 6400);
        assert_eq!(a.threshold(CpuId(9)), 6400);
        a.on_vm_exit(CpuId(9), VmExitReason::SliceExpired); // no panic
    }

    #[test]
    #[should_panic(expected = "invalid threshold bounds")]
    fn zero_min_panics() {
        AdaptiveYield::new(1, 10, 0, 100);
    }

    #[test]
    fn clamp_jumps_to_max_once() {
        let mut a = AdaptiveYield::new(2, 200, 25, 6400);
        assert!(a.clamp_to_max(CpuId(0)));
        assert_eq!(a.threshold(CpuId(0)), 6400);
        assert_eq!(a.threshold(CpuId(1)), 200, "per-CPU isolation");
        assert!(!a.clamp_to_max(CpuId(0)), "already clamped");
        assert!(!a.clamp_to_max(CpuId(9)), "unknown CPU is a no-op");
        assert_eq!(a.increases(), 1);
    }
}
