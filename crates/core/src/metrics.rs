//! Run-level metrics extraction.
//!
//! A [`RunReport`] snapshots everything the evaluation harness needs
//! from a finished [`Machine`](crate::machine::Machine) run: data-plane
//! latency distributions and throughput, control-plane turnaround
//! statistics, Tai Chi scheduler counters, and VM startup times.

use crate::machine::Machine;
use taichi_dp::LatencyRecorder;
use taichi_os::ThreadState;
use taichi_sim::{Histogram, SimDuration, SimTime};

/// Aggregated results of one machine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Simulated run length.
    pub duration: SimDuration,
    /// Merged DP latency/throughput records across all services.
    pub dp: LatencyRecorder,
    /// Total packets dropped at rx rings.
    pub dp_dropped: u64,
    /// Lifetime utilization per DP CPU.
    pub dp_utilization: Vec<f64>,
    /// Turnaround times of all finished CP threads (ns histogram).
    pub cp_turnaround: Histogram,
    /// Number of finished CP threads.
    pub cp_finished: u64,
    /// Total CP CPU time consumed (ns).
    pub cp_cpu_time_ns: u64,
    /// Total CP spin time burned on contended locks (ns).
    pub cp_spin_time_ns: u64,
    /// DP→CP yields performed.
    pub yields: u64,
    /// VM-exits by the hardware probe.
    pub hw_probe_exits: u64,
    /// VM-exits by slice expiry.
    pub slice_exits: u64,
    /// Guest-halt exits.
    pub halt_exits: u64,
    /// Safe lock-context reschedules.
    pub lock_reschedules: u64,
    /// Completed VM startup times.
    pub vm_startups: Vec<SimDuration>,
}

impl RunReport {
    /// Collects a report from a machine at time `now`.
    pub fn collect(machine: &Machine) -> Self {
        let now = machine.now();
        let mut dp = LatencyRecorder::new();
        let mut dropped = 0;
        let mut util = Vec::new();
        for s in machine.services() {
            dp.merge(s.recorder());
            dropped += s.dropped();
            util.push(s.utilization(now));
        }

        let kernel = machine.kernel();
        let mut turnaround = Histogram::new();
        let mut finished = 0u64;
        let mut cpu_time = 0u64;
        let mut spin = 0u64;
        for tid in kernel.all_threads() {
            let t = kernel.thread_info(tid);
            cpu_time += t.cpu_time.as_nanos();
            spin += t.spin_time.as_nanos();
            if t.state == ThreadState::Finished {
                finished += 1;
                if let Some(d) = t.turnaround() {
                    turnaround.record(d.as_nanos());
                }
            }
        }

        let mut hw_probe_exits = 0;
        let mut slice_exits = 0;
        let mut halt_exits = 0;
        for v in machine.vsched().vcpus() {
            let e = v.exits();
            hw_probe_exits += e.hw_probe;
            slice_exits += e.slice_expired;
            halt_exits += e.guest_halt;
        }

        RunReport {
            duration: now.saturating_since(SimTime::ZERO),
            dp,
            dp_dropped: dropped,
            dp_utilization: util,
            cp_turnaround: turnaround,
            cp_finished: finished,
            cp_cpu_time_ns: cpu_time,
            cp_spin_time_ns: spin,
            yields: machine.vsched().total_yields(),
            hw_probe_exits,
            slice_exits,
            halt_exits,
            lock_reschedules: machine.vsched().total_lock_reschedules(),
            vm_startups: machine.vm_startup_times().to_vec(),
        }
    }

    /// Mean DP utilization across DP CPUs.
    pub fn mean_dp_utilization(&self) -> f64 {
        if self.dp_utilization.is_empty() {
            return 0.0;
        }
        self.dp_utilization.iter().sum::<f64>() / self.dp_utilization.len() as f64
    }

    /// Mean CP turnaround in milliseconds.
    pub fn mean_cp_turnaround_ms(&self) -> f64 {
        self.cp_turnaround.mean() / 1e6
    }

    /// Mean VM startup time in milliseconds (0 when none completed).
    pub fn mean_vm_startup_ms(&self) -> f64 {
        if self.vm_startups.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.vm_startups.iter().map(|d| d.as_nanos()).sum();
        sum as f64 / self.vm_startups.len() as f64 / 1e6
    }

    /// DP packets per second over the run.
    pub fn dp_pps(&self) -> f64 {
        self.dp.pps(self.duration)
    }
}
