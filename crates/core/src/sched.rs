//! The pluggable scheduling-policy layer (ROADMAP item 2).
//!
//! Every scheduling *decision* the machine makes — when a data-plane
//! CPU should yield, which vCPU to grant it to, how long the grant
//! runs, how the adaptive feedback reacts to a VM-exit, and where a
//! lock-holding vCPU is re-placed — goes through one [`Scheduler`]
//! trait object. The machine keeps the *mechanism* (event plumbing,
//! occupancy bookkeeping, softirq raising, VM-enter/exit timing,
//! counters) and hands the policy a read-only [`KernelCtx`] view of
//! kernel state at each decision point, following the scx model where
//! policy callbacks receive a context exposing a subset of kernel
//! resources.
//!
//! Three policies ship today, selected per-run via
//! `MachineConfig::policy`, the `TAICHI_POLICY` environment variable,
//! or `--policy` on the experiment binaries:
//!
//! | [`PolicyKind`] | vCPU harvest | HW probe | Decision behaviour |
//! |----------------|--------------|----------|--------------------|
//! | `taichi`   | yes | per-config | adaptive yield/slice, RR vCPU pick, §4.1 lock reschedule |
//! | `baseline` | no  | no | native CFS-like kernel scheduling only |
//! | `type2`    | no  | no | as baseline; the type-2 taxes are structural ([`Mode::Type2`]) |
//!
//! The split is deliberately honest about what differs between the
//! paper's regimes: the CFS-like baseline and the type-2 hypervisor
//! never harvest DP idle cycles, so their policies opt out of the
//! vCPU layer entirely ([`Scheduler::uses_vcpus`]) and the kernel's
//! native least-loaded placement / work stealing / preemption rotation
//! (taichi-os) serves them unchanged. Ablation modes map onto the
//! TaiChi policy with different knobs ([`Mode::TaiChiNoHwProbe`]
//! disables the hardware probe).
//!
//! # Byte-identity contract
//!
//! The trait extraction is behavior-preserving by construction: for
//! every pre-existing [`Mode`], the policy methods reproduce the
//! formerly hardwired logic exactly — same RR cursor behaviour, same
//! adaptation arithmetic, same counter increments — which the
//! `policy_identity` harness in `taichi-bench` pins down (trace TSV,
//! stats fingerprint, and experiment CSV equality across queue
//! backends and sweep worker counts).
//!
//! # Adding a policy
//!
//! 1. Implement [`Scheduler`]. State lives in your struct; everything
//!    you may read lives in [`KernelCtx`].
//! 2. Extend [`PolicyKind`] (parse + display + canonical mode) and
//!    [`make_scheduler`].
//! 3. Run the `policy_identity` harness (existing policies must stay
//!    byte-identical) and the per-policy invariant sweep
//!    (`policy_invariants`), which runs your policy across the fault
//!    matrix and asserts no stranded sleepers or leaked grants.

use crate::config::MachineConfig;
use crate::machine::{FaultHealth, Mode};
use crate::orchestrator::IpiOrchestrator;
use crate::probe_sw::AdaptiveYield;
use crate::slice::AdaptiveSlice;
use crate::vcpu_sched::VcpuScheduler;

use taichi_hw::{CpuId, HwWorkloadProbe};
use taichi_os::Kernel;
use taichi_sim::{SimDuration, SimTime};
use taichi_virt::VmExitReason;

/// Which of the three shipped policies to run. Distinct from [`Mode`]:
/// a mode is the full structural regime (CPU counts, taxes, program
/// transformations), a policy is the scheduling decision logic. Every
/// mode maps onto a policy ([`PolicyKind::for_mode`]); selecting a
/// policy explicitly re-derives the canonical mode for it
/// ([`PolicyKind::canonical_mode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Full Tai Chi: adaptive DP→CP yield + CP→DP preempt.
    TaiChi,
    /// Static partitioning over the CFS-like kernel scheduler.
    Baseline,
    /// Type-2 hypervisor regime (scheduling-wise identical to the
    /// baseline; the guest taxes are structural to [`Mode::Type2`]).
    Type2,
}

impl PolicyKind {
    /// All selectable policies, in evaluation order.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Baseline, PolicyKind::TaiChi, PolicyKind::Type2]
    }

    /// The mode this policy canonically runs as.
    pub fn canonical_mode(self) -> Mode {
        match self {
            PolicyKind::TaiChi => Mode::TaiChi,
            PolicyKind::Baseline => Mode::Baseline,
            PolicyKind::Type2 => Mode::Type2,
        }
    }

    /// The policy behind a mode (ablation modes run the TaiChi policy
    /// with different knobs).
    pub fn for_mode(mode: Mode) -> PolicyKind {
        match mode {
            Mode::Baseline => PolicyKind::Baseline,
            Mode::TaiChi | Mode::TaiChiNoHwProbe | Mode::TaiChiVdp => PolicyKind::TaiChi,
            Mode::Type2 => PolicyKind::Type2,
        }
    }

    /// Resolves the `TAICHI_POLICY` environment override. An
    /// unrecognized value warns to stderr once per process and is
    /// ignored (the mode-derived policy applies), following the
    /// `TAICHI_QUEUE`/`TAICHI_SEED` convention.
    pub fn from_env() -> Option<PolicyKind> {
        taichi_sim::env::env_parse_or_warn("TAICHI_POLICY", |s| {
            s.trim().parse().map_err(|_| {
                format!(
                    "warning: TAICHI_POLICY={s:?} is not a known scheduler policy \
                     (expected \"taichi\", \"baseline\", or \"type2\"); \
                     keeping the mode-derived policy"
                )
            })
        })
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "taichi" => Ok(PolicyKind::TaiChi),
            "baseline" => Ok(PolicyKind::Baseline),
            "type2" => Ok(PolicyKind::Type2),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicyKind::TaiChi => "taichi",
            PolicyKind::Baseline => "baseline",
            PolicyKind::Type2 => "type2",
        })
    }
}

/// Read-only view of kernel state handed to every [`Scheduler`]
/// decision point: runqueues, pending softirqs, probe state, vCPU
/// occupancy, IPI routing topology, and the fault-health counters.
///
/// The view is rebuilt (cheaply — it is all borrows) at each decision
/// point, so policies can never hold stale kernel state across events,
/// and the borrow checker guarantees a policy cannot mutate the
/// mechanism it is deciding for.
pub struct KernelCtx<'a> {
    /// The OS layer: runqueues ([`Kernel::runqueue_depth`],
    /// [`Kernel::cpu_load`]), work queries ([`Kernel::cpu_has_work`]),
    /// lock contexts, and pending softirqs via
    /// [`Kernel::softirq_state`].
    pub kernel: &'a Kernel,
    /// vCPU pool state and host occupancy (read-only).
    pub vsched: &'a VcpuScheduler,
    /// CPU-class topology and vCPU ↔ kernel-CPU mapping.
    pub orchestrator: &'a IpiOrchestrator,
    /// The hardware workload probe's per-CPU execution-state table.
    pub probe: &'a HwWorkloadProbe,
    /// Degradation counters from the fault layer (a policy may read
    /// these to get more conservative under sustained faults).
    pub health: &'a FaultHealth,
    /// Current simulated time.
    pub now: SimTime,
}

impl KernelCtx<'_> {
    /// Number of vCPUs in the pool.
    pub fn num_vcpus(&self) -> usize {
        self.vsched.len()
    }

    /// True when vCPU `idx` could usefully be granted a core:
    /// descheduled, with pending work on its kernel CPU (queued
    /// threads or a pending softirq).
    pub fn vcpu_runnable(&self, idx: usize) -> bool {
        self.vsched.vcpu(idx).is_descheduled()
            && self.kernel.cpu_has_work(self.orchestrator.vcpu_cpu_id(idx))
    }

    /// True when no vCPU currently occupies `host`.
    pub fn host_free(&self, host: CpuId) -> bool {
        self.vsched.host_free(host)
    }

    /// Pending-softirq view for `cpu` (part of the runqueue picture:
    /// a pending softirq is schedulable work).
    pub fn pending_softirqs(&self, cpu: CpuId) -> bool {
        self.kernel.softirq_state().any_pending(cpu)
    }

    /// Queued-thread depth on `cpu`, excluding the running thread.
    pub fn runqueue_depth(&self, cpu: CpuId) -> usize {
        self.kernel.runqueue_depth(cpu)
    }
}

/// Where a lock-context reschedule decided to re-place the vCPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReschedulePick {
    /// Chosen host CPU.
    pub host: CpuId,
    /// True when the pick fell back to a CP pCPU because no idle DP
    /// host was free (the machine counts these separately).
    pub fallback: bool,
}

/// A scheduling policy: the decision half of the Tai Chi scheduler.
///
/// The machine calls these hooks at its decision points and applies
/// the results through its own mechanism (placement bookkeeping,
/// softirq raising, VM-enter/exit events, statistics). Policies own
/// whatever state their decisions need — adaptive controllers, RR
/// cursors — and read everything else from the [`KernelCtx`].
pub trait Scheduler: Send {
    /// Stable lowercase policy name (matches [`PolicyKind`] parsing).
    fn name(&self) -> &'static str;

    /// True when this policy harvests DP idle cycles through vCPUs.
    /// `false` turns off the entire vCPU layer: no pool, no idle
    /// probes, no grants — the kernel's native scheduling runs alone.
    fn uses_vcpus(&self) -> bool;

    /// True when the hardware workload probe should be armed (the
    /// CP→DP preempt path of Fig. 7b).
    fn hw_probe_enabled(&self) -> bool;

    /// Empty-poll count after which `host` is declared idle.
    fn yield_threshold(&self, ctx: &KernelCtx<'_>, host: CpuId) -> u32;

    /// Grant duration for the next vCPU entered on `host`.
    fn grant_slice(&self, ctx: &KernelCtx<'_>, host: CpuId) -> SimDuration;

    /// Picks the vCPU to grant an idle `host` to, or `None` to leave
    /// the host armed for a later kick.
    fn pick_vcpu(&mut self, ctx: &KernelCtx<'_>) -> Option<usize>;

    /// Feedback: a grant on `host` ended with `reason` (after the
    /// machine's false-positive upgrade — a slice expiry that found
    /// packets waiting arrives here as [`VmExitReason::HwProbe`]).
    fn on_vm_exit(&mut self, ctx: &KernelCtx<'_>, host: CpuId, reason: VmExitReason);

    /// Chooses where to immediately re-place a vCPU preempted inside a
    /// lock context (§4.1): `idle_dp` then `cp_hosts` are the
    /// machine-built candidate lists. `None` only when nothing is
    /// placeable.
    fn pick_reschedule_host(
        &mut self,
        ctx: &KernelCtx<'_>,
        idle_dp: &[CpuId],
        cp_hosts: &[CpuId],
    ) -> Option<ReschedulePick>;

    /// Storm-starvation degradation: jump `host`'s yield threshold to
    /// its maximum in one step. Returns whether anything changed.
    fn clamp_yield_to_max(&mut self, host: CpuId) -> bool;

    /// Diagnostic view of the per-CPU yield thresholds (every policy
    /// keeps the table; non-harvesting policies just never adapt it).
    fn yield_view(&self) -> &AdaptiveYield;
}

/// Full Tai Chi: round-robin vCPU harvest with adaptive yield
/// thresholds and slices, plus §4.1 safe lock-context rescheduling.
pub struct TaiChiPolicy {
    yield_ctl: AdaptiveYield,
    slice_ctl: AdaptiveSlice,
    rr_next: usize,
    cp_rr: usize,
    hw_probe: bool,
}

impl TaiChiPolicy {
    /// Builds the policy from the machine config; `hw_probe` arms the
    /// CP→DP preempt path (disabled for the Table 5 ablation).
    pub fn new(cfg: &MachineConfig, hw_probe: bool) -> Self {
        TaiChiPolicy {
            yield_ctl: AdaptiveYield::new(
                cfg.spec.num_cpus,
                cfg.taichi.initial_yield_threshold,
                cfg.taichi.min_yield_threshold,
                cfg.taichi.max_yield_threshold,
            ),
            slice_ctl: AdaptiveSlice::new(
                cfg.spec.num_cpus,
                cfg.taichi.initial_slice,
                cfg.taichi.max_slice,
            ),
            rr_next: 0,
            cp_rr: 0,
            hw_probe,
        }
    }
}

impl Scheduler for TaiChiPolicy {
    #[inline]
    fn name(&self) -> &'static str {
        "taichi"
    }

    #[inline]
    fn uses_vcpus(&self) -> bool {
        true
    }

    #[inline]
    fn hw_probe_enabled(&self) -> bool {
        self.hw_probe
    }

    #[inline]
    fn yield_threshold(&self, _ctx: &KernelCtx<'_>, host: CpuId) -> u32 {
        self.yield_ctl.threshold(host)
    }

    #[inline]
    fn grant_slice(&self, _ctx: &KernelCtx<'_>, host: CpuId) -> SimDuration {
        self.slice_ctl.slice(host)
    }

    #[inline]
    fn pick_vcpu(&mut self, ctx: &KernelCtx<'_>) -> Option<usize> {
        let n = ctx.num_vcpus();
        if n == 0 {
            return None;
        }
        for step in 0..n {
            let idx = (self.rr_next + step) % n;
            if ctx.vcpu_runnable(idx) {
                self.rr_next = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    fn on_vm_exit(&mut self, _ctx: &KernelCtx<'_>, host: CpuId, reason: VmExitReason) {
        self.slice_ctl.on_vm_exit(host, reason);
        self.yield_ctl.on_vm_exit(host, reason);
    }

    fn pick_reschedule_host(
        &mut self,
        ctx: &KernelCtx<'_>,
        idle_dp: &[CpuId],
        cp_hosts: &[CpuId],
    ) -> Option<ReschedulePick> {
        if let Some(&h) = idle_dp.iter().find(|h| ctx.host_free(**h)) {
            return Some(ReschedulePick {
                host: h,
                fallback: false,
            });
        }
        if cp_hosts.is_empty() {
            return None;
        }
        let pick = cp_hosts[self.cp_rr % cp_hosts.len()];
        self.cp_rr += 1;
        Some(ReschedulePick {
            host: pick,
            fallback: true,
        })
    }

    #[inline]
    fn clamp_yield_to_max(&mut self, host: CpuId) -> bool {
        self.yield_ctl.clamp_to_max(host)
    }

    #[inline]
    fn yield_view(&self) -> &AdaptiveYield {
        &self.yield_ctl
    }
}

/// Static partitioning: no vCPU layer at all; the kernel's native
/// CFS-like scheduling (least-loaded placement, work stealing,
/// preemption rotation) is the whole policy.
pub struct BaselinePolicy {
    /// Kept (untouched) so diagnostics see the same threshold table a
    /// machine has always carried in every mode.
    yield_ctl: AdaptiveYield,
    slice_ctl: AdaptiveSlice,
}

impl BaselinePolicy {
    /// Builds the policy from the machine config.
    pub fn new(cfg: &MachineConfig) -> Self {
        BaselinePolicy {
            yield_ctl: AdaptiveYield::new(
                cfg.spec.num_cpus,
                cfg.taichi.initial_yield_threshold,
                cfg.taichi.min_yield_threshold,
                cfg.taichi.max_yield_threshold,
            ),
            slice_ctl: AdaptiveSlice::new(
                cfg.spec.num_cpus,
                cfg.taichi.initial_slice,
                cfg.taichi.max_slice,
            ),
        }
    }
}

impl Scheduler for BaselinePolicy {
    #[inline]
    fn name(&self) -> &'static str {
        "baseline"
    }

    #[inline]
    fn uses_vcpus(&self) -> bool {
        false
    }

    #[inline]
    fn hw_probe_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn yield_threshold(&self, _ctx: &KernelCtx<'_>, host: CpuId) -> u32 {
        self.yield_ctl.threshold(host)
    }

    #[inline]
    fn grant_slice(&self, _ctx: &KernelCtx<'_>, host: CpuId) -> SimDuration {
        self.slice_ctl.slice(host)
    }

    #[inline]
    fn pick_vcpu(&mut self, _ctx: &KernelCtx<'_>) -> Option<usize> {
        None
    }

    fn on_vm_exit(&mut self, _ctx: &KernelCtx<'_>, _host: CpuId, _reason: VmExitReason) {}

    fn pick_reschedule_host(
        &mut self,
        _ctx: &KernelCtx<'_>,
        _idle_dp: &[CpuId],
        _cp_hosts: &[CpuId],
    ) -> Option<ReschedulePick> {
        None
    }

    #[inline]
    fn clamp_yield_to_max(&mut self, _host: CpuId) -> bool {
        false
    }

    #[inline]
    fn yield_view(&self) -> &AdaptiveYield {
        &self.yield_ctl
    }
}

/// Type-2 hypervisor regime: scheduling decisions are the baseline's
/// (no harvest; native kernel scheduling); what makes type-2 slow —
/// guest execution taxes, IPC→RPC inflation, the pCPU lost to
/// emulation — is structural and modeled by [`Mode::Type2`]'s machine
/// construction and program transformation.
pub struct Type2Policy {
    inner: BaselinePolicy,
}

impl Type2Policy {
    /// Builds the policy from the machine config.
    pub fn new(cfg: &MachineConfig) -> Self {
        Type2Policy {
            inner: BaselinePolicy::new(cfg),
        }
    }
}

impl Scheduler for Type2Policy {
    #[inline]
    fn name(&self) -> &'static str {
        "type2"
    }

    #[inline]
    fn uses_vcpus(&self) -> bool {
        false
    }

    #[inline]
    fn hw_probe_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn yield_threshold(&self, ctx: &KernelCtx<'_>, host: CpuId) -> u32 {
        self.inner.yield_threshold(ctx, host)
    }

    #[inline]
    fn grant_slice(&self, ctx: &KernelCtx<'_>, host: CpuId) -> SimDuration {
        self.inner.grant_slice(ctx, host)
    }

    #[inline]
    fn pick_vcpu(&mut self, ctx: &KernelCtx<'_>) -> Option<usize> {
        self.inner.pick_vcpu(ctx)
    }

    fn on_vm_exit(&mut self, ctx: &KernelCtx<'_>, host: CpuId, reason: VmExitReason) {
        self.inner.on_vm_exit(ctx, host, reason);
    }

    fn pick_reschedule_host(
        &mut self,
        ctx: &KernelCtx<'_>,
        idle_dp: &[CpuId],
        cp_hosts: &[CpuId],
    ) -> Option<ReschedulePick> {
        self.inner.pick_reschedule_host(ctx, idle_dp, cp_hosts)
    }

    #[inline]
    fn clamp_yield_to_max(&mut self, host: CpuId) -> bool {
        self.inner.clamp_yield_to_max(host)
    }

    #[inline]
    fn yield_view(&self) -> &AdaptiveYield {
        self.inner.yield_view()
    }
}

/// Builds the scheduler for a mode: ablation modes share the TaiChi
/// policy with different knobs, everything else maps 1:1.
pub fn make_scheduler(mode: Mode, cfg: &MachineConfig) -> Box<dyn Scheduler> {
    match mode {
        Mode::Baseline => Box::new(BaselinePolicy::new(cfg)),
        Mode::TaiChi | Mode::TaiChiVdp => Box::new(TaiChiPolicy::new(cfg, true)),
        Mode::TaiChiNoHwProbe => Box::new(TaiChiPolicy::new(cfg, false)),
        Mode::Type2 => Box::new(Type2Policy::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_os::{KernelConfig, SoftirqKind};
    use taichi_sim::SimTime;

    /// Owns the subsystems a [`KernelCtx`] borrows, with `n` vCPUs
    /// registered and initially descheduled and workless.
    struct Rig {
        kernel: Kernel,
        vsched: VcpuScheduler,
        orch: IpiOrchestrator,
        probe: HwWorkloadProbe,
        health: FaultHealth,
        vcpu_ids: Vec<CpuId>,
    }

    impl Rig {
        fn new(n: u32) -> Self {
            let num_cpus = 12;
            let mut kernel = Kernel::new(KernelConfig::default(), &[]);
            let mut orch = IpiOrchestrator::new(num_cpus);
            let vcpu_ids = orch.register_vcpus(&mut kernel, n, SimTime::ZERO);
            let vsched = VcpuScheduler::new(&vcpu_ids, num_cpus);
            Rig {
                kernel,
                vsched,
                orch,
                probe: HwWorkloadProbe::new(num_cpus),
                health: FaultHealth::default(),
                vcpu_ids,
            }
        }

        fn ctx(&self) -> KernelCtx<'_> {
            KernelCtx {
                kernel: &self.kernel,
                vsched: &self.vsched,
                orchestrator: &self.orch,
                probe: &self.probe,
                health: &self.health,
                now: SimTime::ZERO,
            }
        }

        /// Gives vCPU `idx` pending kernel work (a raised softirq).
        fn give_work(&mut self, idx: usize) {
            let cpu = self.vcpu_ids[idx];
            assert!(self.kernel.softirqs().raise(cpu, SoftirqKind::TaiChiVcpu));
        }
    }

    fn taichi() -> TaiChiPolicy {
        TaiChiPolicy::new(&MachineConfig::default(), true)
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut rig = Rig::new(3);
        for i in 0..3 {
            rig.give_work(i);
        }
        let mut p = taichi();
        let picks: Vec<usize> = (0..6).map(|_| p.pick_vcpu(&rig.ctx()).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_vcpus_without_work() {
        let mut rig = Rig::new(3);
        rig.give_work(2);
        let mut p = taichi();
        assert_eq!(p.pick_vcpu(&rig.ctx()), Some(2));
        // RR cursor advanced past 2 and wraps back to it.
        assert_eq!(p.pick_vcpu(&rig.ctx()), Some(2));
    }

    #[test]
    fn none_when_no_work_or_no_vcpus() {
        let rig = Rig::new(4);
        let mut p = taichi();
        assert_eq!(p.pick_vcpu(&rig.ctx()), None);
        let empty = Rig::new(0);
        assert_eq!(p.pick_vcpu(&empty.ctx()), None);
    }

    #[test]
    fn placed_vcpu_not_runnable() {
        let mut rig = Rig::new(2);
        rig.give_work(0);
        rig.give_work(1);
        let mut p = taichi();
        let i = p.pick_vcpu(&rig.ctx()).unwrap();
        rig.vsched.vcpu_mut(i).place(CpuId(0), SimTime::ZERO);
        rig.vsched.record_placement(i, CpuId(0));
        let j = p.pick_vcpu(&rig.ctx()).unwrap();
        assert_ne!(i, j);
    }

    #[test]
    fn lock_reschedule_prefers_idle_dp() {
        let rig = Rig::new(2);
        let mut p = taichi();
        let idle = [CpuId(2), CpuId(5)];
        let cp = [CpuId(8), CpuId(9)];
        let pick = p.pick_reschedule_host(&rig.ctx(), &idle, &cp).unwrap();
        assert_eq!(pick.host, CpuId(2));
        assert!(!pick.fallback);
    }

    #[test]
    fn lock_reschedule_skips_occupied_dp() {
        let mut rig = Rig::new(2);
        rig.vsched.record_placement(0, CpuId(2));
        let mut p = taichi();
        let idle = [CpuId(2), CpuId(5)];
        let pick = p
            .pick_reschedule_host(&rig.ctx(), &idle, &[CpuId(8)])
            .unwrap();
        assert_eq!(pick.host, CpuId(5));
    }

    #[test]
    fn lock_reschedule_falls_back_round_robin() {
        let rig = Rig::new(2);
        let mut p = taichi();
        let cp = [CpuId(8), CpuId(9), CpuId(10)];
        let picks: Vec<ReschedulePick> = (0..4)
            .map(|_| p.pick_reschedule_host(&rig.ctx(), &[], &cp).unwrap())
            .collect();
        assert!(picks.iter().all(|k| k.fallback));
        let hosts: Vec<CpuId> = picks.iter().map(|k| k.host).collect();
        assert_eq!(hosts, vec![CpuId(8), CpuId(9), CpuId(10), CpuId(8)]);
    }

    #[test]
    fn empty_everything_returns_none() {
        let rig = Rig::new(1);
        let mut p = taichi();
        assert_eq!(p.pick_reschedule_host(&rig.ctx(), &[], &[]), None);
    }

    #[test]
    fn baseline_declines_everything() {
        let mut rig = Rig::new(2);
        rig.give_work(0);
        let cfg = MachineConfig::default();
        let mut p = BaselinePolicy::new(&cfg);
        assert!(!p.uses_vcpus());
        assert!(!p.hw_probe_enabled());
        assert_eq!(p.pick_vcpu(&rig.ctx()), None);
        assert_eq!(
            p.pick_reschedule_host(&rig.ctx(), &[CpuId(2)], &[CpuId(8)]),
            None
        );
        assert!(!p.clamp_yield_to_max(CpuId(0)));
    }

    #[test]
    fn policy_kind_round_trips() {
        for k in PolicyKind::all() {
            assert_eq!(k.to_string().parse::<PolicyKind>(), Ok(k));
            assert_eq!(PolicyKind::for_mode(k.canonical_mode()), k);
        }
        assert!("cfs".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn ablation_modes_map_to_taichi_policy() {
        assert_eq!(
            PolicyKind::for_mode(Mode::TaiChiNoHwProbe),
            PolicyKind::TaiChi
        );
        assert_eq!(PolicyKind::for_mode(Mode::TaiChiVdp), PolicyKind::TaiChi);
        let cfg = MachineConfig::default();
        assert!(!make_scheduler(Mode::TaiChiNoHwProbe, &cfg).hw_probe_enabled());
        assert!(make_scheduler(Mode::TaiChiVdp, &cfg).hw_probe_enabled());
        assert!(make_scheduler(Mode::TaiChi, &cfg).hw_probe_enabled());
    }

    #[test]
    fn make_scheduler_names_match_modes() {
        let cfg = MachineConfig::default();
        for mode in Mode::all() {
            let s = make_scheduler(mode, &cfg);
            assert_eq!(s.name(), PolicyKind::for_mode(mode).to_string());
            assert_eq!(s.uses_vcpus(), mode.has_taichi());
        }
    }
}
