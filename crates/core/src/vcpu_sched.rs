//! vCPU scheduler bookkeeping (§4.1).
//!
//! Owns the vCPU pool, the round-robin runnable queue, and the
//! host-CPU occupancy map. The event-driven half of the scheduler (the
//! softirq raising, VM-enter/exit timing, adaptive slice updates) lives
//! in [`crate::machine`]; this module keeps the pure state so the
//! policies are unit-testable:
//!
//! - **Round-robin selection** of a runnable vCPU for an idle DP CPU —
//!   a vCPU is runnable when it is descheduled and its kernel CPU has
//!   work.
//! - **Safe lock-context rescheduling**: a vCPU preempted inside a lock
//!   context is immediately re-placed on another idle DP pCPU, falling
//!   back round-robin onto a dedicated CP pCPU, guaranteeing forward
//!   progress for spinlock holders (the `P^N` argument of §4.1).

use taichi_hw::CpuId;
use taichi_sim::Counter;
use taichi_virt::Vcpu;

/// vCPU pool and placement state.
#[derive(Clone, Debug)]
pub struct VcpuScheduler {
    vcpus: Vec<Vcpu>,
    rr_next: usize,
    /// Occupancy per physical CPU index.
    occupancy: Vec<Option<usize>>,
    cp_rr: usize,
    yields: Counter,
    lock_reschedules: Counter,
    lock_fallbacks: Counter,
}

impl VcpuScheduler {
    /// Creates a scheduler for `vcpu_ids` (kernel CPU IDs of the
    /// vCPUs) over `num_physical` physical CPUs.
    pub fn new(vcpu_ids: &[CpuId], num_physical: u32) -> Self {
        VcpuScheduler {
            vcpus: vcpu_ids.iter().map(|&id| Vcpu::new(id)).collect(),
            rr_next: 0,
            occupancy: vec![None; num_physical as usize],
            cp_rr: 0,
            yields: Counter::new(),
            lock_reschedules: Counter::new(),
            lock_fallbacks: Counter::new(),
        }
    }

    /// Number of vCPUs in the pool.
    pub fn len(&self) -> usize {
        self.vcpus.len()
    }

    /// True when the pool is empty (baseline modes).
    pub fn is_empty(&self) -> bool {
        self.vcpus.is_empty()
    }

    /// Immutable access to vCPU `idx`.
    pub fn vcpu(&self, idx: usize) -> &Vcpu {
        &self.vcpus[idx]
    }

    /// Mutable access to vCPU `idx`.
    pub fn vcpu_mut(&mut self, idx: usize) -> &mut Vcpu {
        &mut self.vcpus[idx]
    }

    /// Iterates all vCPUs.
    pub fn vcpus(&self) -> &[Vcpu] {
        &self.vcpus
    }

    /// The vCPU currently occupying physical CPU `host`, if any.
    pub fn occupant(&self, host: CpuId) -> Option<usize> {
        self.occupancy.get(host.index()).copied().flatten()
    }

    /// True when `host` has no vCPU on it.
    pub fn host_free(&self, host: CpuId) -> bool {
        self.occupant(host).is_none()
    }

    /// Picks the next runnable vCPU round-robin: descheduled and with
    /// pending kernel work.
    pub fn pick_runnable(&mut self, has_work: impl Fn(usize) -> bool) -> Option<usize> {
        let n = self.vcpus.len();
        for step in 0..n {
            let idx = (self.rr_next + step) % n;
            if self.vcpus[idx].is_descheduled() && has_work(idx) {
                self.rr_next = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// Records a placement of vCPU `idx` on `host` (a DP→CP yield).
    ///
    /// # Panics
    ///
    /// Panics when the host is already occupied — one vCPU per core.
    pub fn record_placement(&mut self, idx: usize, host: CpuId) {
        let slot = self
            .occupancy
            .get_mut(host.index())
            .unwrap_or_else(|| panic!("placement on unknown {host}"));
        assert!(slot.is_none(), "{host} already hosts vCPU {slot:?}");
        *slot = Some(idx);
        self.yields.inc();
    }

    /// Clears the occupancy of `host` (after VM-exit completes).
    pub fn clear_placement(&mut self, host: CpuId) -> Option<usize> {
        self.occupancy.get_mut(host.index()).and_then(|s| s.take())
    }

    /// Chooses where to immediately re-place a vCPU that was preempted
    /// inside a lock context: the first free idle DP CPU, else a CP
    /// CPU round-robin. Returns `None` only when both lists are empty.
    pub fn pick_reschedule_host(
        &mut self,
        idle_dp_hosts: &[CpuId],
        cp_hosts: &[CpuId],
    ) -> Option<CpuId> {
        self.lock_reschedules.inc();
        if let Some(&h) = idle_dp_hosts.iter().find(|h| self.host_free(**h)) {
            return Some(h);
        }
        if cp_hosts.is_empty() {
            return None;
        }
        self.lock_fallbacks.inc();
        let pick = cp_hosts[self.cp_rr % cp_hosts.len()];
        self.cp_rr += 1;
        Some(pick)
    }

    /// Total DP→CP yields (placements).
    pub fn total_yields(&self) -> u64 {
        self.yields.get()
    }

    /// Total safe lock-context reschedules.
    pub fn total_lock_reschedules(&self) -> u64 {
        self.lock_reschedules.get()
    }

    /// Lock-context reschedules that had to fall back to a CP pCPU.
    pub fn total_lock_fallbacks(&self) -> u64 {
        self.lock_fallbacks.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_sim::SimTime;

    fn sched(n: usize) -> VcpuScheduler {
        let ids: Vec<CpuId> = (12..12 + n as u32).map(CpuId).collect();
        VcpuScheduler::new(&ids, 12)
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut s = sched(3);
        // All runnable.
        let picks: Vec<usize> = (0..6)
            .map(|_| {
                let i = s.pick_runnable(|_| true).unwrap();
                // Simulate placing + releasing immediately.
                i
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skip_vcpus_without_work() {
        let mut s = sched(3);
        let pick = s.pick_runnable(|i| i == 2);
        assert_eq!(pick, Some(2));
        // RR pointer advanced past 2.
        let pick2 = s.pick_runnable(|i| i == 2);
        assert_eq!(pick2, Some(2));
    }

    #[test]
    fn placed_vcpu_not_runnable() {
        let mut s = sched(2);
        let i = s.pick_runnable(|_| true).unwrap();
        s.vcpu_mut(i).place(CpuId(0), SimTime::ZERO);
        s.record_placement(i, CpuId(0));
        assert_eq!(s.occupant(CpuId(0)), Some(i));
        assert!(!s.host_free(CpuId(0)));
        // Only the other vCPU can be picked now.
        let j = s.pick_runnable(|_| true).unwrap();
        assert_ne!(i, j);
    }

    #[test]
    fn none_when_no_work() {
        let mut s = sched(4);
        assert_eq!(s.pick_runnable(|_| false), None);
    }

    #[test]
    #[should_panic(expected = "already hosts")]
    fn double_occupancy_panics() {
        let mut s = sched(2);
        s.record_placement(0, CpuId(1));
        s.record_placement(1, CpuId(1));
    }

    #[test]
    fn clear_placement_roundtrip() {
        let mut s = sched(1);
        s.record_placement(0, CpuId(5));
        assert_eq!(s.clear_placement(CpuId(5)), Some(0));
        assert!(s.host_free(CpuId(5)));
        assert_eq!(s.clear_placement(CpuId(5)), None);
        assert_eq!(s.total_yields(), 1);
    }

    #[test]
    fn lock_reschedule_prefers_idle_dp() {
        let mut s = sched(2);
        let idle = [CpuId(2), CpuId(5)];
        let cp = [CpuId(8), CpuId(9)];
        assert_eq!(s.pick_reschedule_host(&idle, &cp), Some(CpuId(2)));
        assert_eq!(s.total_lock_reschedules(), 1);
        assert_eq!(s.total_lock_fallbacks(), 0);
    }

    #[test]
    fn lock_reschedule_skips_occupied_dp() {
        let mut s = sched(2);
        s.record_placement(0, CpuId(2));
        let idle = [CpuId(2), CpuId(5)];
        let cp = [CpuId(8)];
        assert_eq!(s.pick_reschedule_host(&idle, &cp), Some(CpuId(5)));
    }

    #[test]
    fn lock_reschedule_falls_back_round_robin() {
        let mut s = sched(2);
        let cp = [CpuId(8), CpuId(9), CpuId(10)];
        assert_eq!(s.pick_reschedule_host(&[], &cp), Some(CpuId(8)));
        assert_eq!(s.pick_reschedule_host(&[], &cp), Some(CpuId(9)));
        assert_eq!(s.pick_reschedule_host(&[], &cp), Some(CpuId(10)));
        assert_eq!(s.pick_reschedule_host(&[], &cp), Some(CpuId(8)));
        assert_eq!(s.total_lock_fallbacks(), 4);
    }

    #[test]
    fn empty_everything_returns_none() {
        let mut s = sched(1);
        assert_eq!(s.pick_reschedule_host(&[], &[]), None);
    }
}
