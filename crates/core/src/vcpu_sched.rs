//! vCPU pool bookkeeping (§4.1): the *mechanism* half.
//!
//! Owns the vCPU pool, the host-CPU occupancy map, and the scheduling
//! counters. The *decisions* — which runnable vCPU an idle DP CPU is
//! granted to, and where a lock-holding vCPU is re-placed — live in
//! the policy layer ([`crate::sched::Scheduler`]); the event-driven
//! plumbing (softirq raising, VM-enter/exit timing) lives in
//! [`crate::machine`]. This module keeps the pure state so both stay
//! unit-testable.

use taichi_hw::CpuId;
use taichi_sim::Counter;
use taichi_virt::Vcpu;

/// vCPU pool and placement state.
#[derive(Clone, Debug)]
pub struct VcpuScheduler {
    vcpus: Vec<Vcpu>,
    /// Occupancy per physical CPU index.
    occupancy: Vec<Option<usize>>,
    yields: Counter,
    lock_reschedules: Counter,
    lock_fallbacks: Counter,
}

impl VcpuScheduler {
    /// Creates a scheduler for `vcpu_ids` (kernel CPU IDs of the
    /// vCPUs) over `num_physical` physical CPUs.
    pub fn new(vcpu_ids: &[CpuId], num_physical: u32) -> Self {
        VcpuScheduler {
            vcpus: vcpu_ids.iter().map(|&id| Vcpu::new(id)).collect(),
            occupancy: vec![None; num_physical as usize],
            yields: Counter::new(),
            lock_reschedules: Counter::new(),
            lock_fallbacks: Counter::new(),
        }
    }

    /// Number of vCPUs in the pool.
    pub fn len(&self) -> usize {
        self.vcpus.len()
    }

    /// True when the pool is empty (baseline modes).
    pub fn is_empty(&self) -> bool {
        self.vcpus.is_empty()
    }

    /// Immutable access to vCPU `idx`.
    pub fn vcpu(&self, idx: usize) -> &Vcpu {
        &self.vcpus[idx]
    }

    /// Mutable access to vCPU `idx`.
    pub fn vcpu_mut(&mut self, idx: usize) -> &mut Vcpu {
        &mut self.vcpus[idx]
    }

    /// Iterates all vCPUs.
    pub fn vcpus(&self) -> &[Vcpu] {
        &self.vcpus
    }

    /// The vCPU currently occupying physical CPU `host`, if any.
    pub fn occupant(&self, host: CpuId) -> Option<usize> {
        self.occupancy.get(host.index()).copied().flatten()
    }

    /// True when `host` has no vCPU on it.
    pub fn host_free(&self, host: CpuId) -> bool {
        self.occupant(host).is_none()
    }

    /// Records a placement of vCPU `idx` on `host` (a DP→CP yield).
    ///
    /// # Panics
    ///
    /// Panics when the host is already occupied — one vCPU per core.
    pub fn record_placement(&mut self, idx: usize, host: CpuId) {
        let slot = self
            .occupancy
            .get_mut(host.index())
            .unwrap_or_else(|| panic!("placement on unknown {host}"));
        assert!(slot.is_none(), "{host} already hosts vCPU {slot:?}");
        *slot = Some(idx);
        self.yields.inc();
    }

    /// Clears the occupancy of `host` (after VM-exit completes).
    pub fn clear_placement(&mut self, host: CpuId) -> Option<usize> {
        self.occupancy.get_mut(host.index()).and_then(|s| s.take())
    }

    /// Counts a lock-context reschedule attempt (§4.1). The machine
    /// calls this on every attempt, before the policy's pick, so the
    /// counter also covers attempts that found nowhere to place.
    pub fn note_lock_reschedule(&mut self) {
        self.lock_reschedules.inc();
    }

    /// Counts a lock-context reschedule that fell back to a CP pCPU.
    pub fn note_lock_fallback(&mut self) {
        self.lock_fallbacks.inc();
    }

    /// Total DP→CP yields (placements).
    pub fn total_yields(&self) -> u64 {
        self.yields.get()
    }

    /// Total safe lock-context reschedules.
    pub fn total_lock_reschedules(&self) -> u64 {
        self.lock_reschedules.get()
    }

    /// Lock-context reschedules that had to fall back to a CP pCPU.
    pub fn total_lock_fallbacks(&self) -> u64 {
        self.lock_fallbacks.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: usize) -> VcpuScheduler {
        let ids: Vec<CpuId> = (12..12 + n as u32).map(CpuId).collect();
        VcpuScheduler::new(&ids, 12)
    }

    #[test]
    #[should_panic(expected = "already hosts")]
    fn double_occupancy_panics() {
        let mut s = sched(2);
        s.record_placement(0, CpuId(1));
        s.record_placement(1, CpuId(1));
    }

    #[test]
    fn clear_placement_roundtrip() {
        let mut s = sched(1);
        s.record_placement(0, CpuId(5));
        assert_eq!(s.occupant(CpuId(5)), Some(0));
        assert!(!s.host_free(CpuId(5)));
        assert_eq!(s.clear_placement(CpuId(5)), Some(0));
        assert!(s.host_free(CpuId(5)));
        assert_eq!(s.clear_placement(CpuId(5)), None);
        assert_eq!(s.total_yields(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = sched(2);
        s.note_lock_reschedule();
        s.note_lock_reschedule();
        s.note_lock_fallback();
        assert_eq!(s.total_lock_reschedules(), 2);
        assert_eq!(s.total_lock_fallbacks(), 1);
    }
}
