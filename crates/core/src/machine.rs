//! Full-system composition: the SmartNIC machine simulator.
//!
//! A [`Machine`] wires every substrate together — accelerator, rx
//! rings, APIC fabric, kernel, DP services, CP tasks, vCPUs — and runs
//! the discrete-event loop. [`Mode`] selects the scheduling regime
//! under test:
//!
//! | Mode | CP placement | DP placement | Probes |
//! |------|--------------|--------------|--------|
//! | [`Mode::Baseline`] | 4 CP pCPUs (static) | 8 pCPUs native | — |
//! | [`Mode::TaiChi`] | CP pCPUs + vCPUs | pCPUs native | SW + HW |
//! | [`Mode::TaiChiNoHwProbe`] | CP pCPUs + vCPUs | pCPUs native | SW only |
//! | [`Mode::TaiChiVdp`] | CP pCPUs + vCPUs | inside vCPUs (taxed) | SW + HW |
//! | [`Mode::Type2`] | guest OS (taxed, RPC IPC) | 7 pCPUs (1 lost to QEMU) | — |
//!
//! # The two scheduling paths (Fig. 7b)
//!
//! **DP→CP yield**: a DP service's empty-poll count crosses the
//! adaptive threshold → `DpIdle` event → the vCPU scheduler picks a
//! runnable vCPU round-robin, raises the dedicated softirq, flips the
//! hardware probe register to V-state, and VM-enters the vCPU; the
//! kernel CPU behind the vCPU is resumed for exactly the grant.
//!
//! **CP→DP preempt**: a packet for a V-state CPU arrives at the
//! accelerator → probe IRQ → VM-exit begins immediately and completes
//! within the 2 µs switch latency, overlapped with the 3.2 µs
//! preprocess+transfer window, so the DP service is back on the core
//! before the packet reaches shared memory.

use crate::config::{MachineConfig, SkipMode};
use crate::orchestrator::{IpiOrchestrator, RouteDecision};
use crate::probe_sw::AdaptiveYield;
use crate::sched::{make_scheduler, KernelCtx, PolicyKind, Scheduler};
use crate::vcpu_sched::VcpuScheduler;

use taichi_cp::{CpTaskKind, TaskFactory, VmCreateRequest, VmStartupTracker};
use taichi_dp::{DpService, TrafficGen};
use taichi_hw::{
    Accelerator, ApicFabric, CpuExecState, CpuId, HwWorkloadProbe, IoKind, IrqVector, Packet,
    PacketId,
};
use taichi_os::{ActionBuf, CpuSet, Kernel, KernelAction, Program, Segment, SoftirqKind, ThreadId};
use taichi_sim::trace::FailureDump;
use taichi_sim::{
    EventQueue, EventToken, FaultInjector, IpiFate, QueueBackend, Rng, SimDuration, SimTime,
    TraceKind, Tracer,
};
use taichi_virt::{VcpuState, VmExitReason};

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// CPU number used for fault/degrade trace events that are not tied to
/// any particular CPU (wakeup timers, storm bursts).
const NO_CPU: u32 = u32::MAX;

/// Scheduling regime under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Production static partitioning (the paper's SOTA baseline).
    Baseline,
    /// Full Tai Chi.
    TaiChi,
    /// Tai Chi with the hardware workload probe disabled (Table 5
    /// ablation): vCPUs are only reclaimed at slice expiry.
    TaiChiNoHwProbe,
    /// Type-1-like: Tai Chi, but DP services also execute in vCPU
    /// contexts and pay the guest execution tax (§6.3's Tai Chi-vDP).
    TaiChiVdp,
    /// Traditional type-2 (QEMU+KVM): CP in a separate guest OS, one
    /// DP pCPU lost to emulation, IPC broken into RPC.
    Type2,
}

impl Mode {
    /// True for the modes that run the Tai Chi scheduler.
    pub fn has_taichi(self) -> bool {
        matches!(self, Mode::TaiChi | Mode::TaiChiNoHwProbe | Mode::TaiChiVdp)
    }

    /// All modes, in evaluation order.
    pub fn all() -> [Mode; 5] {
        [
            Mode::Baseline,
            Mode::TaiChi,
            Mode::TaiChiNoHwProbe,
            Mode::TaiChiVdp,
            Mode::Type2,
        ]
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Mode::Baseline => "baseline",
            Mode::TaiChi => "taichi",
            Mode::TaiChiNoHwProbe => "taichi-no-hwprobe",
            Mode::TaiChiVdp => "taichi-vdp",
            Mode::Type2 => "type2",
        };
        f.write_str(s)
    }
}

#[derive(Debug)]
enum Event {
    NextArrival {
        gen: usize,
    },
    Delivered {
        packet: Packet,
    },
    ProbeIrq {
        host: CpuId,
    },
    DpIdle {
        host: CpuId,
        gen: u64,
    },
    VcpuEntered {
        idx: usize,
    },
    VcpuSliceExpire {
        idx: usize,
        gen: u64,
    },
    VcpuExited {
        idx: usize,
    },
    KernelDecide {
        cpu: CpuId,
        gen: u64,
    },
    KernelWake {
        tid: ThreadId,
    },
    DpBurstDone {
        si: usize,
    },
    VmCreate {
        request: VmCreateRequest,
        programs: Vec<Program>,
    },
    SpawnBatch {
        programs: Vec<Program>,
        batch: usize,
    },
    UtilSample,
    /// Multi-tenant ingress: the accelerator's shared ingest port is
    /// free — issue the next staged packet in DRR order. Never
    /// scheduled in the single-tenant configuration.
    ArbiterIssue,
    /// Bounded re-send of an IPI the fault layer dropped or delayed.
    IpiRetry {
        src: CpuId,
        dst: CpuId,
        vector: IrqVector,
        attempt: u32,
    },
    /// Periodic CP task-storm burst from the fault plan.
    FaultStorm,
    /// A cross-NIC packet injected by an external driver (the fleet
    /// layer's east-west delivery): enters the accelerator pipeline at
    /// its arrival time exactly like a wire arrival.
    RxInject {
        packet: Packet,
    },
}

/// Degradation-bookkeeping counters for the fault layer: every
/// recovery action the scheduler took, plus the loss counters the
/// invariant checker audits. All-zero (and empty) on a fault-free run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultHealth {
    /// Dropped IPIs re-sent with backoff.
    pub ipi_resends: u64,
    /// IPIs abandoned after exhausting the retry budget.
    pub ipi_lost: u64,
    /// Highest retry attempt any IPI reached.
    pub ipi_max_attempt: u32,
    /// Wakeup timers re-armed after a drop.
    pub wakeup_rearms: u64,
    /// Threads whose wakeup was dropped and never re-armed — each one
    /// sleeps forever (an invariant violation).
    pub lost_wakeups: Vec<ThreadId>,
    /// Context-switch softirqs re-raised after a dropped raise.
    pub softirq_rearms: u64,
    /// vCPU grants rolled back because the switch softirq stayed lost.
    pub softirq_lost_grants: u64,
    /// Yield thresholds clamped to max on storm-induced starvation.
    pub yield_clamps: u64,
    /// Event timestamps observed running backwards (always zero with a
    /// well-ordered queue; audited by the invariant checker).
    pub clock_regressions: u64,
}

/// The full-system simulator.
pub struct Machine {
    cfg: MachineConfig,
    mode: Mode,
    now: SimTime,
    queue: EventQueue<Event>,
    rng: Rng,
    bootstrapped: bool,

    accel: Accelerator,
    hw_probe: HwWorkloadProbe,
    apic: ApicFabric,
    kernel: Kernel,
    orchestrator: IpiOrchestrator,
    vsched: VcpuScheduler,
    /// The scheduling policy: every decision point below dispatches
    /// through this trait object over a [`KernelCtx`] view, so
    /// swapping policies never touches the mechanism.
    policy: Box<dyn Scheduler>,

    services: Vec<DpService>,
    dp_cpu_ids: Vec<CpuId>,
    cp_cpu_ids: Vec<CpuId>,
    cp_affinity: CpuSet,

    generators: Vec<TrafficGen>,
    /// One independent RNG stream per generator, derived from the seed
    /// alone — so the offered load is bit-identical across modes and
    /// unaffected by how the run consumes the machine RNG.
    gen_rngs: Vec<Rng>,
    pending_packet: Vec<Option<Packet>>,

    /// Per-CPU decision-timer generation, indexed by `CpuId::index()`
    /// (dense — the hot loop must not hash).
    kernel_gen: Vec<u64>,
    /// Reusable scratch buffer for kernel calls (taken/restored around
    /// each call so reentrant action handling gets a fresh default).
    scratch: ActionBuf,
    /// True when kernel or vCPU-occupancy state changed since the last
    /// [`Machine::fill_idle_cp_hosts`] pass. Pure packet events leave
    /// it clear, so the majority of events skip the CP-host scan.
    cp_fill_dirty: bool,
    /// Events physically dispatched to handlers.
    events_dispatched: u64,
    /// Superseded timers cancelled before dispatch by the skip layer
    /// (each one a stale-generation no-op a skip-off run would have
    /// dispatched). `events_dispatched + events_skipped` is invariant
    /// across skip modes.
    events_skipped: u64,
    /// Idle-time skipping resolved at construction (`cfg.skip`, else
    /// `TAICHI_SKIP`): cancel superseded timers instead of dispatching
    /// them later as stale no-ops.
    skip: bool,
    /// Cached `policy.uses_vcpus()` — the policy never changes after
    /// construction, and the flag gates every idle-arm and CP-fill
    /// pass, so the virtual call is hoisted out of the hot loop.
    uses_vcpus: bool,
    /// Outstanding timer tokens for the skip layer (the most recent
    /// DpIdle per service / slice expiry per vCPU / decision tick per
    /// CPU), each paired with its deadline. A stale entry is harmless:
    /// cancel on a fired token is a recorded-nothing no-op.
    dp_idle_tok: Vec<Option<(EventToken, SimTime)>>,
    vcpu_slice_tok: Vec<Option<(EventToken, SimTime)>>,
    kernel_tok: Vec<Option<(EventToken, SimTime)>>,
    /// Deadlines of cancelled timers not yet folded into
    /// `events_skipped`: a skip-off run dispatches a superseded timer
    /// only when the clock reaches its deadline, so a cancelled timer
    /// counts as skipped only once `now` passes it — deadlines beyond
    /// the final horizon would never have fired and must never count.
    skipped_deadlines: BinaryHeap<Reverse<u64>>,
    dp_idle_gen: Vec<u64>,
    dp_busy: Vec<bool>,
    /// Packets ingested into the accelerator but not yet delivered,
    /// per DP CPU (the §9 pipeline-occupancy signal).
    dp_inflight: Vec<u32>,
    yield_vetoes: u64,
    vcpu_gen: Vec<u64>,
    pending_preempt: Vec<bool>,
    yield_armed: Vec<bool>,
    grant_host: Vec<Option<CpuId>>,
    cp_host_suspended: Vec<bool>,

    trackers: Vec<VmStartupTracker>,
    tid_to_tracker: HashMap<ThreadId, usize>,
    vm_startup_times: Vec<SimDuration>,

    batches: Vec<Vec<ThreadId>>,

    /// Reusable same-timestamp batch buffer for [`Machine::run_until`]:
    /// one queue access drains a whole burst, and the buffer keeps its
    /// capacity across batches so the steady-state loop never allocates.
    event_batch: Vec<Event>,
    /// O(1) `CpuId` → DP-service index, dense by `CpuId::index()`
    /// (`None` for non-DP CPUs). Replaces a linear scan that ran
    /// several times per packet event.
    dp_index_map: Vec<Option<usize>>,
    /// Reusable scratch for the lock-context reschedule host lists
    /// (capacity retained, so the §4.1 path stops allocating after its
    /// first use).
    scratch_idle_dp: Vec<CpuId>,
    scratch_cp_hosts: Vec<CpuId>,

    util_samples: Vec<f64>,
    util_interval: Option<SimDuration>,

    posted_interrupts: u64,
    /// Packets delivered through [`Machine::inject_rx`]; doubles as
    /// the sequence counter for their salted ID namespace.
    injected_rx: u64,
    /// True while an [`Event::ArbiterIssue`] is outstanding — at most
    /// one issue event is in flight, so the shared ingest port is
    /// modelled without event cancellation. Always false when
    /// single-tenant.
    arbiter_armed: bool,
    /// Packets ingested for a CPU with no DP service behind it (Type-2
    /// runs emulate away DP CPUs). Previously these vanished from
    /// every counter; the conservation audit (invariant 6) now
    /// balances against this. Counted at ingest so the equation holds
    /// even while such a packet is still in the pipeline.
    unrouted: u64,

    tracer: Option<Tracer>,
    /// Present only when the (env-overlaid) fault plan is active; a
    /// `None` here means zero fault branches are ever taken.
    fault: Option<FaultInjector>,
    health: FaultHealth,
    /// Consecutive probe-triggered VM-exits per physical CPU (the
    /// storm-starvation signal feeding the yield clamp).
    probe_starve: Vec<u32>,
}

/// Raw VM-exit reason name for the trace.
fn exit_reason_name(reason: VmExitReason) -> &'static str {
    match reason {
        VmExitReason::SliceExpired => "slice_expired",
        VmExitReason::HwProbe => "hw_probe",
        VmExitReason::IpiSend => "ipi_send",
        VmExitReason::GuestHalt => "guest_halt",
        VmExitReason::Forced => "forced",
    }
}

/// Builds the policy's [`KernelCtx`] view inline from disjoint machine
/// fields, so `self.policy.method(&sched_ctx!(self), ..)` borrow-checks
/// (`policy` mutably, the viewed subsystems immutably).
macro_rules! sched_ctx {
    ($m:expr) => {
        KernelCtx {
            kernel: &$m.kernel,
            vsched: &$m.vsched,
            orchestrator: &$m.orchestrator,
            probe: &$m.hw_probe,
            health: &$m.health,
            now: $m.now,
        }
    };
}

impl Machine {
    /// Builds a machine in the given mode.
    ///
    /// An explicit policy selection — `cfg.policy`, or the
    /// `TAICHI_POLICY` environment variable when the config leaves it
    /// `None` — wins over `mode` when the two disagree: the machine
    /// re-resolves to the selected policy's canonical mode. When the
    /// selection matches the mode's own policy (e.g. `taichi` on any
    /// Tai Chi ablation mode), the richer mode is kept unchanged, so
    /// `--policy taichi` never flattens `taichi-vdp` into plain
    /// `taichi`.
    pub fn new(cfg: MachineConfig, mode: Mode) -> Self {
        let mode = match cfg.policy.or_else(PolicyKind::from_env) {
            Some(kind) if PolicyKind::for_mode(mode) != kind => kind.canonical_mode(),
            _ => mode,
        };
        let policy = make_scheduler(mode, &cfg);
        // Borrowed, not cloned: thousands of short-lived machines go
        // through here under `par::sweep`, and the spec is only read
        // during construction.
        let spec = &cfg.spec;
        let num_cpus = spec.num_cpus;
        let rng = Rng::new(cfg.seed);
        let dp_count = match mode {
            Mode::Type2 => cfg.type2.effective_dp_cpus(spec.dp_cpus),
            _ => spec.dp_cpus,
        };
        let dp_cpu_ids: Vec<CpuId> = (0..dp_count).map(CpuId).collect();
        let cp_cpu_ids = spec.cp_cpu_ids();

        let mut kernel = Kernel::new(cfg.kernel.clone(), &cp_cpu_ids);
        let mut orchestrator = IpiOrchestrator::new(spec.num_cpus);
        let num_vcpus = if policy.uses_vcpus() {
            cfg.taichi.num_vcpus
        } else {
            0
        };
        let vcpu_ids = orchestrator.register_vcpus(&mut kernel, num_vcpus, SimTime::ZERO);
        let mut boot_acts = ActionBuf::new();
        for &v in &vcpu_ids {
            // vCPUs start with no physical time. Boot-time actions are
            // moot: the event loop re-arms every CPU on bootstrap.
            kernel.pause_cpu(v, SimTime::ZERO, &mut boot_acts);
            boot_acts.clear();
        }
        let vsched = VcpuScheduler::new(&vcpu_ids, spec.num_cpus);

        // One shared config for every service (the per-service deep
        // clone used to dominate `Machine::new` for sweep workloads).
        let mut dp_cfg = cfg.dp.clone();
        if cfg.taichi.cache_isolation {
            // §9: cache/TLB partitioning removes grant pollution.
            dp_cfg.pollution_tax = 1.0;
        }
        // Fleet footprint: defer the rx rings' backing reservation (the
        // single largest per-machine block — 8 services x 1024
        // descriptors). The capacity bound is unchanged, so drops are
        // identical.
        dp_cfg.eager_ring = cfg.footprint.eager_rings();
        let dp_cfg = Arc::new(dp_cfg);
        let mut services: Vec<DpService> = dp_cpu_ids
            .iter()
            .map(|&c| DpService::with_shared_config(c, Arc::clone(&dp_cfg)))
            .collect();
        let mut dp_index_map = vec![None; num_cpus as usize];
        for (i, c) in dp_cpu_ids.iter().enumerate() {
            dp_index_map[c.index()] = Some(i);
        }
        if mode == Mode::TaiChiVdp {
            for s in &mut services {
                s.set_exec_tax(cfg.vdp_exec_tax);
            }
        }
        if mode == Mode::Type2 {
            for s in &mut services {
                s.set_exec_tax(cfg.type2.dp_interference_tax);
            }
        }

        let mut cp_affinity: CpuSet = cp_cpu_ids.iter().copied().collect();
        for &v in &vcpu_ids {
            cp_affinity.insert(v);
        }

        let mut hw_probe = HwWorkloadProbe::new(spec.num_cpus);
        if !policy.hw_probe_enabled() {
            hw_probe.set_enabled(false);
        }

        // Tracing is on when configured explicitly or when the
        // `TAICHI_TRACE` dump path is set (so a plain
        // `TAICHI_TRACE=/tmp/t.tsv cargo test` captures failing
        // schedules without code changes). The tracer only records the
        // schedule; it never influences it.
        let trace_on = cfg.trace.enabled || std::env::var_os("TAICHI_TRACE").is_some();
        let tracer = trace_on.then(|| Tracer::new(cfg.trace.capacity));
        let mut accel = Accelerator::new(cfg.accel.clone());
        if let Some(t) = &tracer {
            kernel.set_tracer(t.clone());
            accel.set_tracer(t.clone());
        }

        // Fault layer: the injector exists only when the plan (after
        // the TAICHI_FAULTS overlay) can actually fire, so inactive
        // plans leave every subsystem on its pre-fault fast path and
        // runs byte-identical.
        let fault_plan = cfg.faults.with_env_overrides();
        let fault = FaultInjector::from_plan(&fault_plan, cfg.seed);
        let mut apic = ApicFabric::new(spec.num_cpus + num_vcpus, SimDuration::from_nanos(300));
        if let Some(f) = &fault {
            if let Some(t) = &tracer {
                f.set_tracer(t.clone());
            }
            kernel.set_fault(f.clone());
            accel.set_fault(f.clone());
            apic.set_fault(f.clone());
            for s in &mut services {
                s.set_fault(f.clone());
            }
        }

        // Multi-tenant data path (DESIGN.md §3.11): constructed only
        // when asked for, so the default single-tenant machine carries
        // zero tenant state and stays byte-identical to the pre-tenant
        // engine.
        if cfg.tenants.is_multi() {
            accel.enable_tenants_with_eagerness(
                &cfg.tenants.effective_weights(),
                cfg.tenants.quantum,
                cfg.tenants.ring_capacity,
                cfg.footprint.eager_rings(),
            );
            for s in &mut services {
                s.set_tenants(cfg.tenants.count as usize);
            }
        }

        let n_v = vcpu_ids.len();
        let skip = cfg.skip.unwrap_or_else(SkipMode::from_env).is_on();
        let uses_vcpus = policy.uses_vcpus();
        Machine {
            accel,
            hw_probe,
            apic,
            kernel,
            orchestrator,
            vsched,
            policy,
            services,
            dp_cpu_ids,
            cp_cpu_ids,
            cp_affinity,
            generators: Vec::new(),
            gen_rngs: Vec::new(),
            pending_packet: Vec::new(),
            kernel_gen: Vec::new(),
            scratch: ActionBuf::new(),
            cp_fill_dirty: true,
            events_dispatched: 0,
            events_skipped: 0,
            skip,
            uses_vcpus,
            dp_idle_tok: vec![None; dp_count as usize],
            vcpu_slice_tok: vec![None; n_v],
            kernel_tok: Vec::new(),
            // Hot profile: sized for the worst observed steady state
            // (pending not-yet-matured cancels across every timer
            // class) so the hot loop stays allocation-free. Fleet
            // profile: starts small and grows to the working set.
            skipped_deadlines: BinaryHeap::with_capacity(cfg.footprint.skipped_deadline_capacity()),
            dp_idle_gen: vec![0; dp_count as usize],
            dp_busy: vec![false; dp_count as usize],
            dp_inflight: vec![0; dp_count as usize],
            yield_vetoes: 0,
            vcpu_gen: vec![0; n_v],
            pending_preempt: vec![false; n_v],
            yield_armed: vec![false; dp_count as usize],
            grant_host: vec![None; n_v],
            cp_host_suspended: vec![false; num_cpus as usize],
            trackers: Vec::new(),
            tid_to_tracker: HashMap::new(),
            vm_startup_times: Vec::new(),
            batches: Vec::new(),
            event_batch: Vec::new(),
            dp_index_map,
            scratch_idle_dp: Vec::new(),
            scratch_cp_hosts: Vec::new(),
            util_samples: Vec::new(),
            util_interval: None,
            posted_interrupts: 0,
            injected_rx: 0,
            arbiter_armed: false,
            unrouted: 0,
            tracer,
            fault,
            health: FaultHealth::default(),
            probe_starve: vec![0; num_cpus as usize],
            now: SimTime::ZERO,
            queue: {
                let mut q = EventQueue::with_backend_and_slots(
                    QueueBackend::from_env(),
                    cfg.footprint.initial_event_slots(),
                );
                if cfg.footprint.eager_rings() {
                    // Hot profile: materialize the wheel's bucket-head
                    // chunks too, so the audited steady-state loop
                    // never pays a mid-run chunk allocation.
                    q.prewarm();
                }
                q
            },
            rng,
            bootstrapped: false,
            cfg,
            mode,
        }
    }

    /// The mode this machine runs in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    // ---------------------------------------------------------------
    // Workload setup.
    // ---------------------------------------------------------------

    /// Adds a traffic generator; arrivals flow once the machine runs.
    ///
    /// Each generator gets its own RNG stream derived purely from the
    /// seed and its index, so identical seeds offer bit-identical
    /// arrival processes to every scheduling mode.
    pub fn add_traffic(&mut self, mut generator: TrafficGen) {
        let idx = self.generators.len();
        let mut rng = Rng::stream(self.cfg.seed, idx as u64);
        let first = generator.next_packet(&mut rng);
        let at = first.submitted_at.max(self.now);
        self.generators.push(generator);
        self.gen_rngs.push(rng);
        self.pending_packet.push(Some(first));
        self.queue.schedule(at, Event::NextArrival { gen: idx });
    }

    /// Injects one cross-NIC rx packet arriving at `at` (clamped to
    /// the current clock): the fleet layer delivers east-west traffic
    /// originating on other machines through this hook. The packet is
    /// assigned a machine-unique ID in a dedicated high-bit-salted
    /// namespace — injected IDs never collide with generator-produced
    /// ones — and enters the accelerator pipeline exactly like a wire
    /// arrival (preprocess, V-state probe check, shared-memory
    /// delivery). Injection order is part of the deterministic
    /// schedule: identical injection sequences give bit-identical
    /// runs.
    pub fn inject_rx(
        &mut self,
        at: SimTime,
        kind: IoKind,
        size_bytes: u32,
        dest_cpu: CpuId,
    ) -> PacketId {
        self.inject_rx_for_tenant(at, kind, size_bytes, dest_cpu, taichi_hw::TenantId::HOST)
    }

    /// [`Machine::inject_rx`] with an explicit tenant tag — east-west
    /// traffic belonging to a specific tenant in a multi-tenant fleet.
    /// Tagging is pure relabelling: with one tenant the tag is ignored
    /// by every downstream component.
    pub fn inject_rx_for_tenant(
        &mut self,
        at: SimTime,
        kind: IoKind,
        size_bytes: u32,
        dest_cpu: CpuId,
        tenant: taichi_hw::TenantId,
    ) -> PacketId {
        const INJECT_SALT: u64 = 1 << 63;
        let id = PacketId(INJECT_SALT | self.injected_rx);
        self.injected_rx += 1;
        let at = at.max(self.now);
        let packet = Packet::new(id, kind, size_bytes, dest_cpu, 0, at).with_tenant(tenant);
        self.queue.schedule(at, Event::RxInject { packet });
        id
    }

    /// Packets delivered through [`Machine::inject_rx`] so far.
    pub fn injected_rx(&self) -> u64 {
        self.injected_rx
    }

    /// Drains every DP service's accumulated latency records into one
    /// merged recorder, leaving the services empty. The fleet layer
    /// calls this at each epoch boundary and folds the returned delta
    /// straight into its rack-level aggregate, so no per-machine
    /// history accumulates anywhere. Whole-run reporting
    /// ([`crate::metrics::RunReport::collect`]) reads the recorders
    /// cumulatively and must not be mixed with per-epoch draining on
    /// the same machine.
    pub fn drain_dp_recorders(&mut self) -> taichi_dp::LatencyRecorder {
        let mut merged = taichi_dp::LatencyRecorder::new();
        self.drain_dp_recorders_into(&mut merged);
        merged
    }

    /// [`Machine::drain_dp_recorders`] into a caller-owned recorder:
    /// each service's records are merged into `dest` and cleared in
    /// place, so a fleet driver draining every machine every epoch
    /// reuses one scratch recorder instead of allocating per drain.
    pub fn drain_dp_recorders_into(&mut self, dest: &mut taichi_dp::LatencyRecorder) {
        for s in &mut self.services {
            s.drain_recorder_into(dest);
        }
    }

    /// Releases memory retained past each subsystem's current working
    /// set: the event queue's storm-peak slab/overflow storage, the
    /// skipped-deadline heap's spare capacity, every DP rx ring's
    /// backing store, and the tenant staging rings. Bounded work,
    /// observably inert — the simulated schedule, stats, and traces
    /// are byte-identical with or without the call — so fleet drivers
    /// invoke it after storm recovery to keep resident memory flat
    /// across repeated storms.
    pub fn compact(&mut self) {
        self.queue.compact();
        self.skipped_deadlines.shrink_to_fit();
        for s in &mut self.services {
            s.compact();
        }
        self.accel.compact_tenant_rings();
    }

    /// Memory high-water marks for fleet footprint accounting: the
    /// event slab's peak slot count and the deepest rx-ring occupancy
    /// across DP services and tenant staging rings. Both survive
    /// [`Machine::compact`].
    pub fn memory_high_watermarks(&self) -> (usize, usize) {
        let ring = self
            .services
            .iter()
            .map(|s| s.ring_high_watermark())
            .max()
            .unwrap_or(0)
            .max(self.accel.staged_high_watermark());
        (self.queue.slab_high_watermark(), ring)
    }

    /// Approximate resident bytes of the machine's variable-size
    /// structures (event queue storage, rx-ring backing stores, tenant
    /// staging rings). Fixed-size machine state is excluded; the
    /// counting allocator gives the authoritative total.
    pub fn resident_bytes(&self) -> usize {
        self.queue.resident_bytes()
            + self
                .services
                .iter()
                .map(|s| s.ring_resident_bytes())
                .sum::<usize>()
            + self.accel.tenant_ring_resident_bytes()
    }

    /// Spawns one CP task now with the mode's default CP affinity.
    pub fn spawn_cp_now(&mut self, program: Program) -> ThreadId {
        let program = self.maybe_transform(program);
        let aff = self.cp_affinity;
        self.with_kernel(|k, now, out| k.spawn(program, aff, now, out))
    }

    /// Schedules a batch of CP tasks to spawn at `at`; returns a batch
    /// handle whose thread IDs become available once the batch fires
    /// (see [`Machine::batch_threads`]).
    pub fn schedule_cp_batch(&mut self, programs: Vec<Program>, at: SimTime) -> usize {
        let batch = self.batches.len();
        self.batches.push(Vec::new());
        self.queue
            .schedule(at.max(self.now), Event::SpawnBatch { programs, batch });
        batch
    }

    /// Thread IDs spawned for a batch (empty until the batch fires).
    pub fn batch_threads(&self, batch: usize) -> &[ThreadId] {
        &self.batches[batch]
    }

    /// Schedules a VM-creation request; device programs are generated
    /// deterministically from the machine RNG.
    pub fn schedule_vm_create(&mut self, request: VmCreateRequest, factory: &TaskFactory) {
        let programs = request.device_programs(factory, &mut self.rng);
        let at = request.issued_at.max(self.now);
        self.queue
            .schedule(at, Event::VmCreate { request, programs });
    }

    /// Enables periodic DP utilization sampling (for the Fig. 3 CDF).
    pub fn enable_util_sampling(&mut self, interval: SimDuration) {
        self.util_interval = Some(interval);
        self.queue.schedule(self.now + interval, Event::UtilSample);
    }

    /// Applies the type-2 program transformation (guest taxes + IPC→RPC
    /// penalties); identity in all other modes.
    fn maybe_transform(&self, program: Program) -> Program {
        if self.mode != Mode::Type2 {
            return program;
        }
        let m = &self.cfg.type2;
        let mut out = Program::new();
        for seg in program.segments() {
            let seg = match seg {
                Segment::UserCompute(d) => Segment::UserCompute(m.guest_cp_time(*d)),
                Segment::KernelPreemptible(d) => {
                    // Guest CP syscalls coordinating with the host-side
                    // data plane cross the OS boundary: guest tax plus
                    // the IPC→RPC penalty.
                    Segment::KernelPreemptible(m.ipc_cost(m.guest_cp_time(*d)))
                }
                Segment::NonPreemptible { dur, lock } => Segment::NonPreemptible {
                    dur: m.guest_cp_time(*dur),
                    lock: *lock,
                },
                other => other.clone(),
            };
            out = out.then(seg);
        }
        out
    }

    // ---------------------------------------------------------------
    // Event loop.
    // ---------------------------------------------------------------

    /// Runs the machine until simulated time `t`.
    ///
    /// Events are drained in same-timestamp batches: one queue access
    /// per burst instead of a peek + pop per event. Handlers scheduling
    /// *at the current instant* still fire in global `(time, seq)`
    /// order — their entries carry later sequence numbers than the
    /// whole drained batch, so the next drain picks them up in exactly
    /// the order a per-event loop would have produced. Batch-draining
    /// stays sound with the skip layer cancelling superseded timers:
    /// drained entries' tokens are generation-stale, so a cancel aimed
    /// at an event already in the current batch records nothing and the
    /// event still dispatches as the stale-generation no-op it would
    /// have been anyway.
    pub fn run_until(&mut self, t: SimTime) {
        self.bootstrap();
        let mut batch = std::mem::take(&mut self.event_batch);
        loop {
            debug_assert!(batch.is_empty());
            let Some(at) = self.queue.drain_next_batch(t, &mut batch) else {
                break;
            };
            if at < self.now {
                // The queue contract forbids this; count instead of
                // panicking so the invariant checker can report it with
                // a trace dump attached.
                self.health.clock_regressions += 1;
            }
            self.now = at;
            // Fold matured skip-layer deadlines as the clock advances:
            // draining here (one peek per batch) keeps the ledger
            // bounded by the timers still pending, not by run length.
            self.settle_skipped();
            if let Some(tr) = &self.tracer {
                tr.set_time(at);
            }
            for ev in batch.drain(..) {
                self.events_dispatched += 1;
                self.handle(ev);
            }
        }
        self.event_batch = batch; // keep the capacity for the next call
        self.now = t.max(self.now);
        self.settle_skipped();
    }

    fn bootstrap(&mut self) {
        if self.bootstrapped {
            return;
        }
        self.bootstrapped = true;
        if let Some(f) = &self.fault {
            let period = f.plan().storm_period;
            if !period.is_zero() {
                self.queue.schedule(self.now + period, Event::FaultStorm);
            }
        }
        for cpu in self.kernel.known_cpus() {
            self.rearm_kernel(cpu);
        }
        if self.uses_vcpus {
            for i in 0..self.services.len() {
                let host = self.dp_cpu_ids[i];
                self.arm_dp_idle(host);
            }
        }
    }

    /// Skip layer: cancels the superseded timer behind `tok` (when the
    /// event is still queued) and records its deadline, keeping
    /// [`Machine::events_processed`] identical to a skip-off run —
    /// which dispatches the timer as a stale-generation no-op when the
    /// clock reaches the deadline, and never if the run ends first.
    /// [`Machine::settle_skipped`] folds the matured deadlines in.
    fn skip_stale(&mut self, tok: Option<(EventToken, SimTime)>) {
        if let Some((tok, deadline)) = tok {
            if self.queue.cancel(tok) {
                self.skipped_deadlines.push(Reverse(deadline.as_nanos()));
            }
        }
    }

    /// Counts every cancelled timer whose deadline the clock has now
    /// passed — the instants where a skip-off run dispatched the same
    /// timer as a no-op.
    fn settle_skipped(&mut self) {
        while let Some(&Reverse(d)) = self.skipped_deadlines.peek() {
            if d > self.now.as_nanos() {
                break;
            }
            self.skipped_deadlines.pop();
            self.events_skipped += 1;
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::NextArrival { gen } => self.on_next_arrival(gen),
            Event::Delivered { packet } => self.on_delivered(packet),
            Event::DpBurstDone { si } => self.on_burst_done(si),
            Event::ProbeIrq { host } => self.on_probe_irq(host),
            Event::DpIdle { host, gen } => self.on_dp_idle(host, gen),
            Event::VcpuEntered { idx } => self.on_vcpu_entered(idx),
            Event::VcpuSliceExpire { idx, gen } => self.on_slice_expire(idx, gen),
            Event::VcpuExited { idx } => self.on_vcpu_exited(idx),
            Event::KernelDecide { cpu, gen } => self.on_kernel_decide(cpu, gen),
            Event::KernelWake { tid } => {
                self.with_kernel(|k, now, out| k.wakeup(tid, now, out));
            }
            Event::VmCreate { request, programs } => self.on_vm_create(request, programs),
            Event::SpawnBatch { programs, batch } => {
                for p in programs {
                    let p = self.maybe_transform(p);
                    let aff = self.cp_affinity;
                    let tid = self.with_kernel(|k, now, out| k.spawn(p, aff, now, out));
                    self.batches[batch].push(tid);
                }
            }
            Event::UtilSample => {
                let now = self.now;
                for s in &mut self.services {
                    self.util_samples.push(s.sample_utilization(now));
                }
                if let Some(iv) = self.util_interval {
                    self.queue.schedule(self.now + iv, Event::UtilSample);
                }
            }
            Event::IpiRetry {
                src,
                dst,
                vector,
                attempt,
            } => self.route_ipi(src, dst, vector, attempt),
            Event::FaultStorm => self.on_fault_storm(),
            Event::ArbiterIssue => self.on_arbiter_issue(),
            Event::RxInject { packet } => self.ingest_packet(packet),
        }
        // Only kernel mutations and vCPU exits can free a CP host or
        // make a vCPU runnable, and all of them set the dirty flag —
        // pure packet events skip the scan entirely.
        if self.cp_fill_dirty {
            self.cp_fill_dirty = false;
            self.fill_idle_cp_hosts();
        }
    }

    /// Work-conserving vCPU multiplexing over the control plane's own
    /// pCPUs: a CP pCPU with nothing native to run hosts a runnable
    /// vCPU for one slice. Without this, a thread that is *current* on
    /// a descheduled vCPU would strand whenever the data plane has no
    /// harvestable idle cycles (the kernel cannot migrate a running
    /// task off a CPU, exactly like Linux). This is the same placement
    /// machinery §4.1 uses for the lock-safety CP-pCPU fallback.
    fn fill_idle_cp_hosts(&mut self) {
        if !self.uses_vcpus {
            return;
        }
        for i in 0..self.cp_cpu_ids.len() {
            let cp = self.cp_cpu_ids[i];
            if self.cp_host_suspended[cp.index()]
                || !self.vsched.host_free(cp)
                || self.kernel.cpu_load(cp) > 0
            {
                continue;
            }
            let Some(idx) = self.policy.pick_vcpu(&sched_ctx!(self)) else {
                break;
            };
            self.place_vcpu(idx, cp);
        }
    }

    // ---------------------------------------------------------------
    // Packet path.
    // ---------------------------------------------------------------

    fn on_next_arrival(&mut self, gen: usize) {
        let packet = self.pending_packet[gen]
            .take()
            .expect("NextArrival implies a pending packet");
        let next = self.generators[gen].next_packet(&mut self.gen_rngs[gen]);
        let at = next.submitted_at.max(self.now);
        self.pending_packet[gen] = Some(next);
        self.queue.schedule(at, Event::NextArrival { gen });
        self.ingest_packet(packet);
    }

    fn ingest_packet(&mut self, mut packet: Packet) {
        if self.accel.multi_tenant() {
            // Multi-tenant path: park the packet in its tenant's eNIC
            // staging ring; the DRR arbiter pulls it through the shared
            // ingest port when the port frees up. A full ring drops at
            // the ring (counted per tenant) — the packet never reaches
            // the accelerator pipeline.
            if self.accel.stage(packet) {
                self.kick_arbiter();
            }
            return;
        }
        if let Some(si) = self.dp_index(packet.dest_cpu) {
            self.dp_inflight[si] += 1;
        } else {
            // Destined for a CPU with no service (Type-2 emulated it
            // away): ledger it now so conservation (audit invariant 6)
            // balances even while the packet is still in the pipeline.
            self.unrouted += 1;
        }
        let out = self.accel.ingest(&mut packet, self.now, &mut self.hw_probe);
        self.schedule_pipeline(packet, out);
    }

    /// Schedules the probe IRQ and shared-memory delivery for a packet
    /// the accelerator just ingested (shared by the direct single-tenant
    /// path and the arbiter issue path).
    fn schedule_pipeline(&mut self, packet: Packet, out: taichi_hw::accel::PipelineOutput) {
        if let Some(cpu) = out.probe_irq {
            // A probe IRQ lost in the fabric is survivable: the probe
            // re-checks the CPU state when the packet reaches shared
            // memory (`on_delivered`), which bounds the preemption
            // latency at the pipeline transfer time.
            if let Some(lat) = self.apic.irq_latency(cpu) {
                let irq_arrives = out.irq_at + lat;
                self.queue
                    .schedule(irq_arrives.max(self.now), Event::ProbeIrq { host: cpu });
            }
        }
        self.queue
            .schedule(out.delivered_at.max(self.now), Event::Delivered { packet });
    }

    /// Arms the next [`Event::ArbiterIssue`] if staged packets exist
    /// and none is outstanding — at most one issue event is ever in
    /// flight, so the port model needs no cancellation.
    fn kick_arbiter(&mut self) {
        if self.arbiter_armed || self.accel.staged() == 0 {
            return;
        }
        self.arbiter_armed = true;
        let at = self.accel.port_free().max(self.now);
        self.queue.schedule(at, Event::ArbiterIssue);
    }

    /// The shared ingest port is free: issue the next staged packet in
    /// DRR order and re-arm while backlog remains.
    fn on_arbiter_issue(&mut self) {
        self.arbiter_armed = false;
        let now = self.now;
        if let Some((packet, out)) = self.accel.issue_next(now, &mut self.hw_probe) {
            if let Some(si) = self.dp_index(packet.dest_cpu) {
                self.dp_inflight[si] += 1;
            } else {
                self.unrouted += 1;
            }
            self.schedule_pipeline(packet, out);
        }
        self.kick_arbiter();
    }

    fn on_delivered(&mut self, packet: Packet) {
        let host = packet.dest_cpu;
        self.trace(host, TraceKind::AccelTransferDone { pkt: packet.id.0 });
        let Some(si) = self.dp_index(host) else {
            // CPU lost to emulation in type-2: no service behind it.
            // Already ledgered as unrouted at ingest (audit invariant
            // 6 balances against that counter) — it used to vanish.
            return;
        };
        self.dp_inflight[si] = self.dp_inflight[si].saturating_sub(1);
        // A rejected enqueue is already accounted at the ring (overflow
        // drop or fault reject), so the bool needs no handling here.
        self.services[si].enqueue(packet, self.now);
        self.yield_armed[si] = false;
        if self.vsched.host_free(host) {
            self.start_processing(host);
            return;
        }
        // A vCPU occupies the core. The probe's arrival-time check can
        // race with a yield that begins while the packet is in flight
        // through the 3.2 µs pipeline (the core was still P-state at
        // ingest), so the probe re-checks at shared-memory delivery —
        // stage ③ runs through the same accelerator, making the
        // second check as cheap as the first.
        if self.hw_probe.is_enabled() {
            if let Some(idx) = self.vsched.occupant(host) {
                match self.vsched.vcpu(idx).state() {
                    VcpuState::Running { .. } => {
                        self.trace(host, TraceKind::ProbeRecheck);
                        self.begin_vcpu_exit(idx, VmExitReason::HwProbe);
                    }
                    VcpuState::Entering { .. } => {
                        self.trace(host, TraceKind::ProbeRecheck);
                        self.pending_preempt[idx] = true;
                    }
                    _ => {}
                }
            }
        }
        // The occupant's VM-exit path drains the backlog.
    }

    /// Starts (or continues) burst processing on an available DP core.
    ///
    /// Bursts are processed one event at a time so the service's real
    /// per-core capacity bounds throughput: under overload the ring
    /// backs up and drops, exactly like a saturated PMD.
    fn start_processing(&mut self, host: CpuId) {
        let Some(si) = self.dp_index(host) else {
            return;
        };
        if self.dp_busy[si] || !self.vsched.host_free(host) {
            return;
        }
        if self.services[si].pending() == 0 {
            self.arm_dp_idle(host);
            return;
        }
        let Some(done) = self.services[si].process_burst(self.now, &mut self.rng) else {
            // `pending() > 0` was checked above, so today this branch
            // is dead — but a concurrent-drain refactor could make the
            // check stale, and silently wedging the core busy-flag is
            // the worst possible response. Re-arm idle detection.
            self.arm_dp_idle(host);
            return;
        };
        self.dp_busy[si] = true;
        self.queue.schedule(done, Event::DpBurstDone { si });
    }

    fn on_burst_done(&mut self, si: usize) {
        self.dp_busy[si] = false;
        let host = self.dp_cpu_ids[si];
        self.start_processing(host);
    }

    // ---------------------------------------------------------------
    // DP→CP yield path.
    // ---------------------------------------------------------------

    fn arm_dp_idle(&mut self, host: CpuId) {
        if !self.uses_vcpus {
            return;
        }
        let Some(si) = self.dp_index(host) else {
            return;
        };
        if !self.vsched.host_free(host) {
            return;
        }
        let threshold = self.policy.yield_threshold(&sched_ctx!(self), host);
        let Some(t) = self.services[si].idle_notify_time(threshold) else {
            return;
        };
        self.dp_idle_gen[si] += 1;
        let gen = self.dp_idle_gen[si];
        if self.skip {
            // Re-arming supersedes the previous notification: elide it
            // instead of letting it fire as a gen-mismatch no-op. The
            // early returns above leave the prior timer untouched — its
            // generation still matches, so it is not stale.
            let old = self.dp_idle_tok[si].take();
            self.skip_stale(old);
        }
        let at = t.max(self.now);
        let tok = self.queue.schedule(at, Event::DpIdle { host, gen });
        if self.skip {
            self.dp_idle_tok[si] = Some((tok, at));
        }
    }

    fn on_dp_idle(&mut self, host: CpuId, gen: u64) {
        let Some(si) = self.dp_index(host) else {
            return;
        };
        if self.dp_idle_gen[si] != gen {
            return; // superseded by later activity
        }
        if self.dp_busy[si] || !self.vsched.host_free(host) || !self.services[si].is_idle(self.now)
        {
            return;
        }
        if self.cfg.taichi.pipeline_aware_yield && self.dp_inflight[si] > 0 {
            // §9: packets are already in the accelerator pipeline for
            // this CPU — yielding now would be a guaranteed false
            // positive. Their delivery re-arms the idle probe.
            self.yield_vetoes += 1;
            self.trace(
                host,
                TraceKind::YieldVeto {
                    inflight: self.dp_inflight[si],
                },
            );
            return;
        }
        let pick = self.policy.pick_vcpu(&sched_ctx!(self));
        match pick {
            Some(idx) => self.place_vcpu(idx, host),
            None => {
                // Nothing runnable: stay armed so a CP kick can use
                // this already-idle core immediately.
                self.trace(host, TraceKind::YieldNoRunnable);
                self.yield_armed[si] = true;
            }
        }
    }

    fn place_vcpu(&mut self, idx: usize, host: CpuId) {
        self.trace(host, TraceKind::YieldGrant { vcpu: idx as u32 });
        if let Some(si) = self.dp_index(host) {
            self.yield_armed[si] = false;
            // The grant stops the poll loop: close the service's open
            // empty-poll run so the Fig. 9 fast-forward ledger only
            // covers spans where polling actually executed. (The
            // rollback path below re-opens it via `restart_polling`.)
            let now = self.now;
            self.services[si].pause_polling(now);
        } else {
            // Hosting on a CP pCPU (lock-safety fallback): suspend the
            // native kernel context for the duration of the grant.
            self.cp_host_suspended[host.index()] = true;
            self.with_kernel(|k, now, out| k.pause_cpu(host, now, out));
        }
        self.vsched.vcpu_mut(idx).place(host, self.now);
        self.vsched.record_placement(idx, host);
        self.grant_host[idx] = Some(host);
        // The scheduler updates the hardware state table *before* the
        // switch so packets arriving mid-enter still trigger the probe.
        self.hw_probe.set_state(host, CpuExecState::VState);
        // Raise the dedicated softirq whose handler performs the
        // context switch, then VM-enter. The raise can be lost to
        // fault injection: `raise` returns false with the pending bit
        // clear (an honest "already pending" leaves the bit set).
        self.kernel.softirqs().raise(host, SoftirqKind::TaiChiVcpu);
        if self.fault.is_some()
            && !self
                .kernel
                .softirq_state()
                .is_pending(host, SoftirqKind::TaiChiVcpu)
        {
            let rearm = self
                .fault
                .as_ref()
                .map(|f| f.degrade().softirq_rearm)
                .unwrap_or(false);
            if rearm {
                self.health.softirq_rearms += 1;
                self.trace(
                    host,
                    TraceKind::Degrade {
                        action: "softirq_rearm",
                    },
                );
                // The re-raise can itself be dropped; the handle check
                // below decides whether the grant survives.
                self.kernel.softirqs().raise(host, SoftirqKind::TaiChiVcpu);
            }
        }
        if !self.kernel.softirqs().handle(host, SoftirqKind::TaiChiVcpu) {
            // The switch softirq stayed lost: the VM-enter never
            // starts. Unwind the placement so the host keeps running
            // its native context instead of wedging half-switched.
            self.health.softirq_lost_grants += 1;
            self.trace(
                host,
                TraceKind::Degrade {
                    action: "grant_rollback",
                },
            );
            self.vsched.vcpu_mut(idx).abort_place(self.now);
            self.vsched.clear_placement(host);
            self.grant_host[idx] = None;
            self.pending_preempt[idx] = false;
            self.hw_probe.set_state(host, CpuExecState::PState);
            if let Some(si) = self.dp_index(host) {
                let now = self.now;
                self.services[si].restart_polling(now);
                self.start_processing(host);
            } else {
                self.cp_host_suspended[host.index()] = false;
                self.with_kernel(|k, now, out| k.resume_cpu(host, now, out));
            }
            return;
        }
        let enter_done =
            self.now + self.cfg.taichi.softirq_latency + self.cfg.taichi.costs.vm_enter;
        self.queue.schedule(enter_done, Event::VcpuEntered { idx });
    }

    fn on_vcpu_entered(&mut self, idx: usize) {
        let host = self.grant_host[idx].unwrap_or_else(|| {
            panic!(
                "VcpuEntered for vCPU {idx} with no host (state {:?})",
                self.vsched.vcpu(idx).state()
            )
        });
        self.trace(host, TraceKind::VmEnter { vcpu: idx as u32 });
        let slice = self.policy.grant_slice(&sched_ctx!(self), host);
        let slice_end = self.now + slice;
        self.vsched
            .vcpu_mut(idx)
            .enter_complete(self.now, slice_end);
        let vid = self.orchestrator.vcpu_cpu_id(idx);
        self.with_kernel(|k, now, out| k.resume_cpu(vid, now, out));
        if self.pending_preempt[idx] {
            self.pending_preempt[idx] = false;
            self.begin_vcpu_exit(idx, VmExitReason::HwProbe);
            return;
        }
        if !self.kernel.cpu_has_work(vid) {
            // Guest went idle between selection and entry: HLT out.
            self.begin_vcpu_exit(idx, VmExitReason::GuestHalt);
            return;
        }
        self.vcpu_gen[idx] += 1;
        let gen = self.vcpu_gen[idx];
        let tok = self
            .queue
            .schedule(slice_end, Event::VcpuSliceExpire { idx, gen });
        if self.skip {
            // Any previous slice timer was already cancelled (or fired)
            // when the prior grant exited; storing unconditionally is
            // safe because stale tokens cancel as no-ops.
            self.vcpu_slice_tok[idx] = Some((tok, slice_end));
        }
    }

    fn on_slice_expire(&mut self, idx: usize, gen: u64) {
        if self.vcpu_gen[idx] != gen {
            return;
        }
        if !matches!(self.vsched.vcpu(idx).state(), VcpuState::Running { .. }) {
            return;
        }
        self.begin_vcpu_exit(idx, VmExitReason::SliceExpired);
    }

    fn begin_vcpu_exit(&mut self, idx: usize, reason: VmExitReason) {
        if let Some(host) = self.grant_host[idx] {
            self.trace(
                host,
                TraceKind::VmExit {
                    vcpu: idx as u32,
                    reason: exit_reason_name(reason),
                },
            );
        }
        let vid = self.orchestrator.vcpu_cpu_id(idx);
        self.with_kernel(|k, now, out| k.pause_cpu(vid, now, out));
        self.vsched.vcpu_mut(idx).begin_exit(reason, self.now);
        self.vcpu_gen[idx] += 1; // invalidate any pending slice timer
        if self.skip {
            // The invalidated slice timer can never match again: elide
            // it. When this exit *is* the slice expiry, the token is
            // already stale and the cancel records nothing.
            let old = self.vcpu_slice_tok[idx].take();
            self.skip_stale(old);
        }
        // Full switch latency (VM-exit + pCPU context restore): the
        // 2 µs the hardware probe hides inside the I/O window.
        let done = self.now + self.cfg.taichi.costs.switch_latency();
        self.queue.schedule(done, Event::VcpuExited { idx });
    }

    fn on_vcpu_exited(&mut self, idx: usize) {
        // The vCPU becomes descheduled (and possibly frees a CP host):
        // a fill opportunity even when no kernel call follows.
        self.cp_fill_dirty = true;
        let reason = self.vsched.vcpu_mut(idx).exit_complete(self.now);
        let host = self.grant_host[idx].take().unwrap_or_else(|| {
            panic!("VcpuExited for vCPU {idx} with no recorded host (exit reason {reason:?})")
        });
        self.vsched.clear_placement(host);
        self.hw_probe.set_state(host, CpuExecState::PState);
        // Feedback signal for the adaptive controllers: a slice-expiry
        // exit that finds packets already waiting was a false-positive
        // yield (the software can see the rx ring at exit even without
        // the hardware probe), so it carries the probe signal.
        let effective = if reason == VmExitReason::SliceExpired
            && self
                .dp_index(host)
                .map(|si| self.services[si].pending() > 0)
                .unwrap_or(false)
        {
            VmExitReason::HwProbe
        } else {
            reason
        };
        let slice_before = self.policy.grant_slice(&sched_ctx!(self), host);
        let threshold_before = self.policy.yield_threshold(&sched_ctx!(self), host);
        self.policy.on_vm_exit(&sched_ctx!(self), host, effective);
        let slice_after = self.policy.grant_slice(&sched_ctx!(self), host);
        if slice_after != slice_before {
            self.trace(
                host,
                TraceKind::SliceAdapt {
                    ns: slice_after.as_nanos(),
                },
            );
        }
        let threshold_after = self.policy.yield_threshold(&sched_ctx!(self), host);
        if threshold_after != threshold_before {
            self.trace(
                host,
                TraceKind::ThresholdAdapt {
                    polls: threshold_after as u64,
                },
            );
        }

        // Storm-starvation clamp: under a CP task storm every grant is
        // cut short by the probe, and the doubling feedback loop pays
        // a 2 µs switch per step on its way to the max threshold. Once
        // the probe signals `starvation_window` consecutive preempted
        // grants, jump the threshold straight to max. Only active with
        // an injector present so fault-free schedules are untouched.
        if let Some(f) = &self.fault {
            let d = f.degrade();
            let pi = host.index();
            if pi < self.probe_starve.len() {
                if effective == VmExitReason::HwProbe {
                    self.probe_starve[pi] += 1;
                    if d.yield_clamp && self.probe_starve[pi] >= d.starvation_window {
                        self.probe_starve[pi] = 0;
                        if self.policy.clamp_yield_to_max(host) {
                            self.health.yield_clamps += 1;
                            self.trace(
                                host,
                                TraceKind::Degrade {
                                    action: "yield_clamp",
                                },
                            );
                        }
                    }
                } else {
                    self.probe_starve[pi] = 0;
                }
            }
        }

        if self.dp_index(host).is_some() {
            let now = self.now;
            let si = self.dp_index(host).expect("checked");
            self.services[si].mark_polluted(now);
            self.services[si].restart_polling(now);
            self.start_processing(host);
        } else {
            self.cp_host_suspended[host.index()] = false;
            self.with_kernel(|k, now, out| k.resume_cpu(host, now, out));
        }

        // Safe lock-context rescheduling (§4.1). The candidate lists
        // are built into reusable scratch buffers (capacity retained)
        // so this path stops allocating after its first use.
        let vid = self.orchestrator.vcpu_cpu_id(idx);
        if self.kernel.in_lock_context(vid) {
            let mut idle_dp = std::mem::take(&mut self.scratch_idle_dp);
            let mut cp_hosts = std::mem::take(&mut self.scratch_cp_hosts);
            idle_dp.clear();
            cp_hosts.clear();
            // `dp_cpu_ids[i]` hosts `services[i]` by construction.
            for (i, &c) in self.dp_cpu_ids.iter().enumerate() {
                if c != host && self.vsched.host_free(c) && self.services[i].is_idle(self.now) {
                    idle_dp.push(c);
                }
            }
            for &c in &self.cp_cpu_ids {
                if !self.cp_host_suspended[c.index()] {
                    cp_hosts.push(c);
                }
            }
            // The attempt is counted before the pick (a policy that
            // finds nowhere to place still attempted), the fallback
            // when the pick says so — preserving the pre-trait counter
            // semantics exactly.
            self.vsched.note_lock_reschedule();
            let pick = self
                .policy
                .pick_reschedule_host(&sched_ctx!(self), &idle_dp, &cp_hosts);
            if let Some(p) = pick {
                if p.fallback {
                    self.vsched.note_lock_fallback();
                }
                if self.vsched.host_free(p.host) {
                    self.trace(p.host, TraceKind::LockReschedule { vcpu: idx as u32 });
                    self.place_vcpu(idx, p.host);
                }
            }
            self.scratch_idle_dp = idle_dp;
            self.scratch_cp_hosts = cp_hosts;
        }
    }

    fn on_probe_irq(&mut self, host: CpuId) {
        self.trace(host, TraceKind::ProbeIrq);
        let Some(idx) = self.vsched.occupant(host) else {
            return; // stale: the vCPU already left
        };
        match self.vsched.vcpu(idx).state() {
            VcpuState::Running { .. } => {
                self.begin_vcpu_exit(idx, VmExitReason::HwProbe);
            }
            VcpuState::Entering { .. } => {
                self.pending_preempt[idx] = true;
            }
            _ => {}
        }
    }

    // ---------------------------------------------------------------
    // Kernel plumbing.
    // ---------------------------------------------------------------

    fn on_kernel_decide(&mut self, cpu: CpuId, gen: u64) {
        if self.kernel_gen.get(cpu.index()).copied().unwrap_or(0) != gen {
            return;
        }
        self.with_kernel(|k, now, out| k.decide(cpu, now, out));
        // A running vCPU whose guest went idle HLT-exits so the DP
        // core is returned early.
        if let Some(idx) = self.orchestrator.vcpu_index(cpu) {
            if matches!(self.vsched.vcpu(idx).state(), VcpuState::Running { .. })
                && !self.kernel.cpu_has_work(cpu)
            {
                self.begin_vcpu_exit(idx, VmExitReason::GuestHalt);
            }
        }
    }

    fn rearm_kernel(&mut self, cpu: CpuId) {
        if cpu.index() >= self.kernel_gen.len() {
            self.kernel_gen.resize(cpu.index() + 1, 0);
        }
        self.kernel_gen[cpu.index()] += 1;
        let gen = self.kernel_gen[cpu.index()];
        if self.skip {
            if cpu.index() >= self.kernel_tok.len() {
                self.kernel_tok.resize(cpu.index() + 1, None);
            }
            // The generation bump above permanently staled any pending
            // decision timer — whether or not a new one gets armed.
            let old = self.kernel_tok[cpu.index()].take();
            self.skip_stale(old);
        }
        if let Some(mut t) = self.kernel.next_decision_time(cpu, self.now) {
            if let Some(f) = &self.fault {
                // Late decision timers are tolerated by the kernel (it
                // decides from wall-clock state, not the armed time),
                // which is exactly why jitter goes here.
                t += f.timer_jitter(cpu.0);
            }
            let at = t.max(self.now);
            let tok = self.queue.schedule(at, Event::KernelDecide { cpu, gen });
            if self.skip {
                self.kernel_tok[cpu.index()] = Some((tok, at));
            }
        }
    }

    /// Runs one kernel call with the machine's scratch [`ActionBuf`]
    /// and applies the resulting actions.
    ///
    /// The buffer is *taken* out of `self` for the duration: action
    /// handling can reenter (`SendIpi` → kick vCPU → `place_vcpu` →
    /// `pause_cpu`), and each nested frame then takes a fresh default
    /// buffer — which costs nothing, since an empty `ActionBuf` never
    /// allocates.
    fn with_kernel<R>(&mut self, f: impl FnOnce(&mut Kernel, SimTime, &mut ActionBuf) -> R) -> R {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        let r = f(&mut self.kernel, self.now, &mut buf);
        self.apply_kernel_actions(&buf);
        buf.clear();
        self.scratch = buf;
        self.cp_fill_dirty = true;
        r
    }

    fn apply_kernel_actions(&mut self, acts: &ActionBuf) {
        for a in acts.iter() {
            match a {
                KernelAction::ArmWakeup { tid, at } => {
                    let mut at = at;
                    if let Some(f) = &self.fault {
                        if f.wakeup_dropped(NO_CPU) {
                            let d = f.degrade();
                            if d.wakeup_rearm {
                                // Slack-timer recovery: the wakeup
                                // lands late but it lands.
                                self.health.wakeup_rearms += 1;
                                self.trace(
                                    CpuId(NO_CPU),
                                    TraceKind::Degrade {
                                        action: "wakeup_rearm",
                                    },
                                );
                                at += d.wakeup_rearm_delay;
                            } else {
                                // Policy disabled: the thread sleeps
                                // forever. Recorded so the invariant
                                // checker catches the broken policy.
                                self.health.lost_wakeups.push(tid);
                                continue;
                            }
                        }
                    }
                    self.queue
                        .schedule(at.max(self.now), Event::KernelWake { tid });
                }
                KernelAction::ThreadFinished { tid } => self.on_thread_finished(tid),
                KernelAction::SendIpi { src, dst, vector } => self.route_ipi(src, dst, vector, 0),
                KernelAction::Rearm { cpu } => self.rearm_kernel(cpu),
            }
        }
    }

    /// Routes one IPI through the fabric-fault filter and then the
    /// unified orchestrator. `attempt` counts fabric redraws for this
    /// logical message: a drop is re-sent with exponential backoff (up
    /// to [`taichi_sim::DegradePolicy::max_ipi_retries`]), a delay
    /// redraws its fate at the deferred time, and an exhausted budget
    /// abandons the message (counted, and caught by the invariant
    /// checker when the bound is exceeded).
    fn route_ipi(&mut self, src: CpuId, dst: CpuId, vector: IrqVector, attempt: u32) {
        self.health.ipi_max_attempt = self.health.ipi_max_attempt.max(attempt);
        if let Some(f) = &self.fault {
            match f.ipi_fate(dst.0) {
                IpiFate::Drop => {
                    let d = f.degrade();
                    if d.ipi_resend && attempt < d.max_ipi_retries {
                        self.health.ipi_resends += 1;
                        self.trace(
                            dst,
                            TraceKind::Degrade {
                                action: "ipi_resend",
                            },
                        );
                        let backoff = SimDuration::from_nanos(
                            d.ipi_backoff.as_nanos().saturating_mul(1 << attempt),
                        );
                        self.queue.schedule(
                            self.now + backoff,
                            Event::IpiRetry {
                                src,
                                dst,
                                vector,
                                attempt: attempt + 1,
                            },
                        );
                    } else {
                        self.health.ipi_lost += 1;
                    }
                    return;
                }
                IpiFate::Delay(d) if attempt < f.degrade().max_ipi_retries => {
                    self.queue.schedule(
                        self.now + d,
                        Event::IpiRetry {
                            src,
                            dst,
                            vector,
                            attempt: attempt + 1,
                        },
                    );
                    return;
                }
                // Out of redraw budget: deliver in place.
                IpiFate::Delay(_) | IpiFate::Deliver => {}
            }
        }
        let msg = taichi_hw::IpiMessage { src, dst, vector };
        let vsched = &self.vsched;
        let decision = self
            .orchestrator
            .route(msg, |i| !vsched.vcpu(i).is_descheduled());
        let route = match &decision {
            RouteDecision::Direct => "direct",
            RouteDecision::Posted { .. } => "posted",
            RouteDecision::WakeAndInject { .. } => "wake",
        };
        self.trace(src, TraceKind::IpiRoute { dst: dst.0, route });
        match decision {
            RouteDecision::Direct => {
                self.apic.deliver(dst, vector);
                self.apic.ack(dst, vector);
            }
            RouteDecision::Posted { .. } => {
                self.posted_interrupts += 1;
            }
            RouteDecision::WakeAndInject { vcpu } => {
                self.try_kick_vcpu(vcpu);
            }
        }
    }

    /// One CP task-storm burst: spawn `storm_tasks` control-plane
    /// programs (alternating monitoring and device management) built
    /// from the injector's forked RNG, then re-arm the next burst.
    fn on_fault_storm(&mut self) {
        let Some(f) = self.fault.clone() else {
            return;
        };
        let plan = f.plan();
        let mut rng = f.storm(NO_CPU);
        let factory = TaskFactory::default();
        for i in 0..plan.storm_tasks {
            let kind = if i % 2 == 0 {
                CpTaskKind::Monitoring
            } else {
                CpTaskKind::DeviceManagement
            };
            let p = factory.build(kind, &mut rng);
            let p = self.maybe_transform(p);
            let aff = self.cp_affinity;
            self.with_kernel(|k, now, out| k.spawn(p, aff, now, out));
        }
        self.queue
            .schedule(self.now + plan.storm_period, Event::FaultStorm);
    }

    /// A descheduled vCPU received work: place it immediately if some
    /// DP core already crossed its yield threshold.
    fn try_kick_vcpu(&mut self, idx: usize) {
        if !self.vsched.vcpu(idx).is_descheduled() {
            return;
        }
        let vid = self.orchestrator.vcpu_cpu_id(idx);
        if !self.kernel.cpu_has_work(vid) {
            return;
        }
        let host = (0..self.services.len()).find_map(|si| {
            let c = self.dp_cpu_ids[si];
            if self.yield_armed[si]
                && self.vsched.host_free(c)
                && self.services[si].is_idle(self.now)
            {
                Some(c)
            } else {
                None
            }
        });
        if let Some(h) = host {
            self.place_vcpu(idx, h);
        }
    }

    fn on_thread_finished(&mut self, tid: ThreadId) {
        if let Some(&tr) = self.tid_to_tracker.get(&tid) {
            if self.trackers[tr].on_thread_finished(tid, self.now) {
                if let Some(d) = self.trackers[tr].startup_time() {
                    self.vm_startup_times.push(d);
                }
            }
        }
    }

    fn on_vm_create(&mut self, request: VmCreateRequest, programs: Vec<Program>) {
        let mut tids = Vec::with_capacity(programs.len());
        for p in programs {
            let p = self.maybe_transform(p);
            let aff = self.cp_affinity;
            let tid = self.with_kernel(|k, now, out| k.spawn(p, aff, now, out));
            tids.push(tid);
        }
        let tracker_idx = self.trackers.len();
        for &tid in &tids {
            self.tid_to_tracker.insert(tid, tracker_idx);
        }
        self.trackers.push(VmStartupTracker::new(request, tids));
    }

    // ---------------------------------------------------------------
    // Accessors for metrics and tests.
    // ---------------------------------------------------------------

    fn dp_index(&self, cpu: CpuId) -> Option<usize> {
        // Dense O(1) table — this runs several times per packet event.
        self.dp_index_map.get(cpu.index()).copied().flatten()
    }

    fn trace(&self, cpu: CpuId, kind: TraceKind) {
        if let Some(t) = &self.tracer {
            t.emit_at(self.now, cpu.0, kind);
        }
    }

    /// The scheduler tracer, when tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Renders the scheduler trace as TSV (`None` when tracing is
    /// disabled). See [`taichi_sim::trace`] for the format.
    pub fn trace_tsv(&self) -> Option<String> {
        self.tracer.as_ref().map(|t| t.to_tsv())
    }

    /// Arms a dump-on-panic guard: if the calling test fails while the
    /// guard is live, the trace TSV is written to `$TAICHI_TRACE`.
    /// `None` when tracing is disabled.
    pub fn failure_dump(&self, label: &str) -> Option<FailureDump> {
        self.tracer.as_ref().map(|t| FailureDump::new(t, label))
    }

    /// The DP services (one per DP CPU).
    pub fn services(&self) -> &[DpService] {
        &self.services
    }

    /// The DP CPU IDs in service order.
    pub fn dp_cpu_ids(&self) -> &[CpuId] {
        &self.dp_cpu_ids
    }

    /// The kernel (thread stats, lock stats).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The vCPU scheduler (yields, placements, vCPU stats).
    pub fn vsched(&self) -> &VcpuScheduler {
        &self.vsched
    }

    /// The unified IPI orchestrator (routing counters).
    pub fn orchestrator(&self) -> &IpiOrchestrator {
        &self.orchestrator
    }

    /// The hardware workload probe (check/IRQ counters).
    pub fn hw_probe(&self) -> &HwWorkloadProbe {
        &self.hw_probe
    }

    /// The active scheduling policy (decision layer).
    pub fn policy(&self) -> &dyn Scheduler {
        self.policy.as_ref()
    }

    /// The adaptive yield controller (the active policy's view).
    pub fn yield_ctl(&self) -> &AdaptiveYield {
        self.policy.yield_view()
    }

    /// Completed VM startup times, in completion order.
    pub fn vm_startup_times(&self) -> &[SimDuration] {
        &self.vm_startup_times
    }

    /// DP utilization samples collected by
    /// [`Machine::enable_util_sampling`].
    pub fn util_samples(&self) -> &[f64] {
        &self.util_samples
    }

    /// Posted interrupts injected without a VM-exit.
    pub fn posted_interrupts(&self) -> u64 {
        self.posted_interrupts
    }

    /// Yields vetoed by the §9 pipeline-occupancy signal.
    pub fn yield_vetoes(&self) -> u64 {
        self.yield_vetoes
    }

    /// Logical events retired by [`Machine::run_until`] so far:
    /// dispatched handlers plus superseded timers the skip layer
    /// elided before dispatch. The sum is invariant across queue
    /// backends and skip modes (every elided timer would have been a
    /// stale-generation no-op), which is why the byte-identity
    /// fingerprints lead with this value.
    pub fn events_processed(&self) -> u64 {
        self.events_dispatched + self.events_skipped
    }

    /// Events physically dispatched to handlers — the wall-clock work
    /// the engine actually performed.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Superseded timers cancelled before dispatch by the skip layer
    /// (always zero under `TAICHI_SKIP=off`).
    pub fn events_skipped(&self) -> u64 {
        self.events_skipped
    }

    /// Empty-poll iterations elided in closed form by the Fig. 9
    /// fast-forward ledger, summed over the DP services at the current
    /// simulated time. A cycle-level simulator would have burned one
    /// event (or one loop iteration) per poll; the analytic ledger
    /// replaces them with O(1) arithmetic per idle gap.
    pub fn events_fast_forwarded(&self) -> u64 {
        let now = self.now;
        self.services
            .iter()
            .map(|s| s.fast_forwarded_polls(now))
            .sum()
    }

    /// The fault injector, when the (env-overlaid) plan is active.
    pub fn fault(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Degradation bookkeeping: every recovery the scheduler performed
    /// and every loss it conceded (see [`FaultHealth`]).
    pub fn fault_health(&self) -> FaultHealth {
        self.health.clone()
    }

    /// Current host of each vCPU (`None` when descheduled), indexed by
    /// vCPU pool index — the invariant checker cross-checks this
    /// against the occupancy map and the vCPU state machines.
    pub fn grant_hosts(&self) -> &[Option<CpuId>] {
        &self.grant_host
    }

    /// The accelerator (ingest/staging counters for the conservation
    /// audit and the per-tenant ingress statistics).
    pub fn accel(&self) -> &Accelerator {
        &self.accel
    }

    /// Packets ingested for a CPU with no DP service behind it (only
    /// possible in Type-2 runs, where emulation removes DP CPUs).
    pub fn unrouted_packets(&self) -> u64 {
        self.unrouted
    }

    /// Packets currently in flight through the accelerator pipeline
    /// (ingested, not yet delivered), summed over DP CPUs.
    pub fn dp_inflight_total(&self) -> u64 {
        self.dp_inflight.iter().map(|&n| n as u64).sum()
    }

    /// Number of tenants sharing the data path (1 unless multi-tenancy
    /// was configured).
    pub fn tenant_count(&self) -> usize {
        self.accel.tenant_count()
    }

    /// Drains every DP service's per-tenant latency records into one
    /// merged recorder per tenant, leaving the services empty — the
    /// per-tenant sibling of [`Machine::drain_dp_recorders`], with the
    /// same epoch-draining contract. Empty when single-tenant.
    pub fn drain_tenant_recorders(&mut self) -> Vec<taichi_dp::LatencyRecorder> {
        let mut merged = Vec::new();
        self.drain_tenant_recorders_into(&mut merged);
        merged
    }

    /// [`Machine::drain_tenant_recorders`] into a caller-owned vector
    /// (grown to the tenant count on first use, reused thereafter):
    /// the allocation-free epoch drain. Leaves `dest` untouched when
    /// single-tenant.
    pub fn drain_tenant_recorders_into(&mut self, dest: &mut Vec<taichi_dp::LatencyRecorder>) {
        if !self.accel.multi_tenant() {
            return;
        }
        let n = self.accel.tenant_count();
        if dest.len() < n {
            dest.resize_with(n, taichi_dp::LatencyRecorder::new);
        }
        for s in &mut self.services {
            s.drain_tenant_recorders_into(dest);
        }
    }

    /// Per-tenant SLO ledger: `(issued, issued_bytes, ring_losses,
    /// processed, queue_drops)` per tenant — ingress counters from the
    /// DRR arbiter joined with the DP services' completion/drop splits.
    /// Empty when single-tenant.
    pub fn tenant_totals(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        if !self.accel.multi_tenant() {
            return Vec::new();
        }
        let ingress = self.accel.tenant_ingress_stats();
        let mut totals: Vec<(u64, u64, u64, u64, u64)> = ingress
            .into_iter()
            .map(|(pkts, bytes, lost)| (pkts, bytes, lost, 0, 0))
            .collect();
        for s in &self.services {
            for (t, (processed, drops)) in s.tenant_counts().into_iter().enumerate() {
                if let Some(row) = totals.get_mut(t) {
                    row.3 += processed;
                    row.4 += drops;
                }
            }
        }
        totals
    }
}
