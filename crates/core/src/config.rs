//! Configuration for the Tai Chi framework and the machine composition.

use taichi_dp::DpServiceConfig;
use taichi_hw::accel::AcceleratorConfig;
use taichi_hw::SmartNicSpec;
use taichi_os::KernelConfig;
use taichi_sim::trace::TraceConfig;
use taichi_sim::{FaultPlan, FootprintProfile, SimDuration};
use taichi_virt::{Type2Model, VirtCosts};

/// Idle-time skipping for the machine driver (the `TAICHI_SKIP`
/// escape hatch, threaded like `TAICHI_QUEUE`).
///
/// With skipping on (the default) the driver cancels superseded
/// periodic timers — DP idle notifications, vCPU slice expiries,
/// kernel decision ticks — instead of dispatching them later as
/// stale-generation no-ops, and the elided dispatches are folded into
/// [`Machine::events_processed`] so every observable (traces, stats
/// fingerprints, CSVs) stays byte-identical to a skip-off run.
///
/// [`Machine::events_processed`]: crate::machine::Machine::events_processed
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SkipMode {
    /// Cancel superseded timers; count them as skipped (the default).
    #[default]
    On,
    /// Dispatch every scheduled event, stale ones included — the
    /// oracle configuration the identity tests compare against.
    Off,
}

impl SkipMode {
    /// Resolves the mode from the `TAICHI_SKIP` environment variable:
    /// `on` (or unset/empty) and `off` are accepted; anything else
    /// warns to stderr once per process and falls back to `On`,
    /// mirroring the `TAICHI_QUEUE` convention.
    pub fn from_env() -> SkipMode {
        taichi_sim::env::env_parse_or_warn("TAICHI_SKIP", |s| match s.trim() {
            "" | "on" => Ok(SkipMode::On),
            "off" => Ok(SkipMode::Off),
            other => Err(format!(
                "warning: TAICHI_SKIP={other:?} is not a known skip mode \
                 (expected \"on\" or \"off\"); skipping stays on"
            )),
        })
        .unwrap_or_default()
    }

    /// True when superseded timers are cancelled rather than
    /// dispatched.
    pub fn is_on(self) -> bool {
        self == SkipMode::On
    }
}

/// Tuning knobs for the Tai Chi scheduler proper (§4).
#[derive(Clone, Debug)]
pub struct TaiChiConfig {
    /// Number of vCPUs to create and register as native CPUs.
    ///
    /// The paper over-provisions the control plane; with 4 CP pCPUs the
    /// production deployment registers roughly the DP CPU count.
    pub num_vcpus: u32,
    /// Initial (and post-probe-reset) vCPU time slice (§4.1: 50 µs).
    pub initial_slice: SimDuration,
    /// Cap on the doubled time slice.
    pub max_slice: SimDuration,
    /// Initial empty-poll yield threshold N (§4.3).
    pub initial_yield_threshold: u32,
    /// Lower bound on N.
    pub min_yield_threshold: u32,
    /// Upper bound on N.
    pub max_yield_threshold: u32,
    /// Latency of raising + entering the dedicated softirq handler
    /// that performs the context switch (§4.1).
    pub softirq_latency: SimDuration,
    /// §9 future work: multi-dimensional idle assessment. When set,
    /// the yield decision also consults the accelerator pipeline and
    /// vetoes a yield while packets for the CPU are still in flight
    /// (ingested but not yet visible to the poll loop) — avoiding
    /// guaranteed false-positive yields.
    pub pipeline_aware_yield: bool,
    /// §9 future work: cache/TLB isolation between vCPU grants and the
    /// data-plane service (e.g. way-partitioning). Removes the
    /// post-grant pollution surcharge entirely.
    pub cache_isolation: bool,
    /// Virtualization costs (VM-enter/exit, posted interrupts).
    pub costs: VirtCosts,
}

impl Default for TaiChiConfig {
    fn default() -> Self {
        TaiChiConfig {
            num_vcpus: 8,
            initial_slice: SimDuration::from_micros(50),
            max_slice: SimDuration::from_micros(100),
            initial_yield_threshold: 200,
            min_yield_threshold: 25,
            max_yield_threshold: 6_400,
            softirq_latency: SimDuration::from_nanos(600),
            pipeline_aware_yield: false,
            cache_isolation: false,
            costs: VirtCosts::default(),
        }
    }
}

/// Multi-tenant data-path configuration (DESIGN.md §3.11).
///
/// The default — one tenant — leaves the engine on the pre-tenant code
/// path, byte for byte: no arbiter is constructed, no per-tenant
/// recorder exists, and no extra RNG stream is drawn. With `count > 1`
/// the eNIC keeps one bounded rx ring per tenant and the accelerator's
/// shared ingest port is arbitrated with weighted deficit round robin.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Number of tenants sharing the data path (1 = the paper's
    /// single-operator configuration).
    pub count: u32,
    /// Per-tenant DRR weights. Empty means equal weights; a shorter
    /// vector is padded with 1s, a longer one is truncated.
    pub weights: Vec<u64>,
    /// DRR byte credit per weight unit per round (default: one MTU).
    pub quantum: u64,
    /// Capacity of each tenant's eNIC staging ring, in descriptors.
    pub ring_capacity: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            count: 1,
            weights: Vec::new(),
            quantum: 1_500,
            ring_capacity: 1_024,
        }
    }
}

/// Parses `TAICHI_TENANTS_COUNT` / `--tenants` (a tenant count >= 1).
pub fn parse_tenant_count(s: &str) -> Result<u32, String> {
    match s.trim().parse::<u32>() {
        Ok(0) | Err(_) => Err(format!(
            "warning: {s:?} is not a valid tenant count \
             (expected an integer >= 1); using the default"
        )),
        Ok(n) => Ok(n),
    }
}

/// Parses `TAICHI_TENANTS_WEIGHTS` / `--weights`: colon-separated DRR
/// weights, e.g. `3:1` (zero entries are rejected — a zero weight
/// would starve a tenant forever, which the `TenantConfig` layer bumps
/// to 1 anyway).
pub fn parse_tenant_weights(s: &str) -> Result<Vec<u64>, String> {
    let err = || {
        format!(
            "warning: {s:?} is not a valid weight vector \
             (expected colon-separated integers >= 1, e.g. \"3:1\"); \
             using the default"
        )
    };
    let ws: Result<Vec<u64>, ()> = s
        .trim()
        .split(':')
        .map(|p| match p.trim().parse::<u64>() {
            Ok(0) | Err(_) => Err(()),
            Ok(w) => Ok(w),
        })
        .collect();
    match ws {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(err()),
    }
}

impl TenantConfig {
    /// True when the multi-tenant machinery should be constructed.
    pub fn is_multi(&self) -> bool {
        self.count > 1
    }

    /// Overlays the `TAICHI_TENANTS_COUNT` and `TAICHI_TENANTS_WEIGHTS`
    /// environment knobs on this config, following the workspace
    /// convention (unset keeps, valid applies, invalid warns once and
    /// keeps).
    pub fn apply_env(&mut self) {
        use taichi_sim::env::env_parse_or_warn;
        if let Some(v) = env_parse_or_warn("TAICHI_TENANTS_COUNT", parse_tenant_count) {
            self.count = v;
        }
        if let Some(v) = env_parse_or_warn("TAICHI_TENANTS_WEIGHTS", parse_tenant_weights) {
            self.weights = v;
        }
    }

    /// The effective weight vector: `weights` normalized to exactly
    /// `count` entries (missing entries default to weight 1; zero
    /// weights are bumped to 1 — a starved tenant would deadlock the
    /// conservation audit, not model anything physical).
    pub fn effective_weights(&self) -> Vec<u64> {
        (0..self.count as usize)
            .map(|i| self.weights.get(i).copied().unwrap_or(1).max(1))
            .collect()
    }
}

/// Full-machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// SoC description (CPU counts, link speeds).
    pub spec: SmartNicSpec,
    /// Tai Chi knobs (ignored in baseline/type-2 modes).
    pub taichi: TaiChiConfig,
    /// Kernel scheduler knobs.
    pub kernel: KernelConfig,
    /// Accelerator pipeline timings.
    pub accel: AcceleratorConfig,
    /// Per-DP-service knobs.
    pub dp: DpServiceConfig,
    /// Multi-tenant data-path knobs (default: one tenant — the
    /// pre-tenant engine, byte for byte).
    pub tenants: TenantConfig,
    /// Type-2 baseline model (used only in `Mode::Type2`).
    pub type2: Type2Model,
    /// Execution tax applied to DP services in `Mode::TaiChiVdp`
    /// (running the data plane inside vCPUs; §6.3 measures ~7 %).
    pub vdp_exec_tax: f64,
    /// RNG seed — identical seeds give bit-identical runs.
    pub seed: u64,
    /// Scheduler trace layer (off by default; enabling it never
    /// perturbs the simulated schedule, only records it).
    pub trace: TraceConfig,
    /// Fault-injection plan (inactive by default; an inactive plan
    /// constructs no injector and leaves runs byte-identical). The
    /// `TAICHI_FAULTS` environment variable overlays this at machine
    /// construction.
    pub faults: FaultPlan,
    /// Explicit scheduling-policy override. `None` (the default)
    /// derives the policy from the run's [`Mode`] — or from the
    /// `TAICHI_POLICY` environment variable when that is set. `Some`
    /// wins over both: a machine built for one mode re-resolves to the
    /// policy's canonical mode (see [`crate::sched::PolicyKind`]).
    ///
    /// [`Mode`]: crate::machine::Mode
    pub policy: Option<crate::sched::PolicyKind>,
    /// Idle-time skipping override. `None` (the default) resolves from
    /// the `TAICHI_SKIP` environment variable at machine construction
    /// (on unless `TAICHI_SKIP=off`); `Some` wins over the
    /// environment, exactly like the queue-backend selection.
    pub skip: Option<SkipMode>,
    /// Memory-footprint profile: `Hot` (the default) makes every
    /// worst-case reservation at construction so the steady-state loop
    /// never allocates; `Fleet` starts the event slab, skip heap, and
    /// rx rings small and grows them to the machine's actual working
    /// set — what a driver standing up thousands of mostly-idle
    /// machines wants. Byte-identical observables either way (the
    /// fleet identity matrix pins this).
    pub footprint: FootprintProfile,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            spec: SmartNicSpec::default(),
            taichi: TaiChiConfig::default(),
            kernel: KernelConfig::default(),
            accel: AcceleratorConfig::default(),
            dp: DpServiceConfig::default(),
            tenants: TenantConfig::default(),
            type2: Type2Model::default(),
            vdp_exec_tax: 1.08,
            seed: 0xD1CE,
            trace: TraceConfig::default(),
            faults: FaultPlan::default(),
            policy: None,
            skip: None,
            footprint: FootprintProfile::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = TaiChiConfig::default();
        assert_eq!(c.initial_slice, SimDuration::from_micros(50));
        assert_eq!(c.costs.switch_latency(), SimDuration::from_micros(2));
        assert!(c.min_yield_threshold < c.initial_yield_threshold);
        assert!(c.initial_yield_threshold < c.max_yield_threshold);
    }

    #[test]
    fn machine_defaults_sane() {
        let m = MachineConfig::default();
        assert_eq!(m.spec.num_cpus, 12);
        assert_eq!(m.spec.dp_cpus, 8);
        assert!(m.vdp_exec_tax > 1.0);
        assert!(!m.tenants.is_multi(), "default must be single-tenant");
    }

    #[test]
    fn tenant_knob_parsers_accept_and_reject() {
        assert_eq!(parse_tenant_count("4"), Ok(4));
        assert!(parse_tenant_count("0").is_err());
        assert!(parse_tenant_count("many").is_err());
        assert_eq!(parse_tenant_weights("3:1"), Ok(vec![3, 1]));
        assert_eq!(parse_tenant_weights(" 8 : 2 : 1 "), Ok(vec![8, 2, 1]));
        assert!(parse_tenant_weights("3:0").is_err());
        assert!(parse_tenant_weights("").is_err());
        assert!(parse_tenant_weights("a:b").is_err());
    }

    #[test]
    fn tenant_weights_normalize() {
        let t = TenantConfig {
            count: 3,
            weights: vec![4, 0],
            ..TenantConfig::default()
        };
        assert_eq!(t.effective_weights(), vec![4, 1, 1]);
        let equal = TenantConfig {
            count: 2,
            ..TenantConfig::default()
        };
        assert_eq!(equal.effective_weights(), vec![1, 1]);
    }
}
