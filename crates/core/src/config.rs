//! Configuration for the Tai Chi framework and the machine composition.

use taichi_dp::DpServiceConfig;
use taichi_hw::accel::AcceleratorConfig;
use taichi_hw::SmartNicSpec;
use taichi_os::KernelConfig;
use taichi_sim::trace::TraceConfig;
use taichi_sim::{FaultPlan, SimDuration};
use taichi_virt::{Type2Model, VirtCosts};

/// Idle-time skipping for the machine driver (the `TAICHI_SKIP`
/// escape hatch, threaded like `TAICHI_QUEUE`).
///
/// With skipping on (the default) the driver cancels superseded
/// periodic timers — DP idle notifications, vCPU slice expiries,
/// kernel decision ticks — instead of dispatching them later as
/// stale-generation no-ops, and the elided dispatches are folded into
/// [`Machine::events_processed`] so every observable (traces, stats
/// fingerprints, CSVs) stays byte-identical to a skip-off run.
///
/// [`Machine::events_processed`]: crate::machine::Machine::events_processed
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SkipMode {
    /// Cancel superseded timers; count them as skipped (the default).
    #[default]
    On,
    /// Dispatch every scheduled event, stale ones included — the
    /// oracle configuration the identity tests compare against.
    Off,
}

impl SkipMode {
    /// Resolves the mode from the `TAICHI_SKIP` environment variable:
    /// `on` (or unset/empty) and `off` are accepted; anything else
    /// warns to stderr once per process and falls back to `On`,
    /// mirroring the `TAICHI_QUEUE` convention.
    pub fn from_env() -> SkipMode {
        taichi_sim::env::env_parse_or_warn("TAICHI_SKIP", |s| match s.trim() {
            "" | "on" => Ok(SkipMode::On),
            "off" => Ok(SkipMode::Off),
            other => Err(format!(
                "warning: TAICHI_SKIP={other:?} is not a known skip mode \
                 (expected \"on\" or \"off\"); skipping stays on"
            )),
        })
        .unwrap_or_default()
    }

    /// True when superseded timers are cancelled rather than
    /// dispatched.
    pub fn is_on(self) -> bool {
        self == SkipMode::On
    }
}

/// Tuning knobs for the Tai Chi scheduler proper (§4).
#[derive(Clone, Debug)]
pub struct TaiChiConfig {
    /// Number of vCPUs to create and register as native CPUs.
    ///
    /// The paper over-provisions the control plane; with 4 CP pCPUs the
    /// production deployment registers roughly the DP CPU count.
    pub num_vcpus: u32,
    /// Initial (and post-probe-reset) vCPU time slice (§4.1: 50 µs).
    pub initial_slice: SimDuration,
    /// Cap on the doubled time slice.
    pub max_slice: SimDuration,
    /// Initial empty-poll yield threshold N (§4.3).
    pub initial_yield_threshold: u32,
    /// Lower bound on N.
    pub min_yield_threshold: u32,
    /// Upper bound on N.
    pub max_yield_threshold: u32,
    /// Latency of raising + entering the dedicated softirq handler
    /// that performs the context switch (§4.1).
    pub softirq_latency: SimDuration,
    /// §9 future work: multi-dimensional idle assessment. When set,
    /// the yield decision also consults the accelerator pipeline and
    /// vetoes a yield while packets for the CPU are still in flight
    /// (ingested but not yet visible to the poll loop) — avoiding
    /// guaranteed false-positive yields.
    pub pipeline_aware_yield: bool,
    /// §9 future work: cache/TLB isolation between vCPU grants and the
    /// data-plane service (e.g. way-partitioning). Removes the
    /// post-grant pollution surcharge entirely.
    pub cache_isolation: bool,
    /// Virtualization costs (VM-enter/exit, posted interrupts).
    pub costs: VirtCosts,
}

impl Default for TaiChiConfig {
    fn default() -> Self {
        TaiChiConfig {
            num_vcpus: 8,
            initial_slice: SimDuration::from_micros(50),
            max_slice: SimDuration::from_micros(100),
            initial_yield_threshold: 200,
            min_yield_threshold: 25,
            max_yield_threshold: 6_400,
            softirq_latency: SimDuration::from_nanos(600),
            pipeline_aware_yield: false,
            cache_isolation: false,
            costs: VirtCosts::default(),
        }
    }
}

/// Full-machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// SoC description (CPU counts, link speeds).
    pub spec: SmartNicSpec,
    /// Tai Chi knobs (ignored in baseline/type-2 modes).
    pub taichi: TaiChiConfig,
    /// Kernel scheduler knobs.
    pub kernel: KernelConfig,
    /// Accelerator pipeline timings.
    pub accel: AcceleratorConfig,
    /// Per-DP-service knobs.
    pub dp: DpServiceConfig,
    /// Type-2 baseline model (used only in `Mode::Type2`).
    pub type2: Type2Model,
    /// Execution tax applied to DP services in `Mode::TaiChiVdp`
    /// (running the data plane inside vCPUs; §6.3 measures ~7 %).
    pub vdp_exec_tax: f64,
    /// RNG seed — identical seeds give bit-identical runs.
    pub seed: u64,
    /// Scheduler trace layer (off by default; enabling it never
    /// perturbs the simulated schedule, only records it).
    pub trace: TraceConfig,
    /// Fault-injection plan (inactive by default; an inactive plan
    /// constructs no injector and leaves runs byte-identical). The
    /// `TAICHI_FAULTS` environment variable overlays this at machine
    /// construction.
    pub faults: FaultPlan,
    /// Explicit scheduling-policy override. `None` (the default)
    /// derives the policy from the run's [`Mode`] — or from the
    /// `TAICHI_POLICY` environment variable when that is set. `Some`
    /// wins over both: a machine built for one mode re-resolves to the
    /// policy's canonical mode (see [`crate::sched::PolicyKind`]).
    ///
    /// [`Mode`]: crate::machine::Mode
    pub policy: Option<crate::sched::PolicyKind>,
    /// Idle-time skipping override. `None` (the default) resolves from
    /// the `TAICHI_SKIP` environment variable at machine construction
    /// (on unless `TAICHI_SKIP=off`); `Some` wins over the
    /// environment, exactly like the queue-backend selection.
    pub skip: Option<SkipMode>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            spec: SmartNicSpec::default(),
            taichi: TaiChiConfig::default(),
            kernel: KernelConfig::default(),
            accel: AcceleratorConfig::default(),
            dp: DpServiceConfig::default(),
            type2: Type2Model::default(),
            vdp_exec_tax: 1.08,
            seed: 0xD1CE,
            trace: TraceConfig::default(),
            faults: FaultPlan::default(),
            policy: None,
            skip: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = TaiChiConfig::default();
        assert_eq!(c.initial_slice, SimDuration::from_micros(50));
        assert_eq!(c.costs.switch_latency(), SimDuration::from_micros(2));
        assert!(c.min_yield_threshold < c.initial_yield_threshold);
        assert!(c.initial_yield_threshold < c.max_yield_threshold);
    }

    #[test]
    fn machine_defaults_sane() {
        let m = MachineConfig::default();
        assert_eq!(m.spec.num_cpus, 12);
        assert_eq!(m.spec.dp_cpus, 8);
        assert!(m.vdp_exec_tax > 1.0);
    }
}
