//! Adaptive vCPU time slices (§4.1).
//!
//! The initial slice is 50 µs. A slice-expiry VM-exit suggests the DP
//! CPU is staying idle, so the slice for that host CPU doubles (fewer
//! costly VM-exits per borrowed second); a hardware-probe VM-exit means
//! DP traffic returned, so the slice resets to the initial value.
//! Slices are tracked per *host* CPU because idleness is a property of
//! the data-plane CPU being borrowed, not of any particular vCPU.

use taichi_hw::CpuId;
use taichi_sim::SimDuration;
use taichi_virt::VmExitReason;

/// Per-host-CPU adaptive slice controller.
#[derive(Clone, Debug)]
pub struct AdaptiveSlice {
    slices: Vec<SimDuration>,
    initial: SimDuration,
    max: SimDuration,
}

impl AdaptiveSlice {
    /// Creates slices for `num_cpus` host CPUs starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics when `initial` is zero or exceeds `max`.
    pub fn new(num_cpus: u32, initial: SimDuration, max: SimDuration) -> Self {
        assert!(
            !initial.is_zero() && initial <= max,
            "invalid slice bounds {initial} / {max}"
        );
        AdaptiveSlice {
            slices: vec![initial; num_cpus as usize],
            initial,
            max,
        }
    }

    /// Slice to use for the next grant on `cpu`.
    pub fn slice(&self, cpu: CpuId) -> SimDuration {
        self.slices
            .get(cpu.index())
            .copied()
            .unwrap_or(self.initial)
    }

    /// Feeds back a VM-exit that ended a grant on `cpu`.
    pub fn on_vm_exit(&mut self, cpu: CpuId, reason: VmExitReason) {
        let (initial, max) = (self.initial, self.max);
        let Some(s) = self.slices.get_mut(cpu.index()) else {
            return;
        };
        match reason {
            VmExitReason::SliceExpired => {
                *s = s.saturating_mul(2).min(max);
            }
            VmExitReason::HwProbe => {
                *s = initial;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> AdaptiveSlice {
        AdaptiveSlice::new(
            8,
            SimDuration::from_micros(50),
            SimDuration::from_micros(1600),
        )
    }

    #[test]
    fn doubles_on_expiry_to_cap() {
        let mut c = ctl();
        let cpu = CpuId(0);
        let expected = [100u64, 200, 400, 800, 1600, 1600];
        for e in expected {
            c.on_vm_exit(cpu, VmExitReason::SliceExpired);
            assert_eq!(c.slice(cpu), SimDuration::from_micros(e));
        }
    }

    #[test]
    fn probe_resets_to_initial() {
        let mut c = ctl();
        let cpu = CpuId(3);
        for _ in 0..4 {
            c.on_vm_exit(cpu, VmExitReason::SliceExpired);
        }
        assert_eq!(c.slice(cpu), SimDuration::from_micros(800));
        c.on_vm_exit(cpu, VmExitReason::HwProbe);
        assert_eq!(c.slice(cpu), SimDuration::from_micros(50));
    }

    #[test]
    fn per_cpu_isolation() {
        let mut c = ctl();
        c.on_vm_exit(CpuId(1), VmExitReason::SliceExpired);
        assert_eq!(c.slice(CpuId(1)), SimDuration::from_micros(100));
        assert_eq!(c.slice(CpuId(2)), SimDuration::from_micros(50));
    }

    #[test]
    fn neutral_exits_keep_slice() {
        let mut c = ctl();
        c.on_vm_exit(CpuId(0), VmExitReason::GuestHalt);
        c.on_vm_exit(CpuId(0), VmExitReason::IpiSend);
        assert_eq!(c.slice(CpuId(0)), SimDuration::from_micros(50));
    }

    #[test]
    fn unknown_cpu_gets_initial() {
        let c = ctl();
        assert_eq!(c.slice(CpuId(99)), SimDuration::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "invalid slice bounds")]
    fn zero_initial_panics() {
        AdaptiveSlice::new(1, SimDuration::ZERO, SimDuration::from_micros(100));
    }
}
