//! Tai Chi: a hybrid-virtualization co-scheduling framework for
//! SmartNIC data-plane services and control-plane tasks.
//!
//! This crate is the paper's primary contribution (§4): it unifies
//! physical CPUs and Tai Chi-created vCPUs inside one SmartNIC OS and
//! schedules control-plane tasks onto idle data-plane CPU cycles at
//! microsecond granularity, without violating either plane's SLOs and
//! without modifying a single control-plane task.
//!
//! Components, mirroring Fig. 7b:
//!
//! - [`vcpu_sched::VcpuScheduler`] (§4.1): the softirq-based vCPU
//!   scheduler — round-robin placement of runnable vCPUs onto idle DP
//!   pCPUs, adaptive time slices, and safe lock-context rescheduling.
//! - [`orchestrator::IpiOrchestrator`] (§4.2): the unified IPI
//!   orchestrator — intercepts every IPI and routes it across the
//!   virtualization boundary, and registers vCPUs as native OS CPUs via
//!   the hotplug INIT/SIPI handshake.
//! - [`probe_sw::AdaptiveYield`] + the hardware probe in `taichi-hw`
//!   (§4.3): the workload probes — empty-poll-threshold yield detection
//!   on the software side, V-state/P-state packet-arrival preemption on
//!   the hardware side.
//! - [`machine::Machine`]: the full-system composition driving the
//!   discrete-event simulation, with [`machine::Mode`] selecting Tai
//!   Chi, the production static-partitioning baseline, the Tai Chi-vDP
//!   (type-1-like) and QEMU/KVM (type-2) comparison points, and the
//!   no-hardware-probe ablation.

pub mod audit;
pub mod config;
pub mod machine;
pub mod metrics;
pub mod orchestrator;
pub mod probe_sw;
pub mod sched;
pub mod slice;
pub mod vcpu_sched;

pub use audit::{assert_invariants, check_invariants, AuditReport, AuditSession, InvariantReport};
pub use config::{
    parse_tenant_count, parse_tenant_weights, MachineConfig, SkipMode, TaiChiConfig, TenantConfig,
};
pub use machine::{FaultHealth, Machine, Mode};
pub use metrics::RunReport;
pub use sched::{make_scheduler, KernelCtx, PolicyKind, ReschedulePick, Scheduler};
