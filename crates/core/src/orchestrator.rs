//! The unified IPI orchestrator (§4.2).
//!
//! vCPUs and pCPUs share one OS, but a raw IPI cannot cross the
//! virtualization boundary: a guest-issued IPI must be re-issued by the
//! host (source phase), and an IPI towards a vCPU must be injected —
//! directly if the vCPU is running (posted interrupt), or after waking
//! it if it is descheduled (destination phase). The orchestrator hooks
//! the kernel's IPI send path (`x2apic_send_IPI` in the real
//! implementation) and classifies every message into a routing
//! decision the machine driver then executes.
//!
//! The orchestrator also owns vCPU *registration* (Fig. 8a): it creates
//! kernel CPUs in the offline state, then drives them online with
//! INIT/SIPI boot IPIs — after which standard affinity binding reaches
//! them with zero CP task modification.

use taichi_hw::{CpuId, IpiMessage};
use taichi_os::Kernel;
use taichi_sim::{Counter, SimTime};

/// How one IPI must be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Plain pCPU→pCPU: deliver via an MSR write, no virtualization
    /// involvement.
    Direct,
    /// Destination is a *running* vCPU: inject via posted interrupt
    /// (no VM-exit).
    Posted {
        /// Index of the destination vCPU.
        vcpu: usize,
    },
    /// Destination is a descheduled vCPU: the orchestrator must wake
    /// it (make it a placement candidate) and then inject.
    WakeAndInject {
        /// Index of the destination vCPU.
        vcpu: usize,
    },
}

/// Classification of each CPU ID the orchestrator knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CpuClass {
    Physical,
    Vcpu(usize),
}

/// The unified IPI orchestrator.
#[derive(Clone, Debug)]
pub struct IpiOrchestrator {
    classes: Vec<CpuClass>,
    first_vcpu: u32,
    direct: Counter,
    posted: Counter,
    woken: Counter,
    reissued: Counter,
}

impl IpiOrchestrator {
    /// Creates an orchestrator for `num_physical` physical CPUs and no
    /// vCPUs yet.
    pub fn new(num_physical: u32) -> Self {
        IpiOrchestrator {
            classes: vec![CpuClass::Physical; num_physical as usize],
            first_vcpu: num_physical,
            direct: Counter::new(),
            posted: Counter::new(),
            woken: Counter::new(),
            reissued: Counter::new(),
        }
    }

    /// Registers `count` vCPUs as native kernel CPUs (Fig. 8a): each is
    /// added offline, then booted online with INIT/SIPI IPIs that the
    /// orchestrator itself routes.
    ///
    /// Returns the kernel CPU IDs assigned to the vCPUs, in vCPU-index
    /// order.
    pub fn register_vcpus(&mut self, kernel: &mut Kernel, count: u32, now: SimTime) -> Vec<CpuId> {
        let mut ids = Vec::with_capacity(count as usize);
        // Online actions are moot here: a freshly booted CPU has no
        // work, and every driver re-arms all known CPUs afterwards.
        let mut acts = taichi_os::ActionBuf::new();
        for i in 0..count {
            let id = CpuId(self.first_vcpu + i);
            kernel.register_cpu(id, now);
            // Boot handshake: INIT then SIPI, both routed by us.
            kernel.cpu_init(id);
            kernel.cpu_online(id, &mut acts);
            acts.clear();
            self.classes.push(CpuClass::Vcpu(i as usize));
            ids.push(id);
        }
        ids
    }

    /// The kernel CPU ID of vCPU `index`.
    pub fn vcpu_cpu_id(&self, index: usize) -> CpuId {
        CpuId(self.first_vcpu + index as u32)
    }

    /// The vCPU index behind a kernel CPU ID, if it is a vCPU.
    pub fn vcpu_index(&self, cpu: CpuId) -> Option<usize> {
        match self.classes.get(cpu.index()) {
            Some(CpuClass::Vcpu(i)) => Some(*i),
            _ => None,
        }
    }

    /// True when `cpu` is one of the physical CPUs.
    pub fn is_physical(&self, cpu: CpuId) -> bool {
        matches!(self.classes.get(cpu.index()), Some(CpuClass::Physical))
    }

    /// Routes one IPI. `vcpu_running` reports, for a vCPU index,
    /// whether that vCPU currently holds a physical core.
    ///
    /// The source phase is accounted here: a vCPU source means the
    /// guest VM-exited to re-issue the IPI (counted in
    /// [`IpiOrchestrator::reissued`]).
    pub fn route(
        &mut self,
        msg: IpiMessage,
        vcpu_running: impl Fn(usize) -> bool,
    ) -> RouteDecision {
        if self.vcpu_index(msg.src).is_some() {
            self.reissued.inc();
        }
        match self.vcpu_index(msg.dst) {
            None => {
                self.direct.inc();
                RouteDecision::Direct
            }
            Some(i) if vcpu_running(i) => {
                self.posted.inc();
                RouteDecision::Posted { vcpu: i }
            }
            Some(i) => {
                self.woken.inc();
                RouteDecision::WakeAndInject { vcpu: i }
            }
        }
    }

    /// IPIs delivered directly to pCPUs.
    pub fn direct_count(&self) -> u64 {
        self.direct.get()
    }

    /// IPIs injected into running vCPUs via posted interrupts.
    pub fn posted_count(&self) -> u64 {
        self.posted.get()
    }

    /// IPIs that had to wake a descheduled vCPU.
    pub fn woken_count(&self) -> u64 {
        self.woken.get()
    }

    /// Guest-sourced IPIs re-issued by the host.
    pub fn reissued_count(&self) -> u64 {
        self.reissued.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_hw::IrqVector;
    use taichi_os::KernelConfig;

    fn kernel_with_cp_cpus() -> Kernel {
        let cp: Vec<CpuId> = (8..12).map(CpuId).collect();
        Kernel::new(KernelConfig::default(), &cp)
    }

    #[test]
    fn registration_brings_vcpus_online() {
        let mut k = kernel_with_cp_cpus();
        let mut o = IpiOrchestrator::new(12);
        let ids = o.register_vcpus(&mut k, 4, SimTime::ZERO);
        assert_eq!(ids, (12..16).map(CpuId).collect::<Vec<_>>());
        for id in &ids {
            assert_eq!(k.cpu_phase(*id), Some(taichi_os::kernel::CpuPhase::Online));
        }
        assert_eq!(o.vcpu_cpu_id(0), CpuId(12));
        assert_eq!(o.vcpu_index(CpuId(13)), Some(1));
        assert_eq!(o.vcpu_index(CpuId(5)), None);
        assert!(o.is_physical(CpuId(5)));
        assert!(!o.is_physical(CpuId(12)));
    }

    fn msg(src: u32, dst: u32) -> IpiMessage {
        IpiMessage {
            src: CpuId(src),
            dst: CpuId(dst),
            vector: IrqVector::RESCHEDULE,
        }
    }

    #[test]
    fn physical_to_physical_is_direct() {
        let mut k = kernel_with_cp_cpus();
        let mut o = IpiOrchestrator::new(12);
        o.register_vcpus(&mut k, 2, SimTime::ZERO);
        let d = o.route(msg(0, 9), |_| false);
        assert_eq!(d, RouteDecision::Direct);
        assert_eq!(o.direct_count(), 1);
        assert_eq!(o.reissued_count(), 0);
    }

    #[test]
    fn to_running_vcpu_is_posted() {
        let mut k = kernel_with_cp_cpus();
        let mut o = IpiOrchestrator::new(12);
        o.register_vcpus(&mut k, 2, SimTime::ZERO);
        let d = o.route(msg(8, 13), |i| i == 1);
        assert_eq!(d, RouteDecision::Posted { vcpu: 1 });
        assert_eq!(o.posted_count(), 1);
    }

    #[test]
    fn to_sleeping_vcpu_wakes() {
        let mut k = kernel_with_cp_cpus();
        let mut o = IpiOrchestrator::new(12);
        o.register_vcpus(&mut k, 2, SimTime::ZERO);
        let d = o.route(msg(8, 12), |_| false);
        assert_eq!(d, RouteDecision::WakeAndInject { vcpu: 0 });
        assert_eq!(o.woken_count(), 1);
    }

    #[test]
    fn vcpu_source_counts_reissue() {
        let mut k = kernel_with_cp_cpus();
        let mut o = IpiOrchestrator::new(12);
        o.register_vcpus(&mut k, 2, SimTime::ZERO);
        let d = o.route(msg(12, 3), |_| true);
        assert_eq!(d, RouteDecision::Direct);
        assert_eq!(o.reissued_count(), 1);
        // vCPU to vCPU: reissue + posted.
        let d2 = o.route(msg(12, 13), |i| i == 1);
        assert_eq!(d2, RouteDecision::Posted { vcpu: 1 });
        assert_eq!(o.reissued_count(), 2);
    }

    #[test]
    fn affinity_binding_to_vcpu_needs_no_task_changes() {
        // The transparency claim: a plain Program binds to a vCPU via
        // standard affinity and completes there once the vCPU gets
        // physical time.
        use taichi_os::{ActionBuf, CpuSet, Program};
        use taichi_sim::SimDuration;
        let mut k = kernel_with_cp_cpus();
        let mut o = IpiOrchestrator::new(12);
        let ids = o.register_vcpus(&mut k, 1, SimTime::ZERO);
        let vid = ids[0];
        // The vCPU starts with no physical time (paused).
        k.pause_cpu(vid, SimTime::ZERO, &mut ActionBuf::new());
        let p = Program::new().compute(SimDuration::from_micros(30));
        let tid = k.spawn(p, CpuSet::single(vid), SimTime::ZERO, &mut ActionBuf::new());
        assert!(k.cpu_has_work(vid));
        // Grant physical time.
        k.resume_cpu(vid, SimTime::from_micros(10), &mut ActionBuf::new());
        let next = k.next_decision_time(vid, SimTime::from_micros(10)).unwrap();
        k.decide(vid, next, &mut ActionBuf::new());
        assert_eq!(k.thread_info(tid).state, taichi_os::ThreadState::Finished);
    }
}
