//! Randomized property tests at the whole-machine level: for arbitrary
//! (bounded) traffic shapes and CP workloads, the machine must preserve
//! its safety invariants in every mode. Driven by the in-repo
//! deterministic harness ([`taichi_sim::check`]).

use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::MachineConfig;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_os::Program;
use taichi_sim::check::run_cases;
use taichi_sim::{Dist, Rng, SimDuration, SimTime};

fn random_mode(rng: &mut Rng) -> Mode {
    *rng.pick(&Mode::all()).expect("non-empty")
}

/// Packet conservation: everything submitted is processed, dropped, or
/// still in flight at the horizon — in every mode, for any load.
#[test]
fn packet_conservation() {
    run_cases("packet_conservation", 24, |_, rng| {
        let mode = random_mode(rng);
        let seed = rng.next_u64();
        let util_pct = rng.gen_range(5, 160) as u32;
        let bursty = rng.chance(0.5);
        let cfg = MachineConfig {
            seed,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        let dp = m.services().len() as u32;
        let gap = 1.5 / (util_pct as f64 / 100.0) / 8.0;
        let pattern = if bursty {
            ArrivalPattern::OnOff {
                on_us: Dist::constant(150.0),
                off_us: Dist::exponential(300.0),
                burst_gap_us: Dist::exponential(gap * 0.4),
            }
        } else {
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(gap),
            }
        };
        m.add_traffic(TrafficGen::new(
            pattern,
            Dist::constant(512.0),
            IoKind::Network,
            (0..dp).map(CpuId).collect(),
        ));
        let mut cp = Vec::new();
        for _ in 0..4 {
            cp.push(
                Program::new()
                    .compute(SimDuration::from_micros(800))
                    .critical(SimDuration::from_millis(2))
                    .syscall(SimDuration::from_micros(300)),
            );
        }
        m.schedule_cp_batch(cp, SimTime::ZERO);
        m.run_until(SimTime::from_millis(60));

        let mut processed = 0u64;
        let mut dropped = 0u64;
        let mut queued = 0u64;
        for s in m.services() {
            processed += s.processed();
            dropped += s.dropped();
            queued += s.pending() as u64;
        }
        // Everything that entered a ring is accounted for.
        assert_eq!(
            processed + queued,
            m.services()
                .iter()
                .map(|s| { s.processed() + s.pending() as u64 })
                .sum::<u64>()
        );
        // Drops only under meaningful overload.
        if util_pct < 80 {
            assert_eq!(dropped, 0, "{mode}: dropped below saturation");
        }
        // Latency recorder self-consistency.
        let r = RunReport::collect(&m);
        assert_eq!(r.dp.packets(), processed);
        if processed > 0 {
            assert!(r.dp.total_latency().min() >= 3_200, "hardware floor");
        }
    });
}

/// Scheduler bookkeeping: yields and exits stay consistent, and every
/// vCPU that is descheduled at the horizon has no host.
#[test]
fn vcpu_bookkeeping_consistent() {
    run_cases("vcpu_bookkeeping_consistent", 24, |_, rng| {
        let seed = rng.next_u64();
        let duty_pct = rng.gen_range(10, 60) as u32;
        let cfg = MachineConfig {
            seed,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, Mode::TaiChi);
        let duty = duty_pct as f64 / 100.0;
        m.add_traffic(TrafficGen::new(
            ArrivalPattern::OnOff {
                on_us: Dist::constant(200.0),
                off_us: Dist::exponential(200.0 * (1.0 - duty) / duty),
                burst_gap_us: Dist::exponential(0.21),
            },
            Dist::constant(512.0),
            IoKind::Network,
            (0..8).map(CpuId).collect(),
        ));
        let mut cp = Vec::new();
        for _ in 0..8 {
            cp.push(Program::new().compute(SimDuration::from_millis(5)));
        }
        m.schedule_cp_batch(cp, SimTime::ZERO);
        m.run_until(SimTime::from_millis(80));

        let mut entries = 0u64;
        let mut exits = 0u64;
        for v in m.vsched().vcpus() {
            entries += v.entries();
            exits += v.exits().total();
            // entries == exits for descheduled vCPUs; at most one grant
            // can be in flight per vCPU.
            assert!(v.entries() >= v.exits().total());
            assert!(v.entries() - v.exits().total() <= 1);
            if v.is_descheduled() {
                assert!(v.host().is_none());
            }
        }
        // Yields equal placements; each placement leads to at most one
        // entry (a pending-preempt can exit before entering completes).
        assert!(entries <= m.vsched().total_yields());
        assert!(exits <= entries);
    });
}
