//! End-to-end machine tests: every mode, both scheduling paths, the
//! adaptive controllers, and the safety properties.

use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::MachineConfig;
use taichi_cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::IoKind;
use taichi_sim::{Dist, Rng, SimDuration, SimTime};

/// Open-loop Poisson traffic at roughly the requested per-CPU DP
/// utilization (packet cost ≈ 1.5 µs at the default service config).
fn traffic(dp_cpus: u32, util: f64) -> TrafficGen {
    // util = rate_per_cpu * 1.5 µs  =>  gap = 1.5/util µs per CPU, so
    // the aggregate gap across `dp_cpus` CPUs divides by the count.
    let per_cpu_gap_us = 1.5 / util.max(0.01);
    let gap = per_cpu_gap_us / dp_cpus as f64;
    TrafficGen::new(
        ArrivalPattern::OpenLoop {
            gap_us: Dist::exponential(gap),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(taichi_hw::CpuId).collect(),
    )
}

/// Bursty on/off traffic averaging ~30 % DP utilization: dense bursts
/// (≈90 % within-burst utilization) alternating with idle stretches —
/// the production pattern behind Fig. 3's over-provisioning.
fn bursty_traffic(dp_cpus: u32) -> TrafficGen {
    bursty_traffic_duty(dp_cpus, 0.33)
}

/// Bursty traffic with a configurable duty cycle (mean utilization is
/// ~0.9 x duty).
fn bursty_traffic_duty(dp_cpus: u32, duty: f64) -> TrafficGen {
    let off = 200.0 * (1.0 - duty) / duty.max(0.01);
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(off),
            // Within-burst aggregate gap: 1.5 µs per-packet cost /
            // 0.9 util / 8 CPUs ≈ 0.21 µs.
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp_cpus as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(taichi_hw::CpuId).collect(),
    )
}

fn machine(mode: Mode) -> Machine {
    Machine::new(MachineConfig::default(), mode)
}

#[test]
fn baseline_processes_traffic() {
    let mut m = machine(Mode::Baseline);
    m.add_traffic(traffic(8, 0.3));
    m.run_until(SimTime::from_millis(200));
    let r = RunReport::collect(&m);
    assert!(r.dp.packets() > 10_000, "packets {}", r.dp.packets());
    assert_eq!(r.dp_dropped, 0);
    assert_eq!(r.yields, 0, "baseline must not yield");
    // Utilization near 30%.
    let u = r.mean_dp_utilization();
    assert!((0.2..0.45).contains(&u), "utilization {u}");
    // End-to-end latency ≈ 3.2 µs hardware + ~1.5 µs software.
    let p50 = r.dp.total_latency().percentile(50.0);
    assert!((4_000..8_000).contains(&p50), "p50 {p50} ns");
}

#[test]
fn taichi_runs_cp_on_idle_dp_cycles() {
    let mut m = machine(Mode::TaiChi);
    m.add_traffic(bursty_traffic(8));
    let synth = SynthCp::default();
    let mut rng = Rng::new(7);
    let progs = synth.workload(16, &mut rng);
    let batch = m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_secs(1));
    let r = RunReport::collect(&m);
    assert!(r.yields > 0, "expected DP→CP yields");
    assert_eq!(m.batch_threads(batch).len(), 16);
    assert_eq!(r.cp_finished, 16, "all synth tasks finish");
    assert!(r.hw_probe_exits > 0, "hw probe should preempt vCPUs");
}

#[test]
fn taichi_speeds_up_cp_vs_baseline() {
    let mut turnarounds = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi] {
        let mut m = machine(mode);
        m.add_traffic(bursty_traffic(8));
        let synth = SynthCp::default();
        let mut rng = Rng::new(7);
        let progs = synth.workload(32, &mut rng);
        m.schedule_cp_batch(progs, SimTime::ZERO);
        m.run_until(SimTime::from_secs(3));
        let r = RunReport::collect(&m);
        assert_eq!(r.cp_finished, 32, "{mode}: all tasks finish");
        turnarounds.push(r.mean_cp_turnaround_ms());
    }
    let speedup = turnarounds[0] / turnarounds[1];
    assert!(
        speedup > 1.8,
        "Tai Chi CP speedup {speedup:.2}x (baseline {:.1} ms, taichi {:.1} ms)",
        turnarounds[0],
        turnarounds[1]
    );
}

#[test]
fn taichi_dp_latency_close_to_baseline() {
    let mut p999s = Vec::new();
    let mut means = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi] {
        let mut m = machine(mode);
        m.add_traffic(traffic(8, 0.3));
        let synth = SynthCp::default();
        let mut rng = Rng::new(7);
        m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_secs(1));
        let r = RunReport::collect(&m);
        p999s.push(r.dp.total_latency().percentile(99.9) as f64);
        means.push(r.dp.total_latency().mean());
    }
    // Mean within a few percent; p999 within ~6 µs (a partially hidden
    // switch plus the cache-pollution surcharge) — versus the tens of
    // microseconds the no-probe ablation shows.
    let mean_overhead = (means[1] - means[0]) / means[0];
    assert!(
        mean_overhead < 0.05,
        "mean DP overhead {:.2}% too high",
        mean_overhead * 100.0
    );
    assert!(
        p999s[1] < p999s[0] + 8_000.0,
        "p999 spike: baseline {} vs taichi {}",
        p999s[0],
        p999s[1]
    );
}

#[test]
fn no_hw_probe_causes_latency_spikes() {
    let mut maxes = Vec::new();
    for mode in [Mode::TaiChi, Mode::TaiChiNoHwProbe] {
        let mut m = machine(mode);
        m.add_traffic(bursty_traffic(8));
        let synth = SynthCp::default();
        let mut rng = Rng::new(7);
        m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_secs(1));
        let r = RunReport::collect(&m);
        maxes.push(r.dp.total_latency().max());
    }
    // Without the probe, packets wait out vCPU slices: max latency far
    // above the probed configuration.
    assert!(
        maxes[1] > maxes[0] + 30_000,
        "expected spikes without probe: with {} vs without {}",
        maxes[0],
        maxes[1]
    );
}

#[test]
fn vdp_mode_taxes_dp_processing() {
    let mut means = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChiVdp] {
        let mut m = machine(mode);
        m.add_traffic(traffic(8, 0.3));
        m.run_until(SimTime::from_millis(300));
        let r = RunReport::collect(&m);
        means.push(r.dp.software_latency().mean());
    }
    let overhead = (means[1] - means[0]) / means[0];
    assert!(
        overhead > 0.04,
        "vDP software overhead {:.2}% too low",
        overhead * 100.0
    );
}

#[test]
fn type2_loses_a_dp_cpu() {
    let m = machine(Mode::Type2);
    assert_eq!(m.services().len(), 7);
    let m2 = machine(Mode::Baseline);
    assert_eq!(m2.services().len(), 8);
}

#[test]
fn vm_creation_completes_with_startup_time() {
    let mut m = machine(Mode::TaiChi);
    m.add_traffic(traffic(8, 0.3));
    let factory = TaskFactory::default();
    for i in 0..4 {
        let req = VmCreateRequest::at_density(i, 1, SimTime::from_millis(i * 5));
        m.schedule_vm_create(req, &factory);
    }
    m.run_until(SimTime::from_secs(5));
    let times = m.vm_startup_times();
    assert_eq!(times.len(), 4, "all VMs started");
    for t in times {
        // ≥ the 120 ms QEMU boot floor, well under the horizon.
        assert!(*t >= SimDuration::from_millis(120));
        assert!(*t < SimDuration::from_secs(4), "startup {t}");
    }
}

#[test]
fn locked_cp_tasks_always_complete_under_taichi() {
    // Heavy lock contention: every device task hits the same driver
    // lock; vCPU preemption mid-critical-section must not wedge them.
    let mut m = machine(Mode::TaiChi);
    m.add_traffic(traffic(8, 0.3));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(11);
    let progs: Vec<_> = (0..24)
        .map(|_| factory.device_init(taichi_cp::task::locks::NIC_DRIVER, 3, &mut rng))
        .collect();
    m.schedule_cp_batch(progs, SimTime::ZERO);
    m.run_until(SimTime::from_secs(5));
    let r = RunReport::collect(&m);
    assert_eq!(r.cp_finished, 24, "forward progress under contention");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut m = machine(Mode::TaiChi);
        m.add_traffic(traffic(8, 0.3));
        let synth = SynthCp::default();
        let mut rng = Rng::new(3);
        m.schedule_cp_batch(synth.workload(8, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_millis(500));
        let r = RunReport::collect(&m);
        (
            r.dp.packets(),
            r.dp.total_latency().mean().to_bits(),
            r.yields,
            r.cp_finished,
            r.cp_turnaround.mean().to_bits(),
        )
    };
    assert_eq!(run(), run(), "identical seeds must give identical runs");
}

#[test]
fn adaptive_yield_reacts_to_traffic() {
    let mut m = machine(Mode::TaiChi);
    m.add_traffic(bursty_traffic(8));
    let synth = SynthCp::default();
    let mut rng = Rng::new(5);
    m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
    m.run_until(SimTime::from_secs(1));
    // Both adjustment directions exercised under mixed idle/busy.
    assert!(m.yield_ctl().increases() > 0, "false-positive feedback");
    assert!(m.yield_ctl().decreases() > 0, "sustained-idle feedback");
}

#[test]
fn util_sampling_produces_windows() {
    let mut m = machine(Mode::Baseline);
    m.add_traffic(traffic(8, 0.3));
    m.enable_util_sampling(SimDuration::from_millis(10));
    m.run_until(SimTime::from_millis(205));
    // 20 sampling points × 8 services.
    assert_eq!(m.util_samples().len(), 20 * 8);
    let mean: f64 = m.util_samples().iter().sum::<f64>() / m.util_samples().len() as f64;
    assert!((0.15..0.5).contains(&mean), "sampled mean {mean}");
}

#[test]
fn cp_work_reaches_vcpus_via_affinity_only() {
    // Transparency check at the system level: CP programs know nothing
    // about Tai Chi, yet under load they execute on vCPUs (total CP
    // throughput exceeds what 4 CP pCPUs could deliver).
    let mut m = machine(Mode::TaiChi);
    m.add_traffic(bursty_traffic_duty(8, 0.10)); // mostly-idle DP
    let synth = SynthCp {
        task_cpu_time: SimDuration::from_millis(50),
        ..SynthCp::default()
    };
    let mut rng = Rng::new(13);
    m.schedule_cp_batch(synth.workload(64, &mut rng), SimTime::ZERO);
    let horizon = SimTime::from_millis(500);
    m.run_until(horizon);
    let r = RunReport::collect(&m);
    // 64 × 50 ms = 3.2 s of CP work. In 0.5 s, 4 CP pCPUs alone supply
    // at most 2.0 s; exceeding 2.6 s requires genuine DP-idle harvest.
    let cp_seconds = r.cp_cpu_time_ns as f64 / 1e9;
    assert!(
        cp_seconds > 2.6,
        "CP consumed only {cp_seconds:.2} s — vCPU stealing broken"
    );
    assert!(r.yields > 0);
}

#[test]
fn pipeline_aware_yield_vetoes_false_positives() {
    use taichi_core::TaiChiConfig;
    let run = |flag: bool| {
        let cfg = MachineConfig {
            seed: 0x9E,
            taichi: TaiChiConfig {
                pipeline_aware_yield: flag,
                ..TaiChiConfig::default()
            },
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, Mode::TaiChi);
        m.add_traffic(bursty_traffic(8));
        let synth = SynthCp::default();
        let mut rng = Rng::new(1);
        m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_millis(400));
        let r = RunReport::collect(&m);
        (m.yield_vetoes(), r.yields, r.hw_probe_exits)
    };
    let (v_off, y_off, _) = run(false);
    let (v_on, y_on, probe_on) = run(true);
    assert_eq!(v_off, 0, "stock config never vetoes");
    assert!(v_on > 0, "pipeline signal should veto some yields");
    assert!(y_off > 0 && y_on > 0, "both configs still harvest");
    // Vetoing in-flight yields cannot create more probe evictions than
    // there are yields.
    assert!(probe_on <= y_on);
}

#[test]
fn cache_isolation_removes_pollution_surcharge() {
    use taichi_core::TaiChiConfig;
    let run = |flag: bool| {
        let cfg = MachineConfig {
            seed: 0xCA,
            taichi: TaiChiConfig {
                cache_isolation: flag,
                ..TaiChiConfig::default()
            },
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, Mode::TaiChi);
        m.add_traffic(bursty_traffic(8));
        let synth = SynthCp::default();
        let mut rng = Rng::new(2);
        m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_millis(400));
        let r = RunReport::collect(&m);
        r.dp.software_latency().mean()
    };
    let polluted = run(false);
    let isolated = run(true);
    assert!(
        isolated <= polluted,
        "isolation must not add latency: {isolated} vs {polluted}"
    );
}
