//! Steady-state allocation audit for the machine hot loop.
//!
//! Installs the counting allocator ([`taichi_sim::alloc`]) as this test
//! binary's global allocator, warms a full bench-grade machine up past
//! its allocation fixed point (slab growth, wheel ramp-up, histogram
//! resizes, scratch-buffer spills), and then asserts that dispatching
//! tens of thousands of further events performs **zero** heap
//! allocations, reallocations, or frees. This pins the perf contract
//! directly rather than via throughput numbers: any new per-event
//! `Vec`/`Box`/`clone` in the engine, kernel, or dataplane shows up
//! here as a hard failure, on any machine, regardless of how fast the
//! CI runner is.
//!
//! This file must stay a **single-test binary**: the allocator counters
//! are process-global, so a sibling test thread allocating concurrently
//! would leak into the measurement window.

use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::SynthCp;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::alloc::{self, CountingAlloc};
use taichi_sim::{Dist, Rng, SimTime};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The `bench_engine` machine: bursty 8-CPU network traffic plus an
/// 8-task synth_cp batch — the workload the perf acceptance numbers
/// are quoted on.
fn build(mode: Mode) -> Machine {
    let mut m = Machine::new(MachineConfig::default(), mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(1);
    m.schedule_cp_batch(synth.workload(8, &mut rng), SimTime::ZERO);
    m
}

#[test]
fn steady_state_dispatch_is_allocation_free() {
    assert!(alloc::is_installed(), "counting allocator not installed");

    let mut m = build(Mode::TaiChi);

    // Warm-up: 10 ms of simulated time brings every reusable buffer to
    // its high-water capacity (event slab, wheel window, kernel run
    // queues, latency histograms, scratch vectors).
    m.run_until(SimTime::from_millis(10));
    let warm_events = m.events_processed();
    assert!(
        warm_events > 10_000,
        "warm-up too quiet ({warm_events} events) — workload drifted?"
    );

    // Measurement window: another 10 ms of simulated time.
    let before = alloc::snapshot();
    m.run_until(SimTime::from_millis(20));
    let delta = alloc::snapshot().since(before);

    let events = m.events_processed() - warm_events;
    assert!(
        events > 10_000,
        "measurement window too quiet ({events} events) — workload drifted?"
    );
    assert_eq!(
        delta.allocation_events(),
        0,
        "hot loop allocated: {} allocs + {} reallocs ({} bytes) over {} events",
        delta.allocs,
        delta.reallocs,
        delta.bytes,
        events
    );
    assert_eq!(
        delta.deallocs, 0,
        "hot loop freed memory ({} deallocs) — something is dropping per event",
        delta.deallocs
    );
}
