//! Fault-injection property tests: across a randomized fault matrix
//! the scheduler must degrade gracefully — every machine-wide
//! invariant holds, replays are byte-identical, and an intentionally
//! broken degradation policy is *caught* by the invariant checker
//! (proving the checker has teeth, not just green lights).

use taichi_core::machine::{Machine, Mode};
use taichi_core::{assert_invariants, check_invariants, MachineConfig, PolicyKind};
use taichi_cp::{CpTaskKind, SynthCp, TaskFactory};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::check::run_cases;
use taichi_sim::{DegradePolicy, Dist, FaultPlan, Rng, SimDuration, SimTime};

const HORIZON: SimDuration = SimDuration::from_millis(40);

/// Standard faulted workload: bursty traffic on every DP CPU (the off
/// periods are what lets vCPUs be granted idle cycles) plus a periodic
/// CP batch mix (monitoring tasks sleep between iterations, which is
/// what makes dropped wakeups observable).
fn build_machine(cfg: MachineConfig, mode: Mode) -> Machine {
    let seed = cfg.seed;
    let mut m = Machine::new(cfg, mode);
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(seed ^ 0xBAD);
    // A heavy synthetic batch up front saturates the dedicated CP
    // pCPUs, so spill-over work actually lands on vCPUs and the
    // grant/softirq/IPI fault paths are exercised.
    let synth = SynthCp::default();
    m.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);
    let mut t = SimTime::from_millis(1);
    while t < SimTime::ZERO + HORIZON {
        m.schedule_cp_batch(
            vec![
                factory.build(CpTaskKind::Monitoring, &mut rng),
                factory.build(CpTaskKind::DeviceManagement, &mut rng),
            ],
            t,
        );
        t += SimDuration::from_millis(4);
    }
    m
}

fn random_plan(rng: &mut Rng) -> FaultPlan {
    let rate = |rng: &mut Rng| rng.gen_range(0, 16) as f64 / 100.0;
    let mut p = FaultPlan {
        accel_stall_rate: rate(rng),
        ipi_drop_rate: rate(rng),
        ipi_delay_rate: rate(rng),
        wakeup_drop_rate: rate(rng),
        softirq_drop_rate: rate(rng),
        enic_reject_rate: rate(rng),
        ..FaultPlan::default()
    };
    if rng.chance(0.5) {
        p.timer_jitter = SimDuration::from_nanos(rng.gen_range(50, 500));
    }
    if rng.chance(0.5) {
        p.storm_period = SimDuration::from_micros(rng.gen_range(2_000, 10_000));
        p.storm_tasks = rng.gen_range(1, 6) as u32;
    }
    p
}

/// For any bounded fault plan, in any Tai Chi-family mode, the default
/// (hardened) degradation policy preserves every scheduler invariant.
#[test]
fn invariants_hold_across_random_fault_matrix() {
    run_cases("fault_matrix_invariants", 10, |case, rng| {
        let mode = *rng
            .pick(&[Mode::TaiChi, Mode::TaiChiNoHwProbe, Mode::Baseline])
            .expect("non-empty");
        let cfg = MachineConfig {
            seed: rng.next_u64(),
            faults: random_plan(rng),
            ..MachineConfig::default()
        };
        let mut m = build_machine(cfg, mode);
        m.run_until(SimTime::ZERO + HORIZON);
        assert_invariants(&m, &format!("fault_matrix case {case} ({mode})"));
    });
}

/// Every pluggable `Scheduler` implementation — selected through
/// `MachineConfig::policy`, so the trait-dispatched construction path
/// is what runs — preserves the machine-wide invariants across a
/// graded fault matrix. The checker's violation list covers stranded
/// sleepers (dropped wakeups never re-armed) and leaked vCPU grants
/// (a raise rolled back without conserving the vCPU), so a policy
/// that mishandles a degradation path fails here by name.
#[test]
fn every_policy_survives_graded_fault_matrix() {
    for kind in PolicyKind::all() {
        for pct in [0u64, 1, 5, 20] {
            let cfg = MachineConfig {
                seed: 0x5EED ^ (pct << 8),
                faults: FaultPlan::uniform(pct as f64 / 100.0),
                policy: Some(kind),
                ..MachineConfig::default()
            };
            let mut m = build_machine(cfg, kind.canonical_mode());
            m.run_until(SimTime::ZERO + HORIZON);
            assert_eq!(m.policy().name(), kind.to_string(), "policy must be live");
            assert_invariants(&m, &format!("policy {kind} @ {pct}% faults"));
        }
    }
}

/// Same seed + same plan ⇒ the entire schedule replays byte-identical
/// (trace TSV and fault statistics), so every fault scenario is
/// reproducible and diffable.
#[test]
fn same_seed_same_plan_replays_byte_identical() {
    let run = || {
        let mut cfg = MachineConfig {
            seed: 0xFEED,
            faults: FaultPlan::uniform(0.1),
            ..MachineConfig::default()
        };
        cfg.trace.enabled = true;
        let mut m = build_machine(cfg, Mode::TaiChi);
        m.run_until(SimTime::ZERO + HORIZON);
        (
            m.trace_tsv().expect("tracing enabled"),
            m.fault().expect("active plan").stats(),
            m.fault_health(),
        )
    };
    let (tsv_a, stats_a, health_a) = run();
    let (tsv_b, stats_b, health_b) = run();
    assert!(stats_a.total() > 0, "a 10% uniform plan must fire");
    assert_eq!(stats_a, stats_b, "fault decisions must replay exactly");
    assert_eq!(health_a, health_b, "recoveries must replay exactly");
    assert_eq!(tsv_a, tsv_b, "trace replay must be byte-identical");
}

/// Different seeds draw different fault schedules from the same plan.
#[test]
fn different_seed_diverges_under_same_plan() {
    let run = |seed: u64| {
        let cfg = MachineConfig {
            seed,
            faults: FaultPlan::uniform(0.1),
            ..MachineConfig::default()
        };
        let mut m = build_machine(cfg, Mode::TaiChi);
        m.run_until(SimTime::ZERO + HORIZON);
        m.fault().expect("active plan").stats()
    };
    assert_ne!(run(1), run(2), "seeds must decorrelate fault schedules");
}

/// An inactive plan constructs no injector at all: the fault layer is
/// a set of untaken branches.
#[test]
fn inactive_plan_builds_no_injector() {
    let cfg = MachineConfig::default();
    assert!(!cfg.faults.is_active());
    let mut m = build_machine(cfg, Mode::TaiChi);
    m.run_until(SimTime::ZERO + HORIZON);
    assert!(m.fault().is_none());
    let h = m.fault_health();
    assert_eq!(h, taichi_core::FaultHealth::default());
    assert_invariants(&m, "fault-free run");
}

/// The hardened policy recovers from a total wakeup blackout (every
/// timer re-armed late); flipping `wakeup_rearm` off strands sleeping
/// monitoring tasks forever — and the invariant checker must say so.
#[test]
fn broken_wakeup_policy_is_caught() {
    let run = |policy: DegradePolicy| {
        let cfg = MachineConfig {
            seed: 0xC0FE,
            faults: FaultPlan {
                wakeup_drop_rate: 1.0,
                degrade: policy,
                ..FaultPlan::default()
            },
            ..MachineConfig::default()
        };
        let mut m = build_machine(cfg, Mode::TaiChi);
        m.run_until(SimTime::ZERO + HORIZON);
        m
    };

    let hardened = run(DegradePolicy::default());
    assert!(
        hardened.fault_health().wakeup_rearms > 0,
        "the blackout must exercise the re-arm path"
    );
    assert_invariants(&hardened, "hardened wakeup policy");

    let broken = run(DegradePolicy {
        wakeup_rearm: false,
        ..DegradePolicy::default()
    });
    assert!(
        !broken.fault_health().lost_wakeups.is_empty(),
        "with re-arm off, dropped wakeups must strand sleepers"
    );
    let report = check_invariants(&broken);
    assert!(
        report.violations.iter().any(|v| v.contains("wakeup")),
        "checker must flag the stranded sleepers, got: {report}"
    );
}

/// A softirq blackout with re-arm disabled forces grant rollbacks (the
/// vCPU is conserved, never half-placed), and the hardened policy
/// instead recovers most grants via the re-raise.
#[test]
fn softirq_blackout_rolls_back_grants_safely() {
    let run = |rearm: bool| {
        let cfg = MachineConfig {
            seed: 0xD00D,
            faults: FaultPlan {
                softirq_drop_rate: if rearm { 0.4 } else { 1.0 },
                degrade: DegradePolicy {
                    softirq_rearm: rearm,
                    ..DegradePolicy::default()
                },
                ..FaultPlan::default()
            },
            ..MachineConfig::default()
        };
        let mut m = build_machine(cfg, Mode::TaiChi);
        m.run_until(SimTime::ZERO + HORIZON);
        assert_invariants(&m, "softirq blackout");
        m.fault_health()
    };
    let hardened = run(true);
    assert!(hardened.softirq_rearms > 0, "re-raise path must fire");
    let exposed = run(false);
    assert!(
        exposed.softirq_lost_grants > 0,
        "every dropped raise must roll its grant back"
    );
}
