//! Nginx + wrk analogue (Fig. 16).
//!
//! The paper measures average requests/second for HTTP and HTTPS under
//! 10 000 concurrent wrk connections. Nginx runs in the guest VM; each
//! request crosses the SmartNIC data plane. The host-side model:
//!
//! ```text
//! http_latency  = HOST_HTTP_US + HTTP_RTS × 2 × one-way-latency
//! https_latency = http_latency + TLS_CPU_US
//!               + TLS_EXTRA_RTS × 2 × one-way-latency
//! RPS           = min(CONNECTIONS / latency, host CPU bound)
//! ```
//!
//! Short (HTTP, connection per request) traffic leans harder on the
//! SmartNIC per request, which is why the paper sees the larger (1 %)
//! overhead there.

use crate::runner::{measure, BenchTraffic, MeasuredDp};
use taichi_core::machine::Mode;
use taichi_sim::SimDuration;

/// Concurrent wrk connections (paper: 10 000).
pub const CONNECTIONS: f64 = 10_000.0;
/// Host-side request handling (µs).
pub const HOST_HTTP_US: f64 = 120.0;
/// SmartNIC round trips per HTTP request (connect + request/response).
pub const HTTP_RTS: f64 = 3.0;
/// Extra round trips for the TLS handshake.
pub const TLS_EXTRA_RTS: f64 = 2.0;
/// TLS handshake + record crypto CPU (µs).
pub const TLS_CPU_US: f64 = 180.0;

/// Nginx results.
#[derive(Clone, Debug)]
pub struct NginxResult {
    /// HTTP requests/second.
    pub http_rps: f64,
    /// HTTPS requests/second.
    pub https_rps: f64,
    /// Raw measurement.
    pub raw: MeasuredDp,
}

/// Runs the Nginx case under `mode`.
pub fn run(mode: Mode, seed: u64) -> NginxResult {
    let raw = measure(
        mode,
        &BenchTraffic::net(1024.0, 0.40, true),
        SimDuration::from_millis(250),
        seed,
    );
    let one_way_us = raw.lat_mean_ns / 1e3;
    let http_lat = HOST_HTTP_US + HTTP_RTS * 2.0 * one_way_us;
    let https_lat = http_lat + TLS_CPU_US + TLS_EXTRA_RTS * 2.0 * one_way_us;
    NginxResult {
        http_rps: CONNECTIONS / (http_lat * 1e-6),
        https_rps: CONNECTIONS / (https_lat * 1e-6),
        raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn https_slower_than_http() {
        let r = run(Mode::Baseline, 6);
        assert!(r.http_rps > r.https_rps);
        assert!(r.https_rps > 0.0);
    }

    #[test]
    fn taichi_overhead_in_paper_band() {
        let base = run(Mode::Baseline, 6);
        let taichi = run(Mode::TaiChi, 6);
        let http_over = (base.http_rps - taichi.http_rps) / base.http_rps;
        let https_over = (base.https_rps - taichi.https_rps) / base.https_rps;
        // Paper: 0.51 % average, up to 1 % for short connections.
        assert!((-0.01..0.05).contains(&http_over), "http {:.4}", http_over);
        assert!(
            (-0.01..0.05).contains(&https_over),
            "https {:.4}",
            https_over
        );
        // Short connections lean harder on the NIC: overhead ordering.
        assert!(http_over >= https_over - 0.005);
    }
}
