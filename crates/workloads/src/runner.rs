//! Shared benchmark driver.
//!
//! Builds a machine for one [`Mode`], applies a traffic specification
//! and a background control-plane load (device churn + monitoring —
//! present in every production measurement window, and required for
//! Tai Chi's scheduling machinery to be exercised *during* data-plane
//! benchmarks), runs it, and extracts the measured distribution.

use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::{CpTaskKind, TaskFactory};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::{Dist, Rng, SimDuration, SimTime};

/// Per-packet software processing cost mean at the default service
/// config (used to translate utilization targets into arrival rates).
pub const PROC_COST_US: f64 = 1.5;

/// Traffic specification for one benchmark case.
#[derive(Clone, Debug)]
pub struct BenchTraffic {
    /// Network or storage.
    pub kind: IoKind,
    /// Payload size in bytes.
    pub size_bytes: f64,
    /// Target mean per-CPU utilization (of the *baseline* 8-CPU pool);
    /// values ≥ 1.0 saturate the data plane.
    pub utilization: f64,
    /// Bursty on/off arrivals (production-shaped) instead of smooth
    /// Poisson.
    pub bursty: bool,
    /// Within-burst per-CPU utilization for bursty traffic (0-1].
    /// Production bursts rarely saturate; latency-sensitive cases use
    /// calmer bursts than throughput cases.
    pub burst_intensity: f64,
}

impl BenchTraffic {
    /// A network case with the default 0.9 burst intensity.
    pub fn net(size_bytes: f64, utilization: f64, bursty: bool) -> Self {
        BenchTraffic {
            kind: IoKind::Network,
            size_bytes,
            utilization,
            bursty,
            burst_intensity: 0.9,
        }
    }

    /// A storage case with the default 0.9 burst intensity.
    pub fn storage(size_bytes: f64, utilization: f64, bursty: bool) -> Self {
        BenchTraffic {
            kind: IoKind::Storage,
            size_bytes,
            utilization,
            bursty,
            burst_intensity: 0.9,
        }
    }

    /// Overrides the within-burst intensity.
    pub fn with_burst_intensity(mut self, intensity: f64) -> Self {
        self.burst_intensity = intensity.clamp(0.05, 1.0);
        self
    }
}

impl BenchTraffic {
    fn generator(&self, dp_cpus: u32) -> TrafficGen {
        // Rates are always computed against the baseline 8-CPU pool so
        // every mode receives the same offered load.
        let base_cpus = 8.0;
        let aggregate_gap = PROC_COST_US / self.utilization.max(0.01) / base_cpus;
        let pattern = if self.bursty {
            // 200 µs bursts at the configured within-burst utilization,
            // idle gaps sized for the target duty cycle.
            let intensity = self.burst_intensity.clamp(0.05, 1.0);
            let duty = (self.utilization / intensity).clamp(0.02, 1.0);
            ArrivalPattern::OnOff {
                on_us: Dist::constant(200.0),
                off_us: Dist::exponential(200.0 * (1.0 - duty) / duty.max(0.01)),
                burst_gap_us: Dist::exponential(PROC_COST_US / intensity / base_cpus),
            }
        } else {
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(aggregate_gap),
            }
        };
        TrafficGen::new(
            pattern,
            Dist::constant(self.size_bytes),
            self.kind,
            (0..dp_cpus).map(CpuId).collect(),
        )
    }
}

/// Measured data-plane behaviour of one run.
#[derive(Clone, Debug)]
pub struct MeasuredDp {
    /// Mode the run used.
    pub mode: Mode,
    /// Measurement window.
    pub window: SimDuration,
    /// One-way latency statistics (ns).
    pub lat_min_ns: u64,
    /// Mean one-way latency (ns).
    pub lat_mean_ns: f64,
    /// Median.
    pub lat_p50_ns: u64,
    /// 99th percentile.
    pub lat_p99_ns: u64,
    /// 99.9th percentile.
    pub lat_p999_ns: u64,
    /// Maximum.
    pub lat_max_ns: u64,
    /// Standard deviation.
    pub lat_stddev_ns: f64,
    /// Achieved packets/ops per second.
    pub pps: f64,
    /// Achieved payload bandwidth in Gb/s.
    pub gbps: f64,
    /// Packets dropped at rings (saturation indicator).
    pub drops: u64,
    /// DP→CP yields during the window (scheduler activity).
    pub yields: u64,
}

/// Runs one measurement: `traffic` for `horizon`, with background CP
/// activity, under `mode`.
///
/// Background CP load: a rolling mix of device-management and
/// monitoring tasks (≈2 concurrent device inits plus monitors every
/// 5 ms) — enough to keep vCPUs populated without saturating the CP
/// plane.
pub fn measure(mode: Mode, traffic: &BenchTraffic, horizon: SimDuration, seed: u64) -> MeasuredDp {
    let cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    measure_cfg(cfg, mode, traffic, horizon)
}

/// Runs [`measure`] for each `(mode, seed)` case across worker threads
/// (see [`taichi_sim::par`]), returning results in input order — each
/// run builds its own machine and RNG streams, so the fan-out is
/// byte-identical to a serial loop.
pub fn measure_sweep(
    cases: &[(Mode, u64)],
    traffic: &BenchTraffic,
    horizon: SimDuration,
) -> Vec<MeasuredDp> {
    taichi_sim::par::sweep(cases.to_vec(), |(mode, seed)| {
        measure(mode, traffic, horizon, seed)
    })
}

/// Like [`measure_sweep`] for a set of modes sharing one seed.
pub fn measure_modes(
    modes: &[Mode],
    traffic: &BenchTraffic,
    horizon: SimDuration,
    seed: u64,
) -> Vec<MeasuredDp> {
    let cases: Vec<(Mode, u64)> = modes.iter().map(|&m| (m, seed)).collect();
    measure_sweep(&cases, traffic, horizon)
}

/// Like [`measure`] but additionally injects a sparse latency-probe
/// stream (64 B packets, exponential inter-arrival with mean
/// `probe_gap_us`) tagged onto queue 1 so it samples the data path
/// uniformly in time — the measurement model of `ping` and
/// `sockperf`'s latency mode. Returns `(background, probe)` where the
/// probe's latency fields describe only the tagged packets.
pub fn measure_probed(
    mode: Mode,
    traffic: &BenchTraffic,
    probe_gap_us: f64,
    horizon: SimDuration,
    seed: u64,
) -> (MeasuredDp, MeasuredDp) {
    let cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let mut m = machine_with_load(cfg, mode, traffic, horizon);
    let dp_cpus = m.services().len() as u32;
    let probe = TrafficGen::new(
        ArrivalPattern::OpenLoop {
            gap_us: Dist::exponential(probe_gap_us),
        },
        Dist::constant(64.0),
        traffic.kind,
        (0..dp_cpus).map(CpuId).collect(),
    )
    .with_queue(1);
    m.add_traffic(probe);
    m.run_until(SimTime::ZERO + horizon);
    maybe_dump_trace(&m);
    let background = extract(&m, horizon, |s| s.recorder().clone());
    let probe_stats = extract(&m, horizon, |s| s.tagged_recorder().clone());
    (background, probe_stats)
}

/// Like [`measure`] but with an explicit machine configuration (used
/// by experiments that change the CPU split or scheduler knobs).
pub fn measure_cfg(
    cfg: MachineConfig,
    mode: Mode,
    traffic: &BenchTraffic,
    horizon: SimDuration,
) -> MeasuredDp {
    let mut m = machine_with_load(cfg, mode, traffic, horizon);
    m.run_until(SimTime::ZERO + horizon);
    maybe_dump_trace(&m);
    extract(&m, horizon, |s| s.recorder().clone())
}

/// When the run recorded a scheduler trace (the `TAICHI_TRACE`
/// override or an explicit `MachineConfig.trace.enabled`), writes its
/// TSV to `$TAICHI_TRACE` (when set to a non-empty path) or to
/// `target/experiments/<mode>.trace.tsv`. Each run overwrites, so the
/// file holds the most recent run for that mode — enough to replay the
/// schedule behind the numbers a benchmark just printed.
fn maybe_dump_trace(m: &Machine) {
    let Some(tsv) = m.trace_tsv() else { return };
    let path = match std::env::var("TAICHI_TRACE") {
        Ok(p) if !p.is_empty() => {
            // Per-export destination claim: a process that measures
            // several machines must not clobber earlier rings' TSVs
            // (later exports land at `<path>.<n>`).
            let (path, clash) = taichi_sim::trace::claim_export_path(&p);
            if let Some(w) = clash {
                eprintln!("warning: {w}");
            }
            path
        }
        _ => {
            let dir = std::path::PathBuf::from("target/experiments");
            let _ = std::fs::create_dir_all(&dir);
            dir.join(format!("{}.trace.tsv", m.mode()))
        }
    };
    if let Err(e) = std::fs::write(&path, tsv) {
        eprintln!("warning: could not write trace {}: {e}", path.display());
    } else {
        eprintln!("[trace] {}", path.display());
        if let Some(w) = m.tracer().and_then(|t| t.eviction_warning()) {
            eprintln!("warning: {}: {w}", path.display());
        }
    }
}

/// Builds a machine with `traffic` plus the standard background CP
/// churn, ready to run until `horizon`.
fn machine_with_load(
    cfg: MachineConfig,
    mode: Mode,
    traffic: &BenchTraffic,
    horizon: SimDuration,
) -> Machine {
    let seed = cfg.seed;
    let mut m = Machine::new(cfg, mode);
    let dp_cpus = m.services().len() as u32;
    m.add_traffic(traffic.generator(dp_cpus));

    // Background control-plane churn, heavy enough that CP demand
    // exceeds the 4 dedicated CP pCPUs (the §3.1 starvation premise):
    // under Tai Chi the surplus continuously seeks idle DP cycles, so
    // every data-plane measurement runs with the scheduler active.
    let factory = TaskFactory::default();
    let mut rng = Rng::new(seed ^ 0xC0FFEE);
    let mut t = SimTime::from_millis(1);
    let end = SimTime::ZERO + horizon;
    while t < end {
        let mut batch = Vec::new();
        batch.push(factory.build(CpTaskKind::DeviceManagement, &mut rng));
        batch.push(factory.build(CpTaskKind::DeviceManagement, &mut rng));
        batch.push(factory.build(CpTaskKind::Monitoring, &mut rng));
        if rng.chance(0.5) {
            batch.push(factory.build(CpTaskKind::Orchestration, &mut rng));
        }
        m.schedule_cp_batch(batch, t);
        t += SimDuration::from_millis(2);
    }
    m
}

/// Extracts a [`MeasuredDp`] from a finished machine using the
/// recorder selected by `pick`.
fn extract(
    m: &Machine,
    horizon: SimDuration,
    pick: impl Fn(&taichi_dp::DpService) -> taichi_dp::LatencyRecorder,
) -> MeasuredDp {
    let mut rec = taichi_dp::LatencyRecorder::new();
    let mut drops = 0;
    for s in m.services() {
        rec.merge(&pick(s));
        drops += s.dropped();
    }
    let h = rec.total_latency();
    MeasuredDp {
        mode: m.mode(),
        window: horizon,
        lat_min_ns: h.min(),
        lat_mean_ns: h.mean(),
        lat_p50_ns: h.percentile(50.0),
        lat_p99_ns: h.percentile(99.0),
        lat_p999_ns: h.percentile(99.9),
        lat_max_ns: h.max(),
        lat_stddev_ns: h.stddev(),
        pps: rec.pps(horizon),
        gbps: rec.gbps(horizon),
        drops,
        yields: m.vsched().total_yields(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_traffic(util: f64, bursty: bool) -> BenchTraffic {
        BenchTraffic::net(512.0, util, bursty)
    }

    #[test]
    fn baseline_measurement_is_sane() {
        let d = measure(
            Mode::Baseline,
            &net_traffic(0.3, true),
            SimDuration::from_millis(150),
            1,
        );
        assert!(d.pps > 100_000.0, "pps {}", d.pps);
        assert_eq!(d.yields, 0);
        assert!(d.lat_p50_ns > 3_200, "p50 {}", d.lat_p50_ns);
        assert!(d.lat_min_ns >= 3_200, "hardware floor");
    }

    #[test]
    fn taichi_yields_during_measurement() {
        let d = measure(
            Mode::TaiChi,
            &net_traffic(0.3, true),
            SimDuration::from_millis(150),
            1,
        );
        assert!(d.yields > 0, "background CP must trigger yields");
    }

    #[test]
    fn saturation_drops_or_caps() {
        let d = measure(
            Mode::Baseline,
            &net_traffic(1.3, false),
            SimDuration::from_millis(120),
            2,
        );
        // Achieved throughput caps near capacity: 8 CPUs / 1.5 µs.
        let cap = 8.0 / 1.5e-6;
        assert!(d.pps < cap * 1.05, "pps {} above capacity {cap}", d.pps);
        assert!(d.pps > cap * 0.8, "pps {} far below capacity {cap}", d.pps);
    }

    #[test]
    fn type2_achieves_less_at_saturation() {
        let base = measure(
            Mode::Baseline,
            &net_traffic(1.3, false),
            SimDuration::from_millis(120),
            3,
        );
        let t2 = measure(
            Mode::Type2,
            &net_traffic(1.3, false),
            SimDuration::from_millis(120),
            3,
        );
        let ratio = t2.pps / base.pps;
        assert!(
            (0.6..0.95).contains(&ratio),
            "type2/baseline throughput ratio {ratio}"
        );
    }

    #[test]
    fn deterministic_measurement() {
        let a = measure(
            Mode::TaiChi,
            &net_traffic(0.3, true),
            SimDuration::from_millis(100),
            7,
        );
        let b = measure(
            Mode::TaiChi,
            &net_traffic(0.3, true),
            SimDuration::from_millis(100),
            7,
        );
        assert_eq!(a.pps.to_bits(), b.pps.to_bits());
        assert_eq!(a.lat_mean_ns.to_bits(), b.lat_mean_ns.to_bits());
        assert_eq!(a.yields, b.yields);
    }
}
