//! netperf analogues (Table 3): `udp_stream`, `tcp_stream`, `tcp_rr`,
//! `tcp_crr`.
//!
//! Two measurement regimes:
//!
//! - **Saturation** (`tcp_crr`, Fig. 12): connect/request/response/close
//!   churn saturates the data plane. Each connection costs
//!   [`TCP_CRR_PKTS`] packets through the SmartNIC; we offer ~120 % of
//!   baseline capacity and report achieved CPS and pps.
//! - **Closed loop** (`udp_stream`, `tcp_stream`, `tcp_rr`, Fig. 14):
//!   a fixed connection count ping-pongs with the peer, so throughput
//!   is `connections / round-trip-time`. The SmartNIC contributes the
//!   measured per-packet latency twice per round trip; the rest of the
//!   RTT (peer stack + wire) is the documented [`BASE_RTT_US`]
//!   constant. Mode-to-mode deltas therefore come entirely from
//!   measured SmartNIC behaviour.

use crate::runner::{measure, BenchTraffic, MeasuredDp};
use taichi_core::machine::Mode;
use taichi_sim::SimDuration;

/// Packets through the SmartNIC per tcp_crr transaction
/// (SYN, SYN-ACK, request, response, FIN, FIN-ACK).
pub const TCP_CRR_PKTS: f64 = 6.0;

/// Peer-side + wire round-trip component (µs), excluded from the
/// SmartNIC simulation.
pub const BASE_RTT_US: f64 = 22.0;

/// Which netperf case to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetperfCase {
    /// UDP bulk receive, 64 connections, large datagrams.
    UdpStream,
    /// TCP bulk streams, 64 connections.
    TcpStream,
    /// TCP request/response on 1 024 persistent connections.
    TcpRr,
    /// TCP connect/request/response/close, saturating.
    TcpCrr,
}

/// netperf results (metric meaning depends on the case).
#[derive(Clone, Debug)]
pub struct NetperfResult {
    /// Case that produced this result.
    pub case: NetperfCase,
    /// Connections per second (tcp_crr only, else 0).
    pub cps: f64,
    /// Average receive packets per second.
    pub avg_rx_pps: f64,
    /// Average transmit packets per second.
    pub avg_tx_pps: f64,
    /// Average receive bandwidth in Gb/s.
    pub avg_rx_bw_gbps: f64,
    /// Raw measurement.
    pub raw: MeasuredDp,
}

/// Runs one netperf case under `mode`.
pub fn run(case: NetperfCase, mode: Mode, seed: u64) -> NetperfResult {
    let window = SimDuration::from_millis(250);
    match case {
        NetperfCase::TcpCrr => {
            let traffic = BenchTraffic::net(256.0, 1.2, false);
            let raw = measure(mode, &traffic, window, seed);
            NetperfResult {
                case,
                cps: raw.pps / TCP_CRR_PKTS,
                avg_rx_pps: raw.pps,
                avg_tx_pps: raw.pps,
                avg_rx_bw_gbps: raw.gbps,
                raw,
            }
        }
        NetperfCase::UdpStream | NetperfCase::TcpStream | NetperfCase::TcpRr => {
            let (conns, size, util) = match case {
                NetperfCase::UdpStream => (64.0, 1400.0, 0.45),
                NetperfCase::TcpStream => (64.0, 512.0, 0.45),
                NetperfCase::TcpRr => (1024.0, 64.0, 0.35),
                NetperfCase::TcpCrr => unreachable!(),
            };
            let traffic = BenchTraffic::net(size, util, true);
            let raw = measure(mode, &traffic, window, seed);
            // Closed loop: each connection completes one round trip per
            // BASE_RTT + 2 × one-way SmartNIC latency.
            let rtt_us = BASE_RTT_US + 2.0 * raw.lat_mean_ns / 1e3;
            let pps = conns / (rtt_us * 1e-6);
            NetperfResult {
                case,
                cps: 0.0,
                avg_rx_pps: pps,
                avg_tx_pps: pps,
                avg_rx_bw_gbps: pps * size * 8.0 / 1e9,
                raw,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_crr_mode_ordering_matches_fig12() {
        let base = run(NetperfCase::TcpCrr, Mode::Baseline, 9);
        let taichi = run(NetperfCase::TcpCrr, Mode::TaiChi, 9);
        let vdp = run(NetperfCase::TcpCrr, Mode::TaiChiVdp, 9);
        let t2 = run(NetperfCase::TcpCrr, Mode::Type2, 9);
        assert!(base.cps > 0.0);
        let loss = |x: &NetperfResult| (base.cps - x.cps) / base.cps;
        assert!(loss(&taichi) < 0.03, "taichi loss {:.3}", loss(&taichi));
        assert!(
            (0.04..0.15).contains(&loss(&vdp)),
            "vdp loss {:.3}",
            loss(&vdp)
        );
        assert!(
            (0.15..0.35).contains(&loss(&t2)),
            "type2 loss {:.3}",
            loss(&t2)
        );
    }

    #[test]
    fn closed_loop_cases_report_pps() {
        for case in [
            NetperfCase::UdpStream,
            NetperfCase::TcpStream,
            NetperfCase::TcpRr,
        ] {
            let r = run(case, Mode::Baseline, 3);
            assert!(r.avg_rx_pps > 0.0, "{case:?}");
            assert_eq!(r.avg_rx_pps, r.avg_tx_pps);
            assert_eq!(r.cps, 0.0);
        }
    }

    #[test]
    fn taichi_overhead_small_on_closed_loop() {
        let base = run(NetperfCase::TcpRr, Mode::Baseline, 4);
        let taichi = run(NetperfCase::TcpRr, Mode::TaiChi, 4);
        let overhead = (base.avg_rx_pps - taichi.avg_rx_pps) / base.avg_rx_pps;
        assert!(
            overhead.abs() < 0.05,
            "tcp_rr overhead {:.3} out of band",
            overhead
        );
    }

    #[test]
    fn udp_stream_reports_bandwidth() {
        let r = run(NetperfCase::UdpStream, Mode::Baseline, 6);
        assert!(r.avg_rx_bw_gbps > 0.1, "bw {}", r.avg_rx_bw_gbps);
        // Consistency: bw = pps × size × 8.
        let want = r.avg_rx_pps * 1400.0 * 8.0 / 1e9;
        assert!((r.avg_rx_bw_gbps - want).abs() < 1e-9);
    }
}
