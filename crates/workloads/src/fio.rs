//! fio `fio_rw` analogue (Table 3): 16 jobs, 4 KiB blocks, libaio.
//!
//! fio with deep libaio queues saturates the storage data plane, so
//! IOPS is capacity-bound: we offer ~120 % of the baseline capacity as
//! open-loop storage requests and report the *achieved* operation rate
//! — the quantity that differs across modes (type-2 loses an
//! emulation CPU plus interference, Tai Chi-vDP pays the guest tax,
//! Tai Chi pays only cache pollution).

use crate::runner::{measure, BenchTraffic, MeasuredDp};
use taichi_core::machine::Mode;
use taichi_sim::SimDuration;

/// fio case configuration.
#[derive(Clone, Debug)]
pub struct FioRw {
    /// Block size (paper: 4 KiB).
    pub block_bytes: u32,
    /// Offered load as a multiple of baseline capacity.
    pub offered: f64,
    /// Measurement window.
    pub window: SimDuration,
}

impl Default for FioRw {
    fn default() -> Self {
        FioRw {
            block_bytes: 4096,
            offered: 1.2,
            window: SimDuration::from_millis(300),
        }
    }
}

/// fio results.
#[derive(Clone, Debug)]
pub struct FioResult {
    /// Achieved I/O operations per second.
    pub iops: f64,
    /// Achieved bandwidth in MiB/s.
    pub bw_mib_s: f64,
    /// p99 completion latency in microseconds.
    pub p99_lat_us: f64,
    /// Raw measurement.
    pub raw: MeasuredDp,
}

impl FioRw {
    /// Runs the case under `mode`.
    pub fn run(&self, mode: Mode, seed: u64) -> FioResult {
        let traffic = BenchTraffic::storage(self.block_bytes as f64, self.offered, false);
        let raw = measure(mode, &traffic, self.window, seed);
        FioResult {
            iops: raw.pps,
            bw_mib_s: raw.pps * self.block_bytes as f64 / (1024.0 * 1024.0),
            p99_lat_us: raw.lat_p99_ns as f64 / 1e3,
            raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fio_shape_across_modes() {
        let fio = FioRw {
            window: SimDuration::from_millis(120),
            ..FioRw::default()
        };
        let base = fio.run(Mode::Baseline, 5);
        let taichi = fio.run(Mode::TaiChi, 5);
        let vdp = fio.run(Mode::TaiChiVdp, 5);
        let t2 = fio.run(Mode::Type2, 5);
        // Tai Chi within ~2 % of baseline.
        let d_taichi = (base.iops - taichi.iops) / base.iops;
        assert!(d_taichi < 0.03, "taichi IOPS loss {:.3}", d_taichi);
        // vDP loses ~5-12 %.
        let d_vdp = (base.iops - vdp.iops) / base.iops;
        assert!((0.04..0.15).contains(&d_vdp), "vdp IOPS loss {:.3}", d_vdp);
        // Type-2 loses ~18-30 %.
        let d_t2 = (base.iops - t2.iops) / base.iops;
        assert!((0.15..0.35).contains(&d_t2), "type2 IOPS loss {:.3}", d_t2);
        // Ordering: baseline ≥ taichi > vdp > type2.
        assert!(taichi.iops > vdp.iops && vdp.iops > t2.iops);
        // Bandwidth consistent with IOPS.
        assert!((base.bw_mib_s - base.iops * 4096.0 / 1048576.0).abs() < 1.0);
    }
}
