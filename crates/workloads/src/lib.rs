//! Benchmark workload analogues (Table 3 + §6.5 real workloads).
//!
//! Each module reproduces one benchmark from the paper's evaluation,
//! producing the same named metrics the paper's figures/tables report:
//!
//! | Module | Paper benchmark | Metrics |
//! |--------|-----------------|---------|
//! | [`fio`] | fio `fio_rw` (16 jobs, 4 KiB, libaio) | IOPS, bandwidth |
//! | [`netperf`] | netperf `udp_stream`/`tcp_stream`/`tcp_rr`/`tcp_crr` | avg_rx_bw, avg_rx_pps, avg_tx_pps, CPS |
//! | [`sockperf`] | sockperf `tcp`/`udp` | CPS, pps, udp avg/p99/p999 latency |
//! | [`ping`] | ping (30 min RTT) | min/avg/max/mdev |
//! | [`mysql`] | MySQL + 192 sysbench threads | max_query, avg_query, max_trans, avg_trans |
//! | [`nginx`] | Nginx + wrk, 10 k connections | HTTP/HTTPS requests/s |
//!
//! The shared [`runner`] drives a [`taichi_core::Machine`] per mode
//! with representative traffic plus background control-plane activity
//! (so Tai Chi's yield/preempt machinery is actually exercised during
//! every data-plane measurement), then extracts the per-packet latency
//! distribution and throughput that each benchmark's closed-loop or
//! saturation model consumes. Host-side components (MySQL query
//! compute, Nginx request handling, TCP stack turnarounds) are
//! explicit analytic models documented in each module — the SmartNIC
//! side is simulated, the host side is arithmetic on measured
//! SmartNIC latencies, matching the substitution policy in DESIGN.md.

pub mod fio;
pub mod mysql;
pub mod netperf;
pub mod nginx;
pub mod ping;
pub mod runner;
pub mod sockperf;

pub use runner::{
    measure, measure_cfg, measure_modes, measure_probed, measure_sweep, BenchTraffic, MeasuredDp,
};
