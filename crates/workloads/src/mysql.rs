//! MySQL + sysbench analogue (Fig. 15).
//!
//! The paper drives a MySQL server in the guest VM with 192 sysbench
//! threads and reports max/avg query and transaction throughput. The
//! host side (query execution on the 96-core EPYC) is outside the
//! SmartNIC; we model it as a fixed per-query compute time, while every
//! query's network round trip and storage accesses traverse the
//! simulated SmartNIC data plane:
//!
//! ```text
//! query_latency = HOST_QUERY_US
//!               + NET_RTS_PER_QUERY × 2 × one-way-net-latency
//!               + STORAGE_OPS_PER_QUERY × storage-latency
//! QPS           = THREADS / query_latency
//! ```
//!
//! "max" throughput uses the fast end of the measured latency
//! distribution (p50), "avg" uses the mean — mirroring how sysbench's
//! per-second maximum comes from the windows where the I/O path is at
//! its quickest.

use crate::runner::{measure, BenchTraffic, MeasuredDp};
use taichi_core::machine::Mode;
use taichi_sim::SimDuration;

/// sysbench thread count (paper: 192).
pub const THREADS: f64 = 192.0;
/// Host-side compute per query (µs).
pub const HOST_QUERY_US: f64 = 55.0;
/// Network round trips per query (client↔server).
pub const NET_RTS_PER_QUERY: f64 = 2.0;
/// Storage operations per query (buffer-pool misses + redo writes).
pub const STORAGE_OPS_PER_QUERY: f64 = 1.0;
/// Queries per transaction (sysbench oltp default mix).
pub const QUERIES_PER_TRANS: f64 = 20.0;

/// MySQL results.
#[derive(Clone, Debug)]
pub struct MysqlResult {
    /// Peak queries/second.
    pub max_query: f64,
    /// Average queries/second.
    pub avg_query: f64,
    /// Peak transactions/second.
    pub max_trans: f64,
    /// Average transactions/second.
    pub avg_trans: f64,
    /// Raw network measurement.
    pub raw_net: MeasuredDp,
    /// Raw storage measurement.
    pub raw_storage: MeasuredDp,
}

/// Runs the MySQL case under `mode`.
pub fn run(mode: Mode, seed: u64) -> MysqlResult {
    let window = SimDuration::from_millis(250);
    let net = measure(mode, &BenchTraffic::net(512.0, 0.35, true), window, seed);
    let storage = measure(
        mode,
        &BenchTraffic::storage(4096.0, 0.30, true),
        window,
        seed ^ 0x5707A6E,
    );
    let lat_us = |net_ns: f64, st_ns: f64| {
        HOST_QUERY_US + NET_RTS_PER_QUERY * 2.0 * net_ns / 1e3 + STORAGE_OPS_PER_QUERY * st_ns / 1e3
    };
    let avg_lat = lat_us(net.lat_mean_ns, storage.lat_mean_ns);
    let fast_lat = lat_us(net.lat_p50_ns as f64, storage.lat_p50_ns as f64);
    let avg_query = THREADS / (avg_lat * 1e-6);
    let max_query = THREADS / (fast_lat * 1e-6);
    MysqlResult {
        max_query,
        avg_query,
        max_trans: max_query / QUERIES_PER_TRANS,
        avg_trans: avg_query / QUERIES_PER_TRANS,
        raw_net: net,
        raw_storage: storage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_relationships_hold() {
        let r = run(Mode::Baseline, 8);
        assert!(r.max_query >= r.avg_query);
        assert!((r.avg_trans - r.avg_query / QUERIES_PER_TRANS).abs() < 1e-9);
        assert!(r.avg_query > 100_000.0, "avg qps {}", r.avg_query);
    }

    #[test]
    fn taichi_overhead_in_paper_band() {
        let base = run(Mode::Baseline, 8);
        let taichi = run(Mode::TaiChi, 8);
        let overhead = (base.avg_query - taichi.avg_query) / base.avg_query;
        // Paper: 1.56 % average overhead; accept a 0–5 % band.
        assert!(
            (-0.01..0.05).contains(&overhead),
            "MySQL overhead {:.4}",
            overhead
        );
    }
}
