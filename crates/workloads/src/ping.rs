//! ping RTT analogue (Table 5).
//!
//! The paper pings through the SmartNIC for 30 minutes and reports
//! min/avg/max/mdev RTT under three configurations: baseline, Tai Chi,
//! and Tai Chi without the hardware workload probe. An echo round trip
//! traverses the SmartNIC data plane twice (request in, reply out), so
//! RTT = `BASE_NET_US` (host stacks + wire) + 2 × one-way SmartNIC
//! latency. The one-way distribution is measured per packet from the
//! simulation under representative background traffic and CP churn;
//! the probe-less configuration shows the slice-length tail spikes the
//! paper's Table 5 quantifies (max +203 %).

use crate::runner::{measure_probed, BenchTraffic, MeasuredDp};
use taichi_core::machine::Mode;
use taichi_sim::SimDuration;

/// Host network stacks + wire component of the RTT (µs), chosen so the
/// baseline lands near the paper's 26–38 µs band.
pub const BASE_NET_US: f64 = 17.0;

/// ping RTT statistics (µs), matching the `ping` tool's summary line.
#[derive(Clone, Debug)]
pub struct PingResult {
    /// Minimum RTT.
    pub min_us: f64,
    /// Average RTT.
    pub avg_us: f64,
    /// Maximum RTT.
    pub max_us: f64,
    /// Mean deviation.
    pub mdev_us: f64,
    /// Raw measurement.
    pub raw: MeasuredDp,
}

/// Runs the ping case under `mode`.
pub fn run(mode: Mode, seed: u64) -> PingResult {
    // Production-steady bursts: ~40 % within-burst utilization (calm
    // enough that queueing stays in the single-digit microseconds, as
    // the paper's tight baseline RTT spread of 26-38 us implies) with
    // short idle gaps (~70 us) — so vCPU grants happen continuously
    // but their slices stay near the 50 us initial value. The ping
    // echoes themselves are a sparse probe stream sampling the data
    // path uniformly in time (one echo every ~200 us on average).
    let traffic = BenchTraffic::net(512.0, 0.3, true).with_burst_intensity(0.45);
    let (_bg, raw) = measure_probed(mode, &traffic, 200.0, SimDuration::from_millis(400), seed);
    let one_way = |ns: f64| ns / 1e3;
    PingResult {
        min_us: BASE_NET_US + 2.0 * one_way(raw.lat_min_ns as f64),
        avg_us: BASE_NET_US + 2.0 * one_way(raw.lat_mean_ns),
        max_us: BASE_NET_US + 2.0 * one_way(raw.lat_max_ns as f64),
        mdev_us: 2.0 * one_way(raw.lat_stddev_ns),
        raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rtt_in_paper_band() {
        let r = run(Mode::Baseline, 5);
        assert!(
            (20.0..35.0).contains(&r.min_us),
            "min RTT {:.1} µs",
            r.min_us
        );
        assert!(r.avg_us >= r.min_us && r.max_us >= r.avg_us);
    }

    #[test]
    fn table5_shape() {
        let base = run(Mode::Baseline, 5);
        let taichi = run(Mode::TaiChi, 5);
        let noprobe = run(Mode::TaiChiNoHwProbe, 5);
        // Tai Chi ≈ baseline on avg (within a few percent).
        let avg_over = (taichi.avg_us - base.avg_us) / base.avg_us;
        assert!(avg_over < 0.08, "taichi avg overhead {:.3}", avg_over);
        // Without the probe: pronounced max-RTT spikes (paper: +203 %).
        assert!(
            noprobe.max_us > base.max_us * 1.8,
            "no-probe max {:.1} vs base {:.1}",
            noprobe.max_us,
            base.max_us
        );
        // And a visibly worse average (paper: +23 %).
        assert!(
            noprobe.avg_us > taichi.avg_us * 1.03,
            "no-probe avg {:.1} vs taichi {:.1}",
            noprobe.avg_us,
            taichi.avg_us
        );
    }
}
