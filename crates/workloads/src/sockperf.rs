//! sockperf analogues (Table 3): `tcp` short connections and `udp`
//! latency percentiles.
//!
//! - `tcp`: 1 024 concurrent short connections — CPS plus rx/tx pps,
//!   closed-loop over the measured SmartNIC latency (like netperf's
//!   request/response cases, but each transaction opens and closes a
//!   connection, costing more packets and an extra round trip).
//! - `udp`: average/p99/p999 one-way-derived latency over a 300 s
//!   window in the paper; here the same percentiles of the measured
//!   distribution plus the documented peer-side constant.

use crate::runner::{measure, measure_probed, BenchTraffic, MeasuredDp};
use taichi_core::machine::Mode;
use taichi_sim::SimDuration;

/// Peer-side + wire one-way component (µs) added to SmartNIC latency.
pub const BASE_ONEWAY_US: f64 = 11.0;

/// Packets per sockperf-tcp short-connection transaction.
pub const TCP_SHORT_PKTS: f64 = 8.0;

/// sockperf tcp results.
#[derive(Clone, Debug)]
pub struct SockperfTcpResult {
    /// Connections per second.
    pub cps: f64,
    /// Average rx packets per second.
    pub avg_rx_pps: f64,
    /// Average tx packets per second.
    pub avg_tx_pps: f64,
    /// Raw measurement.
    pub raw: MeasuredDp,
}

/// sockperf udp latency results (µs).
#[derive(Clone, Debug)]
pub struct SockperfUdpResult {
    /// Mean latency.
    pub avg_lat_us: f64,
    /// 99th percentile latency.
    pub p99_lat_us: f64,
    /// 99.9th percentile latency.
    pub p999_lat_us: f64,
    /// Raw measurement.
    pub raw: MeasuredDp,
}

/// Runs the sockperf `tcp` case (1 024 short connections).
pub fn run_tcp(mode: Mode, seed: u64) -> SockperfTcpResult {
    let traffic = BenchTraffic::net(128.0, 0.4, true);
    let raw = measure(mode, &traffic, SimDuration::from_millis(250), seed);
    // Each short connection: two round trips (handshake, then
    // request/response+close overlap).
    let rtt_us = 2.0 * BASE_ONEWAY_US + 2.0 * raw.lat_mean_ns / 1e3;
    let cps = 1024.0 / (2.0 * rtt_us * 1e-6);
    SockperfTcpResult {
        cps,
        avg_rx_pps: cps * TCP_SHORT_PKTS / 2.0,
        avg_tx_pps: cps * TCP_SHORT_PKTS / 2.0,
        raw,
    }
}

/// Runs the sockperf `udp` latency case.
pub fn run_udp(mode: Mode, seed: u64) -> SockperfUdpResult {
    // sockperf's latency mode sends paced probe messages over the
    // background load and reports their percentiles.
    let traffic = BenchTraffic::net(512.0, 0.3, true).with_burst_intensity(0.5);
    let (_bg, raw) = measure_probed(mode, &traffic, 50.0, SimDuration::from_millis(600), seed);
    SockperfUdpResult {
        avg_lat_us: BASE_ONEWAY_US + raw.lat_mean_ns / 1e3,
        p99_lat_us: BASE_ONEWAY_US + raw.lat_p99_ns as f64 / 1e3,
        p999_lat_us: BASE_ONEWAY_US + raw.lat_p999_ns as f64 / 1e3,
        raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_percentiles_ordered() {
        let r = run_udp(Mode::Baseline, 2);
        assert!(r.avg_lat_us >= BASE_ONEWAY_US);
        assert!(r.avg_lat_us <= r.p99_lat_us);
        assert!(r.p99_lat_us <= r.p999_lat_us);
    }

    #[test]
    fn udp_taichi_tail_close_to_baseline() {
        let base = run_udp(Mode::Baseline, 3);
        let taichi = run_udp(Mode::TaiChi, 3);
        let d999 = (taichi.p999_lat_us - base.p999_lat_us) / base.p999_lat_us;
        assert!(d999 < 0.30, "p999 overhead {:.3}", d999);
        let davg = (taichi.avg_lat_us - base.avg_lat_us) / base.avg_lat_us;
        assert!(davg < 0.05, "avg overhead {:.3}", davg);
    }

    #[test]
    fn tcp_reports_cps_and_pps() {
        let r = run_tcp(Mode::Baseline, 4);
        assert!(r.cps > 1000.0, "cps {}", r.cps);
        assert_eq!(r.avg_rx_pps, r.avg_tx_pps);
        assert!(r.avg_rx_pps > r.cps, "pps should exceed cps");
    }
}
