//! The traditional type-2 (QEMU+KVM) deployment model.
//!
//! §3.4 and §6.3 of the paper evaluate isolating CP tasks in a separate
//! guest OS. Three structural penalties follow, all modelled here:
//!
//! 1. **A dedicated emulation CPU.** QEMU device emulation plus the
//!    guest OS housekeeping permanently occupy at least one physical
//!    CPU, which on an 8-DP-CPU SmartNIC removes 1/8 of data-plane
//!    capacity (the paper measures ~25 % DP degradation once queueing
//!    amplification is included).
//! 2. **Broken native IPC.** DP and CP live in different operating
//!    systems, so every shared-memory/signal/pipe interaction becomes
//!    an RPC across the virtualization boundary.
//! 3. **vCPU switch latency.** The same 2 µs world-switch cost applies
//!    whenever a guest vCPU yields a physical core.

use crate::cost::VirtCosts;
use taichi_sim::SimDuration;

/// Configuration of the type-2 baseline.
#[derive(Clone, Debug)]
pub struct Type2Model {
    /// Virtualization timing constants.
    pub costs: VirtCosts,
    /// Physical CPUs consumed by QEMU emulation + guest housekeeping.
    pub emulation_cpus: u32,
    /// Per-message penalty replacing one native IPC with an RPC across
    /// the guest boundary (marshalling + vmexit + host dispatch).
    pub ipc_to_rpc_penalty: SimDuration,
    /// Guest OS memory/context overhead expressed as an additional
    /// multiplicative tax on CP execution inside the guest.
    pub guest_cp_tax: f64,
    /// Multiplicative tax on data-plane packet processing from the
    /// co-resident emulation CPU's cache/memory-bandwidth interference
    /// (the paper's 25.7% IOPS loss exceeds the 12.5% pure-capacity
    /// loss of one CPU in eight; the remainder is interference).
    pub dp_interference_tax: f64,
}

impl Default for Type2Model {
    fn default() -> Self {
        Type2Model {
            costs: VirtCosts::default(),
            emulation_cpus: 1,
            ipc_to_rpc_penalty: SimDuration::from_micros(15),
            guest_cp_tax: 1.05,
            dp_interference_tax: 1.15,
        }
    }
}

impl Type2Model {
    /// Data-plane CPUs remaining after the emulation CPU is carved out
    /// of the `dp_total` pool (the paper's deployments take it from the
    /// data plane, since CP CPUs are already the scarce resource).
    pub fn effective_dp_cpus(&self, dp_total: u32) -> u32 {
        dp_total.saturating_sub(self.emulation_cpus)
    }

    /// Cost of one DP↔CP interaction under this model (native IPC cost
    /// plus the RPC penalty).
    pub fn ipc_cost(&self, native: SimDuration) -> SimDuration {
        native + self.ipc_to_rpc_penalty
    }

    /// CP execution time inside the guest for a native duration.
    pub fn guest_cp_time(&self, native: SimDuration) -> SimDuration {
        let taxed = native.as_nanos() as f64 * self.guest_cp_tax * self.costs.guest_exec_tax;
        SimDuration::from_nanos(taxed.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulation_cpu_reduces_dp_pool() {
        let m = Type2Model::default();
        assert_eq!(m.effective_dp_cpus(8), 7);
        assert_eq!(m.effective_dp_cpus(1), 0);
        assert_eq!(m.effective_dp_cpus(0), 0);
    }

    #[test]
    fn rpc_penalty_dominates_fast_ipc() {
        let m = Type2Model::default();
        let native = SimDuration::from_nanos(500);
        let rpc = m.ipc_cost(native);
        assert!(rpc >= SimDuration::from_micros(15));
        assert!(rpc.as_nanos() > native.as_nanos() * 10);
    }

    #[test]
    fn guest_cp_time_compounds_taxes() {
        let m = Type2Model::default();
        let native = SimDuration::from_micros(100);
        let guest = m.guest_cp_time(native);
        // 100 µs * 1.05 * 1.07 = 112.35 µs.
        assert_eq!(guest.as_nanos(), 112_350);
    }
}
