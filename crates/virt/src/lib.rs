//! Virtualization substrate: vCPU contexts and cost models.
//!
//! Hardware-assisted virtualization (Intel VT-x / ARM EL2) gives Tai Chi
//! its core primitive: a *preemptible execution context* that an
//! external event can stop at any instant (VM-exit), even in the middle
//! of a guest kernel's non-preemptible routine. This crate models:
//!
//! - [`vcpu`]: the vCPU context state machine — placement on a physical
//!   CPU, VM-enter, VM-exit with typed reasons, and per-vCPU statistics
//!   (run time, exit counts by reason) that the adaptive algorithms in
//!   `taichi-core` key off.
//! - [`cost`]: the virtualization cost model. Defaults follow the
//!   paper: a 2 µs vCPU context-switch latency (§3.4), a ~7 % guest
//!   execution tax from nested page tables (§6.3's Tai Chi-vDP result),
//!   and cheap posted-interrupt injection (§5).
//! - [`type2`]: the traditional type-2 (QEMU+KVM) deployment model used
//!   as an evaluation baseline — a separate guest OS that permanently
//!   consumes a physical CPU for device emulation and breaks native
//!   DP↔CP IPC (every IPC becomes an RPC across the OS boundary).

pub mod cost;
pub mod type2;
pub mod vcpu;

pub use cost::VirtCosts;
pub use type2::Type2Model;
pub use vcpu::{Vcpu, VcpuState, VmExitReason};
