//! vCPU context state machine.
//!
//! A [`Vcpu`] is one guest CPU context managed by Tai Chi's vCPU
//! scheduler. Its lifecycle (Fig. 7b):
//!
//! ```text
//!   Descheduled --place()--> Entering --enter_complete()--> Running
//!        ^                                                    |
//!        +---------------- exit_complete() <---- begin_exit(reason)
//! ```
//!
//! While `Running` the vCPU occupies one physical CPU; the kernel CPU
//! it backs (its registered [`CpuId`]) is resumed for exactly that
//! span. Exit reasons are recorded per vCPU because the adaptive time
//! slice (§4.1) and the adaptive yield threshold (§4.3) both branch on
//! *why* the last VM-exit happened.

use crate::cost::VirtCosts;
use taichi_hw::CpuId;
use taichi_sim::{SimDuration, SimTime};

/// Why a vCPU exited guest mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VmExitReason {
    /// The vCPU's time slice expired (DP CPU still idle — the
    /// "sustained idleness" signal).
    SliceExpired,
    /// The hardware workload probe raised an IRQ: a DP packet is
    /// arriving for the host CPU (the "false-positive yield" signal).
    HwProbe,
    /// The guest sent an IPI, which must be re-issued by the host
    /// (unified IPI orchestrator, source-vCPU phase).
    IpiSend,
    /// The guest CPU went idle (HLT): nothing left to run.
    GuestHalt,
    /// Forced preemption by the vCPU scheduler (e.g. reclaiming the
    /// core for a higher-priority placement).
    Forced,
}

/// Scheduling state of a vCPU context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcpuState {
    /// Not placed on any physical CPU.
    Descheduled,
    /// VM-enter in progress on `host`.
    Entering {
        /// The physical CPU being entered on.
        host: CpuId,
    },
    /// Executing on `host`; the grant expires at `slice_end`.
    Running {
        /// The physical CPU it runs on.
        host: CpuId,
        /// When this grant's time slice expires.
        slice_end: SimTime,
    },
    /// VM-exit in progress from `host`.
    Exiting {
        /// The physical CPU being vacated.
        host: CpuId,
        /// Why the exit was initiated.
        reason: VmExitReason,
    },
}

/// Per-exit-reason counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExitCounts {
    /// Slice-expiry exits.
    pub slice_expired: u64,
    /// Hardware-probe exits.
    pub hw_probe: u64,
    /// IPI-send exits.
    pub ipi_send: u64,
    /// Guest-halt exits.
    pub guest_halt: u64,
    /// Forced exits.
    pub forced: u64,
}

impl ExitCounts {
    fn bump(&mut self, reason: VmExitReason) {
        match reason {
            VmExitReason::SliceExpired => self.slice_expired += 1,
            VmExitReason::HwProbe => self.hw_probe += 1,
            VmExitReason::IpiSend => self.ipi_send += 1,
            VmExitReason::GuestHalt => self.guest_halt += 1,
            VmExitReason::Forced => self.forced += 1,
        }
    }

    /// Total exits of any reason.
    pub fn total(&self) -> u64 {
        self.slice_expired + self.hw_probe + self.ipi_send + self.guest_halt + self.forced
    }
}

/// One vCPU context.
#[derive(Clone, Debug)]
pub struct Vcpu {
    /// The kernel CPU ID this vCPU is registered as.
    pub id: CpuId,
    state: VcpuState,
    entries: u64,
    exits: ExitCounts,
    run_time: SimDuration,
    run_started: Option<SimTime>,
    last_exit_reason: Option<VmExitReason>,
}

impl Vcpu {
    /// Creates a descheduled vCPU registered as kernel CPU `id`.
    pub fn new(id: CpuId) -> Self {
        Vcpu {
            id,
            state: VcpuState::Descheduled,
            entries: 0,
            exits: ExitCounts::default(),
            run_time: SimDuration::ZERO,
            run_started: None,
            last_exit_reason: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> VcpuState {
        self.state
    }

    /// True when not placed anywhere.
    pub fn is_descheduled(&self) -> bool {
        self.state == VcpuState::Descheduled
    }

    /// True when running (or mid-transition) on some host CPU.
    pub fn host(&self) -> Option<CpuId> {
        match self.state {
            VcpuState::Descheduled => None,
            VcpuState::Entering { host }
            | VcpuState::Running { host, .. }
            | VcpuState::Exiting { host, .. } => Some(host),
        }
    }

    /// Begins placement on `host`; VM-enter completes after
    /// [`VirtCosts::vm_enter`].
    ///
    /// # Panics
    ///
    /// Panics unless the vCPU is descheduled — double placement is a
    /// scheduler bug.
    pub fn place(&mut self, host: CpuId, _now: SimTime) {
        assert!(
            self.is_descheduled(),
            "vCPU {:?} placed while {:?}",
            self.id,
            self.state
        );
        self.state = VcpuState::Entering { host };
    }

    /// Aborts a placement whose VM-enter never started (the context-
    /// switch softirq was lost to fault injection): `Entering` →
    /// `Descheduled` without counting an entry or an exit.
    ///
    /// # Panics
    ///
    /// Panics unless the vCPU is `Entering` — aborting a running or
    /// exiting vCPU is a scheduler bug.
    pub fn abort_place(&mut self, _now: SimTime) {
        match self.state {
            VcpuState::Entering { .. } => self.state = VcpuState::Descheduled,
            ref s => panic!("abort_place in state {s:?}"),
        }
    }

    /// VM-enter finished; the guest executes until `slice_end` unless
    /// exited earlier.
    pub fn enter_complete(&mut self, now: SimTime, slice_end: SimTime) {
        let host = match self.state {
            VcpuState::Entering { host } => host,
            ref s => panic!("enter_complete in state {s:?}"),
        };
        self.state = VcpuState::Running { host, slice_end };
        self.entries += 1;
        self.run_started = Some(now);
    }

    /// Initiates a VM-exit for `reason`; completes after
    /// [`VirtCosts::vm_exit`].
    pub fn begin_exit(&mut self, reason: VmExitReason, now: SimTime) {
        let host = match self.state {
            VcpuState::Running { host, .. } => host,
            ref s => panic!("begin_exit in state {s:?}"),
        };
        if let Some(start) = self.run_started.take() {
            self.run_time += now.saturating_since(start);
        }
        self.state = VcpuState::Exiting { host, reason };
    }

    /// VM-exit finished; the vCPU is descheduled again.
    pub fn exit_complete(&mut self, _now: SimTime) -> VmExitReason {
        let reason = match self.state {
            VcpuState::Exiting { reason, .. } => reason,
            ref s => panic!("exit_complete in state {s:?}"),
        };
        self.exits.bump(reason);
        self.last_exit_reason = Some(reason);
        self.state = VcpuState::Descheduled;
        reason
    }

    /// Convenience: full switch timing for a placement at `now` with a
    /// slice of `slice`, under `costs`. Returns `(guest_start,
    /// slice_end)`.
    pub fn grant_window(costs: &VirtCosts, now: SimTime, slice: SimDuration) -> (SimTime, SimTime) {
        let start = now + costs.vm_enter;
        (start, start + slice)
    }

    /// Total VM-entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Exit counters.
    pub fn exits(&self) -> ExitCounts {
        self.exits
    }

    /// Total guest run time.
    pub fn run_time(&self) -> SimDuration {
        self.run_time
    }

    /// Reason for the most recent completed exit.
    pub fn last_exit_reason(&self) -> Option<VmExitReason> {
        self.last_exit_reason
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_roundtrip() {
        let mut v = Vcpu::new(CpuId(12));
        assert!(v.is_descheduled());
        v.place(CpuId(3), SimTime::ZERO);
        assert_eq!(v.host(), Some(CpuId(3)));
        v.enter_complete(SimTime::from_micros(1), SimTime::from_micros(51));
        assert!(matches!(v.state(), VcpuState::Running { .. }));
        v.begin_exit(VmExitReason::SliceExpired, SimTime::from_micros(51));
        let r = v.exit_complete(SimTime::from_micros(52));
        assert_eq!(r, VmExitReason::SliceExpired);
        assert!(v.is_descheduled());
        assert_eq!(v.entries(), 1);
        assert_eq!(v.exits().slice_expired, 1);
        assert_eq!(v.exits().total(), 1);
        assert_eq!(v.run_time(), SimDuration::from_micros(50));
        assert_eq!(v.last_exit_reason(), Some(VmExitReason::SliceExpired));
    }

    #[test]
    fn run_time_accumulates_over_grants() {
        let mut v = Vcpu::new(CpuId(12));
        for i in 0..3u64 {
            let t0 = SimTime::from_micros(i * 100);
            v.place(CpuId(0), t0);
            v.enter_complete(
                t0 + SimDuration::from_micros(1),
                t0 + SimDuration::from_micros(51),
            );
            v.begin_exit(VmExitReason::HwProbe, t0 + SimDuration::from_micros(21));
            v.exit_complete(t0 + SimDuration::from_micros(22));
        }
        assert_eq!(v.run_time(), SimDuration::from_micros(60));
        assert_eq!(v.exits().hw_probe, 3);
    }

    #[test]
    #[should_panic(expected = "placed while")]
    fn double_place_panics() {
        let mut v = Vcpu::new(CpuId(12));
        v.place(CpuId(0), SimTime::ZERO);
        v.place(CpuId(1), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "begin_exit in state")]
    fn exit_without_running_panics() {
        let mut v = Vcpu::new(CpuId(12));
        v.begin_exit(VmExitReason::Forced, SimTime::ZERO);
    }

    #[test]
    fn grant_window_accounts_for_enter_cost() {
        let costs = VirtCosts::default();
        let (start, end) = Vcpu::grant_window(
            &costs,
            SimTime::from_micros(10),
            SimDuration::from_micros(50),
        );
        assert_eq!(start.as_nanos(), 10_000 + 800);
        assert_eq!(end.as_nanos(), 10_800 + 50_000);
    }

    #[test]
    fn exit_counts_by_reason() {
        let mut c = ExitCounts::default();
        c.bump(VmExitReason::IpiSend);
        c.bump(VmExitReason::GuestHalt);
        c.bump(VmExitReason::Forced);
        c.bump(VmExitReason::Forced);
        assert_eq!(c.ipi_send, 1);
        assert_eq!(c.guest_halt, 1);
        assert_eq!(c.forced, 2);
        assert_eq!(c.total(), 4);
    }
}
