//! Virtualization cost model.
//!
//! All constants are configurable; the defaults reproduce the paper's
//! published numbers:
//!
//! - §3.4: "a 2 µs scheduling latency during vCPU context switching" —
//!   split here into VM-enter and VM-exit halves.
//! - §6.3: running the data plane inside vCPUs costs ~6–8 % (VM-exits +
//!   nested page table walks) — modelled as a multiplicative guest
//!   execution tax.
//! - §5: posted interrupts inject interrupts into a *running* vCPU
//!   without a VM-exit, at sub-microsecond cost.

use taichi_sim::SimDuration;

/// Timing constants for virtualization operations.
#[derive(Clone, Debug)]
pub struct VirtCosts {
    /// World switch into the guest (VM-enter).
    pub vm_enter: SimDuration,
    /// World switch out of the guest (VM-exit), including state save.
    pub vm_exit: SimDuration,
    /// Multiplicative slowdown of guest-mode execution (nested page
    /// tables, TLB pressure). 1.0 = native; 1.07 ≈ the paper's 7 %.
    pub guest_exec_tax: f64,
    /// Injecting an interrupt into a running vCPU via posted
    /// interrupts (no VM-exit).
    pub posted_interrupt: SimDuration,
    /// Injecting an interrupt into a non-running vCPU (requires wake +
    /// VM-enter; this is only the injection bookkeeping).
    pub injected_interrupt: SimDuration,
}

impl Default for VirtCosts {
    fn default() -> Self {
        VirtCosts {
            vm_enter: SimDuration::from_nanos(800),
            vm_exit: SimDuration::from_nanos(1_200),
            guest_exec_tax: 1.07,
            posted_interrupt: SimDuration::from_nanos(150),
            injected_interrupt: SimDuration::from_nanos(400),
        }
    }
}

impl VirtCosts {
    /// The full vCPU context-switch latency (exit + enter): the 2 µs
    /// the paper's hardware probe hides inside the 3.2 µs I/O window.
    pub fn switch_latency(&self) -> SimDuration {
        self.vm_exit + self.vm_enter
    }

    /// Scales a native execution duration by the guest tax.
    pub fn guest_time(&self, native: SimDuration) -> SimDuration {
        SimDuration::from_nanos((native.as_nanos() as f64 * self.guest_exec_tax).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_switch_is_2us() {
        let c = VirtCosts::default();
        assert_eq!(c.switch_latency(), SimDuration::from_micros(2));
    }

    #[test]
    fn guest_tax_scales_execution() {
        let c = VirtCosts::default();
        let native = SimDuration::from_micros(100);
        let guest = c.guest_time(native);
        assert_eq!(guest.as_nanos(), 107_000);
    }

    #[test]
    fn unit_tax_is_identity() {
        let c = VirtCosts {
            guest_exec_tax: 1.0,
            ..VirtCosts::default()
        };
        let d = SimDuration::from_nanos(12_345);
        assert_eq!(c.guest_time(d), d);
    }

    #[test]
    fn posted_cheaper_than_switch() {
        let c = VirtCosts::default();
        assert!(c.posted_interrupt < c.switch_latency());
        assert!(c.injected_interrupt < c.switch_latency());
    }
}
