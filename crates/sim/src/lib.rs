//! Deterministic discrete-event simulation substrate for the Tai Chi
//! reproduction.
//!
//! This crate provides the building blocks every other crate in the
//! workspace rests on:
//!
//! - [`time`]: a nanosecond-resolution virtual clock ([`SimTime`],
//!   [`SimDuration`]).
//! - [`event`]: a deterministic event queue with FIFO tie-breaking and
//!   cancellation tokens, backed by a hierarchical timing wheel (or a
//!   binary heap, selectable via `TAICHI_QUEUE`).
//! - [`inline_vec`]: an allocation-free small vector for hot-path
//!   scratch storage.
//! - [`alloc`]: a counting global-allocator wrapper backing the
//!   zero-allocations-per-event assertion.
//! - [`rng`]: a seedable, forkable pseudo-random number generator
//!   (SplitMix64-seeded xoshiro256**) so simulation runs are
//!   bit-reproducible across machines and Rust versions.
//! - [`dist`]: probability distributions (exponential, log-normal,
//!   Pareto, empirical, ...) used to model workloads and routine
//!   durations.
//! - [`hist`]: an HDR-style log-linear histogram for latency recording
//!   with percentile and CDF extraction.
//! - [`stats`]: online summary statistics, counters, and time-weighted
//!   utilization meters.
//! - [`fault`]: a seeded, deterministic fault-injection plan the
//!   hardware and OS layers consult, decorrelated from workload
//!   randomness.
//! - [`report`]: plain-text table and CSV formatting used by the
//!   experiment binaries.
//!
//! Everything here is `std`-only and dependency-free by design: the
//! reproduction contract requires identical results for identical seeds.

pub mod alloc;
pub mod check;
pub mod dist;
pub mod env;
pub mod event;
pub mod fault;
pub mod footprint;
pub mod hist;
pub mod inline_vec;
pub mod par;
pub mod report;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod trace;

pub use dist::{Dist, PreparedDist};
pub use event::{EventQueue, EventToken, QueueBackend};
pub use fault::{DegradePolicy, FaultInjector, FaultPlan, FaultStats, IpiFate};
pub use footprint::FootprintProfile;
pub use hist::Histogram;
pub use inline_vec::InlineVec;
pub use rng::Rng;
pub use series::TimeSeries;
pub use stats::{Counter, OnlineStats, UtilizationMeter};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceConfig, TraceEvent, TraceKind, TraceTag, Tracer};
