//! Seeded, deterministic fault injection.
//!
//! Tai Chi's central claim is that DP/CP co-scheduling stays safe under
//! adversarial timing — CP task storms, accelerator stalls, IPI
//! pressure — yet a simulator that only ever exercises the happy path
//! cannot test that. This module provides a **fault plan**: a set of
//! per-subsystem fault rates and magnitudes carried by the machine
//! configuration, plus an injector handle the hardware and OS layers
//! consult at their decision points.
//!
//! Determinism contract:
//!
//! - The injector draws from its own decorrelated RNG stream
//!   ([`Rng::stream`] with [`FAULT_STREAM`]), so enabling a fault knob
//!   never perturbs workload or traffic randomness — the *same packets
//!   arrive at the same times* and only the injected faults differ.
//! - An inactive plan ([`FaultPlan::is_active`] false) constructs **no
//!   injector at all**: every hook is an untaken `None` branch, zero
//!   RNG draws happen, and runs are byte-identical to a build without
//!   the fault layer.
//! - Same seed + same plan ⇒ byte-identical runs, so every fault
//!   scenario is replayable and diffable from its trace TSV.
//!
//! Every fired fault is recorded in the shared [`Tracer`] (when
//! enabled) as a [`TraceKind::FaultInject`] event and counted in
//! [`FaultStats`]; scheduler *reactions* are traced separately by the
//! machine as [`TraceKind::Degrade`] events so a trace diff shows both
//! the blow and the parry.

use crate::rng::Rng;
use crate::time::SimDuration;
use crate::trace::{TraceKind, Tracer};

use std::cell::RefCell;
use std::rc::Rc;

/// Stream index for the injector's decorrelated RNG (see
/// [`Rng::stream`]); chosen far from the traffic-generator indices.
pub const FAULT_STREAM: u64 = 0xFA_17;

/// How the scheduler responds to injected faults. All knobs default to
/// the hardened behaviour; tests flip individual knobs off to prove
/// the invariant checker catches a broken policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradePolicy {
    /// Re-send a dropped IPI (bounded, with exponential backoff).
    pub ipi_resend: bool,
    /// Maximum resend attempts per logical IPI.
    pub max_ipi_retries: u32,
    /// Base backoff before the first resend; doubles per attempt.
    pub ipi_backoff: SimDuration,
    /// Re-arm a kernel wakeup timer lost to fault injection.
    pub wakeup_rearm: bool,
    /// Recovery delay for a re-armed wakeup (models the slack timer).
    pub wakeup_rearm_delay: SimDuration,
    /// Re-raise the context-switch softirq when the raise was dropped.
    pub softirq_rearm: bool,
    /// Clamp the adaptive yield threshold to its maximum when the
    /// probe signals storm-induced starvation.
    pub yield_clamp: bool,
    /// Consecutive probe-triggered VM-exits on one host that count as
    /// starvation (triggers the clamp).
    pub starvation_window: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            ipi_resend: true,
            max_ipi_retries: 3,
            ipi_backoff: SimDuration::from_micros(2),
            wakeup_rearm: true,
            wakeup_rearm_delay: SimDuration::from_micros(20),
            softirq_rearm: true,
            yield_clamp: true,
            starvation_window: 8,
        }
    }
}

/// A deterministic fault-injection plan. Rates are per-opportunity
/// probabilities in `[0, 1]`; a rate of zero disables the knob without
/// consuming randomness. The default plan is fully inactive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that an accelerator pipeline stage stalls while
    /// ingesting a packet.
    pub accel_stall_rate: f64,
    /// Stall length added to the packet's pipeline entry.
    pub accel_stall: SimDuration,
    /// Probability that an IPI/IRQ message is dropped in the fabric.
    pub ipi_drop_rate: f64,
    /// Probability that a surviving IPI/IRQ is delayed.
    pub ipi_delay_rate: f64,
    /// Fabric congestion delay applied to delayed interrupts.
    pub ipi_delay: SimDuration,
    /// Probability that a kernel wakeup timer is lost.
    pub wakeup_drop_rate: f64,
    /// Probability that a softirq raise is lost.
    pub softirq_drop_rate: f64,
    /// Probability that the eNIC rejects a descriptor (backpressure /
    /// transient overflow) even when the ring has room.
    pub enic_reject_rate: f64,
    /// Maximum jitter added to kernel timer programming (uniform in
    /// `[0, timer_jitter]`; zero disables the knob).
    pub timer_jitter: SimDuration,
    /// CP task-storm period; [`SimDuration::ZERO`] disables storms.
    pub storm_period: SimDuration,
    /// CP tasks spawned per storm burst.
    pub storm_tasks: u32,
    /// Graceful-degradation policy the scheduler applies in response.
    pub degrade: DegradePolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            accel_stall_rate: 0.0,
            accel_stall: SimDuration::from_micros(2),
            ipi_drop_rate: 0.0,
            ipi_delay_rate: 0.0,
            ipi_delay: SimDuration::from_micros(1),
            wakeup_drop_rate: 0.0,
            softirq_drop_rate: 0.0,
            enic_reject_rate: 0.0,
            timer_jitter: SimDuration::ZERO,
            storm_period: SimDuration::ZERO,
            storm_tasks: 4,
            degrade: DegradePolicy::default(),
        }
    }
}

impl FaultPlan {
    /// True when any fault knob can fire. An inactive plan builds no
    /// injector and leaves the simulation bit-for-bit unchanged.
    pub fn is_active(&self) -> bool {
        self.accel_stall_rate > 0.0
            || self.ipi_drop_rate > 0.0
            || self.ipi_delay_rate > 0.0
            || self.wakeup_drop_rate > 0.0
            || self.softirq_drop_rate > 0.0
            || self.enic_reject_rate > 0.0
            || !self.timer_jitter.is_zero()
            || !self.storm_period.is_zero()
    }

    /// A plan that fires every fault class at `rate`, with default
    /// magnitudes and a CP storm — the fault-matrix sweep ladder.
    pub fn uniform(rate: f64) -> Self {
        let mut p = FaultPlan {
            accel_stall_rate: rate,
            ipi_drop_rate: rate,
            ipi_delay_rate: rate,
            wakeup_drop_rate: rate,
            softirq_drop_rate: rate,
            enic_reject_rate: rate,
            ..FaultPlan::default()
        };
        if rate > 0.0 {
            p.timer_jitter = SimDuration::from_nanos(200);
            p.storm_period = SimDuration::from_millis(5);
        }
        p
    }

    /// Parses a compact `key=value,...` spec (the `TAICHI_FAULTS`
    /// format) on top of `self`. Keys: `accel`, `accel_stall_ns`,
    /// `ipi_drop`, `ipi_delay`, `ipi_delay_ns`, `wakeup_drop`,
    /// `softirq_drop`, `enic`, `jitter_ns`, `storm_us`, `storm_tasks`,
    /// `all` (sets every rate at once).
    pub fn apply_spec(mut self, spec: &str) -> Result<FaultPlan, String> {
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault knob {part:?} is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("fault rate {v:?} for {key:?} is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate {r} for {key:?} is outside [0, 1]"));
                }
                Ok(r)
            };
            let nanos = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("fault magnitude {v:?} for {key:?} is not a u64"))
            };
            match key.trim() {
                "accel" => self.accel_stall_rate = rate(value)?,
                "accel_stall_ns" => self.accel_stall = SimDuration::from_nanos(nanos(value)?),
                "ipi_drop" => self.ipi_drop_rate = rate(value)?,
                "ipi_delay" => self.ipi_delay_rate = rate(value)?,
                "ipi_delay_ns" => self.ipi_delay = SimDuration::from_nanos(nanos(value)?),
                "wakeup_drop" => self.wakeup_drop_rate = rate(value)?,
                "softirq_drop" => self.softirq_drop_rate = rate(value)?,
                "enic" => self.enic_reject_rate = rate(value)?,
                "jitter_ns" => self.timer_jitter = SimDuration::from_nanos(nanos(value)?),
                "storm_us" => self.storm_period = SimDuration::from_micros(nanos(value)?),
                "storm_tasks" => {
                    self.storm_tasks = nanos(value)? as u32;
                }
                "all" => {
                    let r = rate(value)?;
                    self.accel_stall_rate = r;
                    self.ipi_drop_rate = r;
                    self.ipi_delay_rate = r;
                    self.wakeup_drop_rate = r;
                    self.softirq_drop_rate = r;
                    self.enic_reject_rate = r;
                }
                other => return Err(format!("unknown fault knob {other:?}")),
            }
        }
        Ok(self)
    }

    /// Applies the `TAICHI_FAULTS` environment override on top of
    /// `self`, warning once per process (and keeping `self`) when the
    /// spec is invalid.
    pub fn with_env_overrides(self) -> FaultPlan {
        crate::env::env_parse_or_warn("TAICHI_FAULTS", |spec| {
            if spec.trim().is_empty() {
                return Ok(self);
            }
            self.apply_spec(spec)
                .map_err(|e| format!("warning: ignoring TAICHI_FAULTS={spec:?}: {e}"))
        })
        .unwrap_or(self)
    }
}

/// What the fabric did to an interrupt message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpiFate {
    /// Delivered normally.
    Deliver,
    /// Delivered after an extra congestion delay.
    Delay(SimDuration),
    /// Lost in the fabric.
    Drop,
}

/// Counters for every fault the injector fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Accelerator pipeline stalls injected.
    pub accel_stalls: u64,
    /// Interrupt messages dropped.
    pub ipi_drops: u64,
    /// Interrupt messages delayed.
    pub ipi_delays: u64,
    /// Kernel wakeup timers lost.
    pub wakeup_drops: u64,
    /// Softirq raises lost.
    pub softirq_drops: u64,
    /// eNIC descriptor rejections.
    pub enic_rejects: u64,
    /// Non-zero timer jitters applied.
    pub timer_jitters: u64,
    /// CP storm bursts fired.
    pub cp_storms: u64,
}

impl FaultStats {
    /// Total faults fired across all classes.
    pub fn total(&self) -> u64 {
        self.accel_stalls
            + self.ipi_drops
            + self.ipi_delays
            + self.wakeup_drops
            + self.softirq_drops
            + self.enic_rejects
            + self.timer_jitters
            + self.cp_storms
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng: Rng,
    stats: FaultStats,
    tracer: Option<Tracer>,
}

impl FaultState {
    fn fire(&mut self, cpu: u32, kind: &'static str) {
        if let Some(t) = &self.tracer {
            t.emit(cpu, TraceKind::FaultInject { kind });
        }
    }
}

/// Cheaply cloneable handle to the shared fault state. Subsystems hold
/// an `Option<FaultInjector>` exactly like they hold an
/// `Option<Tracer>`; the disabled path is a single branch. Not `Send`:
/// each machine owns one injector on its own thread.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    inner: Rc<RefCell<FaultState>>,
}

impl FaultInjector {
    /// Creates an injector for `plan`, drawing from a fault-private
    /// stream derived from the machine seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            inner: Rc::new(RefCell::new(FaultState {
                plan,
                rng: Rng::stream(seed, FAULT_STREAM),
                stats: FaultStats::default(),
                tracer: None,
            })),
        }
    }

    /// Builds an injector only when the plan can fire; an inactive
    /// plan returns `None` so every hook stays an untaken branch.
    pub fn from_plan(plan: &FaultPlan, seed: u64) -> Option<Self> {
        plan.is_active().then(|| FaultInjector::new(*plan, seed))
    }

    /// Attaches the shared tracer so injections show up in the trace.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = Some(tracer);
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> FaultPlan {
        self.inner.borrow().plan
    }

    /// The degradation policy in effect.
    pub fn degrade(&self) -> DegradePolicy {
        self.inner.borrow().plan.degrade
    }

    /// Snapshot of everything fired so far.
    pub fn stats(&self) -> FaultStats {
        self.inner.borrow().stats
    }

    /// Accelerator ingest: `Some(stall)` when the pipeline stage
    /// stalls for this packet.
    pub fn accel_stall(&self, cpu: u32) -> Option<SimDuration> {
        let mut s = self.inner.borrow_mut();
        let rate = s.plan.accel_stall_rate;
        if rate <= 0.0 || !s.rng.chance(rate) {
            return None;
        }
        s.stats.accel_stalls += 1;
        s.fire(cpu, "accel_stall");
        Some(s.plan.accel_stall)
    }

    /// Interrupt fabric: what happens to a message headed for `cpu`.
    /// Drop is drawn before delay so a plan with both rates set drops
    /// at `ipi_drop_rate` and delays survivors at `ipi_delay_rate`.
    pub fn ipi_fate(&self, cpu: u32) -> IpiFate {
        let mut s = self.inner.borrow_mut();
        let (drop_rate, delay_rate) = (s.plan.ipi_drop_rate, s.plan.ipi_delay_rate);
        if drop_rate > 0.0 && s.rng.chance(drop_rate) {
            s.stats.ipi_drops += 1;
            s.fire(cpu, "ipi_drop");
            return IpiFate::Drop;
        }
        if delay_rate > 0.0 && s.rng.chance(delay_rate) {
            s.stats.ipi_delays += 1;
            s.fire(cpu, "ipi_delay");
            return IpiFate::Delay(s.plan.ipi_delay);
        }
        IpiFate::Deliver
    }

    /// Kernel timers: true when a wakeup arm is lost.
    pub fn wakeup_dropped(&self, cpu: u32) -> bool {
        let mut s = self.inner.borrow_mut();
        let rate = s.plan.wakeup_drop_rate;
        if rate <= 0.0 || !s.rng.chance(rate) {
            return false;
        }
        s.stats.wakeup_drops += 1;
        s.fire(cpu, "wakeup_drop");
        true
    }

    /// Softirq subsystem: true when a raise is lost.
    pub fn softirq_dropped(&self, cpu: u32) -> bool {
        let mut s = self.inner.borrow_mut();
        let rate = s.plan.softirq_drop_rate;
        if rate <= 0.0 || !s.rng.chance(rate) {
            return false;
        }
        s.stats.softirq_drops += 1;
        s.fire(cpu, "softirq_drop");
        true
    }

    /// eNIC ring: true when a descriptor is rejected (backpressure).
    pub fn enic_reject(&self, cpu: u32) -> bool {
        let mut s = self.inner.borrow_mut();
        let rate = s.plan.enic_reject_rate;
        if rate <= 0.0 || !s.rng.chance(rate) {
            return false;
        }
        s.stats.enic_rejects += 1;
        s.fire(cpu, "enic_reject");
        true
    }

    /// Timer programming: jitter to add, uniform in
    /// `[0, plan.timer_jitter]` (zero plan ⇒ zero without a draw).
    pub fn timer_jitter(&self, cpu: u32) -> SimDuration {
        let mut s = self.inner.borrow_mut();
        let max = s.plan.timer_jitter.as_nanos();
        if max == 0 {
            return SimDuration::ZERO;
        }
        let j = s.rng.gen_range(0, max + 1);
        if j > 0 {
            s.stats.timer_jitters += 1;
            s.fire(cpu, "timer_jitter");
        }
        SimDuration::from_nanos(j)
    }

    /// CP storm burst: counts/traces the burst and returns a child RNG
    /// for building the storm's task programs.
    pub fn storm(&self, cpu: u32) -> Rng {
        let mut s = self.inner.borrow_mut();
        s.stats.cp_storms += 1;
        s.fire(cpu, "cp_storm");
        s.rng.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive_and_builds_no_injector() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(FaultInjector::from_plan(&plan, 1).is_none());
    }

    #[test]
    fn uniform_plan_is_active() {
        assert!(FaultPlan::uniform(0.1).is_active());
        assert!(!FaultPlan::uniform(0.0).is_active());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::uniform(0.3);
        let a = FaultInjector::new(plan, 42);
        let b = FaultInjector::new(plan, 42);
        for cpu in 0..64 {
            assert_eq!(a.ipi_fate(cpu), b.ipi_fate(cpu));
            assert_eq!(a.accel_stall(cpu), b.accel_stall(cpu));
            assert_eq!(a.wakeup_dropped(cpu), b.wakeup_dropped(cpu));
            assert_eq!(a.timer_jitter(cpu), b.timer_jitter(cpu));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "0.3 over 256 draws must fire");
    }

    #[test]
    fn different_seeds_diverge() {
        let plan = FaultPlan::uniform(0.5);
        let a = FaultInjector::new(plan, 1);
        let b = FaultInjector::new(plan, 2);
        let fa: Vec<IpiFate> = (0..64).map(|c| a.ipi_fate(c)).collect();
        let fb: Vec<IpiFate> = (0..64).map(|c| b.ipi_fate(c)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never_does() {
        let plan = FaultPlan {
            softirq_drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let f = FaultInjector::new(plan, 7);
        assert!(f.softirq_dropped(0));
        assert!(!f.wakeup_dropped(0), "zero-rate knob never fires");
        assert!(!f.enic_reject(0));
        assert_eq!(f.stats().softirq_drops, 1);
    }

    #[test]
    fn spec_parses_and_rejects_bad_input() {
        let p = FaultPlan::default()
            .apply_spec("ipi_drop=0.25, enic=0.1, jitter_ns=500, storm_us=2000, storm_tasks=6")
            .expect("valid spec");
        assert_eq!(p.ipi_drop_rate, 0.25);
        assert_eq!(p.enic_reject_rate, 0.1);
        assert_eq!(p.timer_jitter, SimDuration::from_nanos(500));
        assert_eq!(p.storm_period, SimDuration::from_micros(2000));
        assert_eq!(p.storm_tasks, 6);
        assert!(p.is_active());

        assert!(FaultPlan::default().apply_spec("bogus=1").is_err());
        assert!(FaultPlan::default().apply_spec("ipi_drop=2.0").is_err());
        assert!(FaultPlan::default().apply_spec("ipi_drop").is_err());
        assert!(FaultPlan::default().apply_spec("accel_stall_ns=x").is_err());
    }

    #[test]
    fn spec_all_sets_every_rate() {
        let p = FaultPlan::default().apply_spec("all=0.05").expect("valid");
        assert_eq!(p.accel_stall_rate, 0.05);
        assert_eq!(p.ipi_drop_rate, 0.05);
        assert_eq!(p.enic_reject_rate, 0.05);
        assert_eq!(p.wakeup_drop_rate, 0.05);
    }

    #[test]
    fn injections_trace_when_a_tracer_is_attached() {
        let plan = FaultPlan {
            ipi_drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let f = FaultInjector::new(plan, 3);
        let t = Tracer::new(16);
        f.set_tracer(t.clone());
        assert_eq!(f.ipi_fate(5), IpiFate::Drop);
        let evs = t.matching(crate::trace::TraceTag::FaultInject);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cpu, 5);
    }
}
