//! Deterministic event queue.
//!
//! The queue orders events by `(time, sequence)` so that events scheduled
//! at the same instant fire in insertion order — a hard requirement for
//! reproducibility. [`EventQueue::schedule`] returns an [`EventToken`]
//! usable for cancellation.
//!
//! # Generation-stamped slots
//!
//! This is the simulator's hottest structure (every machine event goes
//! through one schedule and one pop), so the schedule/pop/cancel path
//! performs **zero hash lookups**. Every scheduling backend shares one
//! *slab*: each queued entry is stamped with a slot; the slot records a
//! generation counter, a cancelled bit, and owns the event payload (the
//! ordering structures only shuffle small fixed-size keys, however
//! large `E` is):
//!
//! - `schedule` takes a free slot (or grows the slab) and returns a
//!   token carrying `(slot, generation)`.
//! - `cancel` compares the token's generation against the slot: a match
//!   means the entry is still queued and it is cancelled; a mismatch
//!   means the event already fired (or was swept), so the cancel
//!   reports `false` and records nothing.
//! - popping bumps the slot generation when an entry leaves the queue
//!   (fired or swept), recycling the slot and invalidating any stale
//!   tokens.
//!
//! # Backends: hierarchical timing wheel vs. binary heap
//!
//! Two interchangeable scheduling cores sit on top of the slab,
//! selected by the `TAICHI_QUEUE` environment variable (`wheel`, the
//! default, or `heap`) or programmatically via
//! [`EventQueue::with_backend`]. Both produce **identical observable
//! behaviour** — the same `(time, seq)` pop order, the same `cancel`
//! return values, the same `peek_time` — so traces, stats, and CSVs are
//! byte-identical across backends for the same seed. (The only
//! backend-dependent observable is the diagnostic
//! [`EventQueue::cancelled_backlog`], which reflects how lazily each
//! backend disposes of cancelled entries.)
//!
//! **Heap**: a binary min-heap of keys with lazy cancellation (flipped
//! bit, discarded when the entry surfaces). The heap top is kept live
//! by sweeping in `pop` and `cancel`, so `peek_time` is a plain O(1)
//! `&self` read. O(log n) per operation.
//!
//! **Wheel** (default): a hierarchical timing wheel (calendar queue)
//! tuned for the simulator's actual event mix — dense, near-future
//! timers (softirq deadlines, burst completions, probe windows, slice
//! expiries):
//!
//! - **Level 0**: 2048 buckets of 64 ns ⇒ a 131 µs window, with an
//!   occupancy bitmap (one bit per bucket) so the scan jumps straight
//!   to the next non-empty bucket.
//! - **Level 1**: 256 buckets of 131 µs ⇒ ~33.6 ms of coverage beyond
//!   level 0. When the level-0 window advances into a level-1 bucket,
//!   its entries are redistributed into level-0 buckets.
//! - **Overflow**: everything beyond level 1 lands in a binary heap of
//!   keys, promoted into the wheel as the window advances. Far-future
//!   events are rare by construction, so the heap stays tiny.
//!
//! Bucket membership is stored as **intrusive singly-linked lists
//! threaded through the slab** (each slot carries its key and a `next`
//! link; a bucket is one `u32` head index). The wheel therefore owns
//! no per-bucket storage at all: once the slab's free list reaches its
//! working-set fixed point, schedule/pop/redistribute are strictly
//! allocation-free — the property the [`crate::alloc`] harness pins
//! down. A bucket holds the events of one 64 ns instant-range, which
//! in practice is zero or one entry (occasionally a same-timestamp
//! burst), so the per-bucket min-scan that restores exact `(time,
//! seq)` order is a walk over a handful of slots.
//!
//! Steady-state schedule/pop on the wheel is O(1), and
//! [`EventQueue::drain_next_batch`] exposes the calendar structure to
//! drivers: one wheel access drains an entire same-timestamp burst.
//!
//! Cancellation differs structurally: the wheel knows which bucket an
//! entry lives in (the slab records it), so wheel cancels remove the
//! entry *eagerly* — except in the overflow heap, where cancellation
//! stays lazy exactly like the heap backend.
//!
//! # Same-deadline fusion (wheel backend)
//!
//! Periodic timer re-arms frequently collide on the exact same
//! deadline (several DP services arming the same poll window, a burst
//! of slice expiries at one instant). Scheduling into a wheel level
//! first checks the target bucket for a live slot firing at exactly
//! that time; on a hit the new event is appended to that slot's
//! `fused` member list instead of consuming a fresh slab slot and
//! bucket node. The slot's ordering key is always its *front* member's
//! sequence number: popping a fused slot sheds one member and re-keys
//! the slot to the next, so exact `(time, seq)` order — including
//! interleaving with other same-time slots — is preserved, and each
//! member token (stamped with its own sequence number) remains
//! individually cancellable. Fusion is an optimization, not a
//! guarantee: the bucket walk is bounded, and the heap backend and the
//! wheel's overflow heap never fuse, yet all backends stay observably
//! identical.
//!
//! Advancing the level-0 window over a long idle gap hops via the
//! level-1 occupancy bitmap: a span of empty calendar costs one bitmap
//! scan, not one iteration per 131 µs block, so a simulated
//! multi-second quiet period is O(occupied buckets) to cross.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Tokens are generation-stamped: once the event fires (or the cancel
/// is swept), the token goes stale and [`EventQueue::cancel`] on it is
/// a recorded-nothing no-op. The sequence number additionally
/// distinguishes the members of a fused slot (several same-deadline
/// events sharing one slab slot — see the module docs), so member
/// tokens stay individually cancellable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    generation: u64,
    seq: u64,
}

/// Scheduling core selection (see the module docs). The default —
/// and the `TAICHI_QUEUE` fallback — is the timing wheel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timing wheel with heap overflow (the default).
    #[default]
    Wheel,
    /// Binary min-heap with lazy cancellation (the PR 2 engine).
    Heap,
}

impl QueueBackend {
    /// Resolves the backend from the `TAICHI_QUEUE` environment
    /// variable: `wheel` (or unset/empty) and `heap` are accepted; an
    /// unrecognized value warns to stderr **once per process** and
    /// falls back to the wheel, mirroring the `TAICHI_SEED` convention
    /// — silently ignoring a typoed selector would fake a backend
    /// comparison, and every `EventQueue` construction re-reads the
    /// variable, so without deduplication a sweep would repeat the
    /// warning per machine.
    pub fn from_env() -> QueueBackend {
        crate::env::env_parse_or_warn("TAICHI_QUEUE", |s| match s.trim() {
            "" | "wheel" => Ok(QueueBackend::Wheel),
            "heap" => Ok(QueueBackend::Heap),
            other => Err(format!(
                "warning: TAICHI_QUEUE={other:?} is not a known queue backend \
                 (expected \"wheel\" or \"heap\"); using the wheel"
            )),
        })
        .unwrap_or_default()
    }
}

/// A heap entry carries no payload — only the key and the slot index.
/// Keeping entries at ~20 bytes matters: heap sifts move entries
/// around, and event payloads (which can be an order of magnitude
/// larger) would be copied repeatedly. Payloads live in the slab and
/// are written exactly once on schedule and read exactly once on pop.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour on BinaryHeap (a max-heap).
        other.key().cmp(&self.key())
    }
}

/// Where an entry currently lives, recorded in its slab slot so wheel
/// cancels can remove it eagerly without a search.
const LOC_NONE: u32 = u32::MAX;
/// The entry sits in the overflow heap (lazy cancellation).
const LOC_OVERFLOW: u32 = u32::MAX - 1;

/// Intrusive-list terminator.
const NIL: u32 = u32::MAX;

/// Default slab capacity reserved at construction, sized so the
/// in-flight high-water mark of a full machine (a few hundred events)
/// never forces a mid-run doubling. Fleet footprint profiles override
/// this via [`EventQueue::with_backend_and_slots`].
pub const INITIAL_SLOTS: usize = 1024;

/// Per-slot bookkeeping. A slot is bound to exactly one queued entry at
/// a time; the generation distinguishes successive occupants. The slot
/// owns the entry's payload and — for the wheel backend — carries the
/// ordering key and the intrusive bucket-list link, so the wheel needs
/// no storage of its own.
struct Slot<E> {
    generation: u64,
    cancelled: bool,
    /// Wheel backend only: `LOC_OVERFLOW`, a level-0 bucket index
    /// (`0..N0`), or `N0 +` a level-1 bucket index. `LOC_NONE` for the
    /// heap backend and for free slots.
    loc: u32,
    /// Ordering key, valid while queued (wheel backend).
    time: SimTime,
    seq: u64,
    /// Next slot in the same bucket's intrusive list, or [`NIL`].
    next: u32,
    event: Option<E>,
    /// Same-deadline fusion members (wheel levels only), in ascending
    /// sequence order. The slot's `seq`/`event` pair is the *front*
    /// member; these are the rest. Empty for singletons, the heap
    /// backend, and the overflow heap. The Vec's capacity survives
    /// slot recycling, so steady-state fusion stays allocation-free.
    fused: Vec<(u64, E)>,
}

// --------------------------------------------------------------------
// Timing-wheel geometry.
// --------------------------------------------------------------------

/// Level-0 bucket granularity: 2^6 = 64 ns.
const G0_BITS: u32 = 6;
/// Level-0 bucket count: 2^11 = 2048 buckets ⇒ 131.072 µs window.
const L0_BITS: u32 = 11;
const N0: usize = 1 << L0_BITS;
/// Level-1 bucket granularity = the whole level-0 span (2^17 ns).
const G1_BITS: u32 = G0_BITS + L0_BITS;
const G1: u64 = 1 << G1_BITS;
/// Level-1 bucket count: 2^8 = 256 ⇒ ~33.55 ms of coverage.
const L1_BITS: u32 = 8;
const N1: usize = 1 << L1_BITS;

const L0_WORDS: usize = N0 / 64;
const L1_WORDS: usize = N1 / 64;

/// Lazy bucket-head storage: one optional 64-head chunk per occupancy
/// bitmap word. A hot machine touches most of the calendar and ends up
/// with every chunk allocated (256 B each — the same memory the old
/// flat array held); a mostly-idle fleet machine whose events cluster
/// in a few 64-bucket ranges only materializes the chunks it links
/// into, so thousands of cold queues stop paying for 2048 + 256 eager
/// head words apiece. Chunk presence is pure storage: `get` answers
/// [`NIL`] for an absent chunk, which is exactly what the flat array
/// held for an empty bucket, so pop order and cancel results are
/// unaffected.
struct HeadTable<const WORDS: usize> {
    chunks: [Option<Box<[u32; 64]>>; WORDS],
}

impl<const WORDS: usize> HeadTable<WORDS> {
    fn new() -> Self {
        HeadTable {
            chunks: std::array::from_fn(|_| None),
        }
    }

    /// Head of bucket `b`, or [`NIL`] if the bucket (or its whole
    /// chunk) is empty.
    #[inline]
    fn get(&self, b: usize) -> u32 {
        match &self.chunks[b >> 6] {
            Some(c) => c[b & 63],
            None => NIL,
        }
    }

    /// Mutable head slot for bucket `b`, materializing its chunk.
    #[inline]
    fn slot_mut(&mut self, b: usize) -> &mut u32 {
        &mut self.chunks[b >> 6].get_or_insert_with(|| Box::new([NIL; 64]))[b & 63]
    }

    /// Reads and clears bucket `b`'s head without materializing an
    /// absent chunk.
    #[inline]
    fn take(&mut self, b: usize) -> u32 {
        match &mut self.chunks[b >> 6] {
            Some(c) => std::mem::replace(&mut c[b & 63], NIL),
            None => NIL,
        }
    }

    /// Materializes every chunk up front (hot-profile prewarm): the
    /// chunks hold only [`NIL`] heads, so nothing observable changes —
    /// the steady-state loop just never pays a mid-run chunk
    /// allocation.
    fn materialize_all(&mut self) {
        for chunk in &mut self.chunks {
            chunk.get_or_insert_with(|| Box::new([NIL; 64]));
        }
    }

    /// Releases chunks whose occupancy-bitmap word is zero (every head
    /// in them is provably [`NIL`]).
    fn release_empty(&mut self, mask: &[u64; WORDS]) {
        for (chunk, &word) in self.chunks.iter_mut().zip(mask.iter()) {
            if word == 0 {
                *chunk = None;
            }
        }
    }

    /// Resident bytes held by materialized chunks.
    fn resident_bytes(&self) -> usize {
        self.chunks.iter().flatten().count() * std::mem::size_of::<[u32; 64]>()
    }
}

/// The hierarchical wheel core. All invariants are phrased against
/// `l0_end`, the exclusive upper bound of level-0 coverage (always a
/// multiple of [`G1`]):
///
/// - every queued entry with `time < l0_end` is in a level-0 bucket,
///   and all level-0 times fall in `[l0_end - G1, l0_end)` (one 64 ns
///   instant-range per bucket — the bitmap scan order *is* the time
///   order);
/// - every entry with `l0_end <= time < h1` (where
///   `h1 = l0_end + (N1-1)·G1`) is in a level-1 bucket;
/// - everything at `time >= h1` is in the overflow heap, and `l0_end`
///   only moves forward, so overflow entries are promoted exactly once;
/// - no cancelled entry is ever linked into a level-0/level-1 bucket
///   (wheel cancellation is eager there).
struct Wheel {
    l0_head: HeadTable<L0_WORDS>,
    l0_mask: [u64; L0_WORDS],
    l0_count: usize,
    l1_head: HeadTable<L1_WORDS>,
    l1_mask: [u64; L1_WORDS],
    l1_count: usize,
    /// Exclusive upper bound of level-0 coverage (multiple of `G1`).
    l0_end: u64,
    overflow: BinaryHeap<Entry>,
}

impl Wheel {
    fn new() -> Box<Self> {
        Box::new(Wheel {
            l0_head: HeadTable::new(),
            l0_mask: [0; L0_WORDS],
            l0_count: 0,
            l1_head: HeadTable::new(),
            l1_mask: [0; L1_WORDS],
            l1_count: 0,
            l0_end: G1,
            overflow: BinaryHeap::new(),
        })
    }

    /// Exclusive upper bound of level-1 coverage.
    #[inline]
    fn h1(&self) -> u64 {
        self.l0_end + (N1 as u64 - 1) * G1
    }

    #[inline]
    fn l0_bucket(t: u64) -> usize {
        (t >> G0_BITS) as usize & (N0 - 1)
    }

    #[inline]
    fn l1_bucket(t: u64) -> usize {
        (t >> G1_BITS) as usize & (N1 - 1)
    }
}

/// Upper bound on the bucket walk looking for a same-deadline fusion
/// target. Level-0 buckets cover one 64 ns instant-range (nearly
/// always 0–1 entries); level-1 buckets span 131 µs and can hold a
/// longer mixed-deadline list, so the search gives up rather than
/// scan it — fusion is an optimization, never a requirement.
const FUSE_SCAN: usize = 16;

/// Bounded search of a bucket list for a live slot firing at exactly
/// `time` (a same-deadline fusion target).
#[inline]
fn find_coincident<E>(slots: &[Slot<E>], head: u32, time: SimTime) -> Option<u32> {
    let mut cur = head;
    let mut budget = FUSE_SCAN;
    while cur != NIL && budget > 0 {
        let s = &slots[cur as usize];
        if s.time == time {
            return Some(cur);
        }
        budget -= 1;
        cur = s.next;
    }
    None
}

/// Finds the first set bit at or after `start` (wrapping) in a bitmap.
#[inline]
fn find_set_from(mask: &[u64], start: usize) -> Option<usize> {
    let words = mask.len();
    let w = start / 64;
    let first = mask[w] & (!0u64 << (start % 64));
    if first != 0 {
        return Some(w * 64 + first.trailing_zeros() as usize);
    }
    for i in 1..=words {
        let wi = (w + i) % words;
        if mask[wi] != 0 {
            return Some(wi * 64 + mask[wi].trailing_zeros() as usize);
        }
    }
    None
}

#[inline]
fn set_bit(mask: &mut [u64], idx: usize) {
    mask[idx / 64] |= 1u64 << (idx % 64);
}

#[inline]
fn clear_bit(mask: &mut [u64], idx: usize) {
    mask[idx / 64] &= !(1u64 << (idx % 64));
}

// Intrusive bucket-list operations, threaded through the slab.

/// Prepends `slot` onto the level-0 bucket covering its time.
#[inline]
fn l0_link<E>(wheel: &mut Wheel, slots: &mut [Slot<E>], slot: u32) {
    let b = Wheel::l0_bucket(slots[slot as usize].time.as_nanos());
    let head = wheel.l0_head.slot_mut(b);
    slots[slot as usize].next = *head;
    slots[slot as usize].loc = b as u32;
    *head = slot;
    set_bit(&mut wheel.l0_mask, b);
    wheel.l0_count += 1;
}

/// Prepends `slot` onto the level-1 bucket covering its time.
#[inline]
fn l1_link<E>(wheel: &mut Wheel, slots: &mut [Slot<E>], slot: u32) {
    let b = Wheel::l1_bucket(slots[slot as usize].time.as_nanos());
    let head = wheel.l1_head.slot_mut(b);
    slots[slot as usize].next = *head;
    slots[slot as usize].loc = (N0 + b) as u32;
    *head = slot;
    set_bit(&mut wheel.l1_mask, b);
    wheel.l1_count += 1;
}

/// Finds the `(time, seq)`-minimum of a non-empty bucket list.
/// Returns `(prev_of_min, min)` where `prev_of_min` is [`NIL`] when
/// the minimum is the head. Buckets cover one 64 ns (level 0) or
/// 131 µs (level 1) range and typically hold a single entry, so this
/// walk is short by construction.
#[inline]
fn list_min<E>(slots: &[Slot<E>], head: u32) -> (u32, u32) {
    let mut best_prev = NIL;
    let mut best = head;
    let mut prev = head;
    let mut cur = slots[head as usize].next;
    while cur != NIL {
        let c = &slots[cur as usize];
        let b = &slots[best as usize];
        if (c.time, c.seq) < (b.time, b.seq) {
            best_prev = prev;
            best = cur;
        }
        prev = cur;
        cur = c.next;
    }
    (best_prev, best)
}

/// Unlinks `slot` (whose predecessor is `prev`, [`NIL`] for the head)
/// from the bucket list rooted at `head`.
#[inline]
fn list_unlink<E>(slots: &mut [Slot<E>], head: &mut u32, prev: u32, slot: u32) {
    if prev == NIL {
        debug_assert_eq!(*head, slot);
        *head = slots[slot as usize].next;
    } else {
        slots[prev as usize].next = slots[slot as usize].next;
    }
}

enum Core {
    Heap(BinaryHeap<Entry>),
    Wheel(Box<Wheel>),
}

/// A time-ordered queue of events of type `E`.
pub struct EventQueue<E> {
    core: Core,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    /// Pending (non-cancelled) events.
    live: usize,
    /// Cancelled entries still physically queued (heap backend, or the
    /// wheel's overflow heap).
    cancelled: usize,
    now: SimTime,
    /// Generation stamp for slots created by slab growth. Zero until
    /// [`EventQueue::compact`] truncates the slab: freshly regrown
    /// slots must start *above* every generation the truncated slots
    /// ever issued, or a stale token from before the compaction could
    /// alias a new occupant of the same index and cancel a live event.
    gen_floor: u64,
    /// Largest slab length ever reached, surviving compaction.
    slab_hwm: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero, with the backend selected
    /// by `TAICHI_QUEUE` (the timing wheel unless overridden).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::from_env())
    }

    /// Creates an empty queue at time zero on an explicit backend.
    ///
    /// Reserves the full [`INITIAL_SLOTS`] slab: a realloc mid-run is
    /// a steady-state allocation the hot loop is audited against (see
    /// the zero_alloc test), and a transient burst that pushes the
    /// in-flight high-water mark past the previous power of two would
    /// reallocate long after warm-up. Reserving a generous slab up
    /// front moves that first-touch growth to construction; full
    /// machines peak at a few hundred in-flight events, so 1024 slots
    /// leave ample headroom without meaningful memory cost — *for one
    /// hot machine*. Fleet drivers standing up thousands of mostly-idle
    /// machines use [`EventQueue::with_backend_and_slots`] with a small
    /// reservation instead and let the slab grow to each machine's
    /// actual working set.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let mut q = Self::with_backend_and_slots(backend, INITIAL_SLOTS);
        q.prewarm();
        q
    }

    /// Materializes every wheel bucket-head chunk up front (no-op on
    /// the heap backend) so the steady-state loop never allocates one
    /// mid-run — the hot-profile companion to the eager
    /// [`INITIAL_SLOTS`] slab. Purely a storage decision: the chunks
    /// hold only [`NIL`] heads, identical to absent chunks.
    pub fn prewarm(&mut self) {
        if let Core::Wheel(wheel) = &mut self.core {
            wheel.l0_head.materialize_all();
            wheel.l1_head.materialize_all();
        }
    }

    /// Creates an empty queue at time zero on an explicit backend with
    /// an explicit initial slab reservation. The slab still grows on
    /// demand — `initial_slots` only sets where growth starts, so every
    /// observable (pop order, cancel results, `peek_time`) is identical
    /// for any value.
    pub fn with_backend_and_slots(backend: QueueBackend, initial_slots: usize) -> Self {
        let core = match backend {
            QueueBackend::Heap => Core::Heap(BinaryHeap::new()),
            QueueBackend::Wheel => Core::Wheel(Wheel::new()),
        };
        EventQueue {
            core,
            slots: Vec::with_capacity(initial_slots),
            free: Vec::with_capacity(initial_slots),
            next_seq: 0,
            live: 0,
            cancelled: 0,
            now: SimTime::ZERO,
            gen_floor: 0,
            slab_hwm: 0,
        }
    }

    /// The scheduling core this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.core {
            Core::Heap(_) => QueueBackend::Heap,
            Core::Wheel(_) => QueueBackend::Wheel,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error and panics in debug
    /// builds; in release builds the event fires immediately (at `now`).
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time:?} < now {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        // Same-deadline fusion (wheel levels): a live slot already
        // firing at exactly `time` absorbs the new event as a member
        // instead of costing a fresh slab slot and bucket node.
        // Members carry strictly increasing sequence numbers (the
        // global counter only grows), so a push keeps the list sorted.
        if let Core::Wheel(wheel) = &self.core {
            let t = time.as_nanos();
            let head = if t < wheel.l0_end {
                Some(wheel.l0_head.get(Wheel::l0_bucket(t)))
            } else if t < wheel.h1() {
                Some(wheel.l1_head.get(Wheel::l1_bucket(t)))
            } else {
                None
            };
            if let Some(host) = head.and_then(|h| find_coincident(&self.slots, h, time)) {
                let s = &mut self.slots[host as usize];
                s.fused.push((seq, event));
                let generation = s.generation;
                self.live += 1;
                return EventToken {
                    slot: host,
                    generation,
                    seq,
                };
            }
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.time = time;
                sl.seq = seq;
                sl.event = Some(event);
                s
            }
            None => {
                self.slots.push(Slot {
                    generation: self.gen_floor,
                    cancelled: false,
                    loc: LOC_NONE,
                    time,
                    seq,
                    next: NIL,
                    event: Some(event),
                    fused: Vec::new(),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        match &mut self.core {
            Core::Heap(heap) => heap.push(Entry { time, seq, slot }),
            Core::Wheel(wheel) => {
                let t = time.as_nanos();
                if t < wheel.l0_end {
                    l0_link(wheel, &mut self.slots, slot);
                } else if t < wheel.h1() {
                    l1_link(wheel, &mut self.slots, slot);
                } else {
                    wheel.overflow.push(Entry { time, seq, slot });
                    self.slots[slot as usize].loc = LOC_OVERFLOW;
                }
            }
        }
        self.live += 1;
        EventToken {
            slot,
            generation,
            seq,
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been
    /// cancelled. Cancelling an already-fired token is a no-op (and
    /// records nothing: the slot generation moved on, so the stale
    /// token cannot leave residue). Identical return values on both
    /// backends; only the disposal strategy differs (see
    /// [`EventQueue::cancelled_backlog`]).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot as usize) else {
            return false;
        };
        if slot.generation != token.generation || slot.cancelled {
            return false;
        }
        // Fused slots (wheel levels) map several tokens to one slot,
        // distinguished by sequence number: the front member keys the
        // slot, the rest live in `fused`.
        if token.seq != slot.seq {
            let Some(i) = slot.fused.iter().position(|&(s, _)| s == token.seq) else {
                // The member already popped (the slot was re-keyed past
                // it): the token is stale, exactly like a fired
                // singleton, so record nothing.
                return false;
            };
            slot.fused.remove(i);
            self.live -= 1;
            return true;
        }
        if !slot.fused.is_empty() {
            // Cancelling the front member of a fused slot: promote the
            // next member into the key. The deadline is unchanged, so
            // the slot stays where it is linked; only the sequence
            // number moves forward.
            let (seq, event) = slot.fused.remove(0);
            slot.seq = seq;
            slot.event = Some(event);
            self.live -= 1;
            return true;
        }
        match &mut self.core {
            Core::Heap(_) => {
                slot.cancelled = true;
                self.live -= 1;
                self.cancelled += 1;
                // Keep the heap-top-is-live invariant (peek_time is a
                // plain `&self` read).
                self.sweep_heap_top();
            }
            Core::Wheel(wheel) => {
                let loc = slot.loc;
                if loc == LOC_OVERFLOW {
                    slot.cancelled = true;
                    self.live -= 1;
                    self.cancelled += 1;
                    self.sweep_overflow_top();
                } else {
                    // The slab knows the bucket: remove eagerly so no
                    // cancelled entry ever sits in the wheel proper.
                    // (`slot_mut` cannot allocate here — the entry is
                    // linked into the bucket, so its chunk exists.)
                    let (head, mask, count, b) = if (loc as usize) < N0 {
                        let b = loc as usize;
                        (
                            wheel.l0_head.slot_mut(b),
                            &mut wheel.l0_mask[..],
                            &mut wheel.l0_count,
                            b,
                        )
                    } else {
                        let b = loc as usize - N0;
                        (
                            wheel.l1_head.slot_mut(b),
                            &mut wheel.l1_mask[..],
                            &mut wheel.l1_count,
                            b,
                        )
                    };
                    let mut prev = NIL;
                    let mut cur = *head;
                    while cur != token.slot {
                        debug_assert_ne!(cur, NIL, "slab loc tracks the live bucket");
                        prev = cur;
                        cur = self.slots[cur as usize].next;
                    }
                    list_unlink(&mut self.slots, head, prev, token.slot);
                    if *head == NIL {
                        clear_bit(mask, b);
                    }
                    *count -= 1;
                    self.live -= 1;
                    self.retire_slot(token.slot);
                    // The removal may have emptied both wheel levels,
                    // promoting the overflow top to global front: it
                    // must be live (`peek_time` relies on it), and a
                    // cancelled entry parked there would hold its slot
                    // until the next window advance.
                    let Core::Wheel(wheel) = &self.core else {
                        unreachable!()
                    };
                    if wheel.l0_count == 0 && wheel.l1_count == 0 {
                        self.sweep_overflow_top();
                    }
                }
            }
        }
        true
    }

    /// Pops the next non-cancelled event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.core {
            Core::Heap(_) => loop {
                let Core::Heap(heap) = &mut self.core else {
                    unreachable!()
                };
                let entry = heap.pop()?;
                let (was_cancelled, event) = self.retire_queued(entry.slot);
                if was_cancelled {
                    continue; // was cancelled; discard and keep looking
                }
                self.live -= 1;
                self.now = entry.time;
                self.sweep_heap_top();
                let event = event.expect("live slot owns its payload");
                return Some((entry.time, event));
            },
            Core::Wheel(_) => {
                let (time, event) = self.wheel_pop_min(SimTime::MAX)?;
                self.live -= 1;
                self.now = time;
                Some((time, event))
            }
        }
    }

    /// Pops the next event only if it fires at or before `limit`.
    ///
    /// The fused peek+pop the driver loop wants: one queue access per
    /// event instead of a peek followed by a pop.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match &mut self.core {
            Core::Heap(heap) => {
                // The heap top is always live (sweep invariant).
                if heap.peek().map(|e| e.time > limit).unwrap_or(true) {
                    return None;
                }
                self.pop()
            }
            Core::Wheel(_) => {
                let (time, event) = self.wheel_pop_min(limit)?;
                self.live -= 1;
                self.now = time;
                Some((time, event))
            }
        }
    }

    /// Drains **every** event at the earliest pending timestamp (if
    /// that timestamp is `<= limit`) into `out`, returning the
    /// timestamp and advancing `now` to it. Events the handlers then
    /// schedule *at the same instant* are deliberately not included:
    /// they carry later sequence numbers, so they fire on the next call
    /// — exactly the order a peek/pop loop would produce.
    ///
    /// This is the batch form of [`EventQueue::pop_at_or_before`]: on
    /// the wheel backend a same-timestamp burst costs one bucket scan
    /// total instead of one per event.
    ///
    /// Entries appended to `out` leave the queue at drain time, so
    /// their tokens go stale immediately: a handler that cancels a
    /// token whose event sits later in the same batch gets the
    /// documented stale-token `false` (generation stamping makes this
    /// a recorded-nothing no-op), and the event still dispatches this
    /// batch. The machine driver's skip layer relies on exactly that
    /// contract when it cancels superseded timers.
    pub fn drain_next_batch(&mut self, limit: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        match &mut self.core {
            Core::Heap(_) => {
                let (at, ev) = self.pop_at_or_before(limit)?;
                out.push(ev);
                loop {
                    let Core::Heap(heap) = &mut self.core else {
                        unreachable!()
                    };
                    // Top is live; same-time entries pop in seq order.
                    if heap.peek().map(|e| e.time != at).unwrap_or(true) {
                        break;
                    }
                    let entry = heap.pop().expect("peeked non-empty");
                    let (_, event) = self.retire_queued(entry.slot);
                    self.live -= 1;
                    out.push(event.expect("live slot owns its payload"));
                    self.sweep_heap_top();
                }
                Some(at)
            }
            Core::Wheel(_) => {
                let (at, event) = self.wheel_pop_min(limit)?;
                self.live -= 1;
                self.now = at;
                out.push(event);
                // Same-timestamp events necessarily share the level-0
                // bucket: drain them without rescanning the bitmap.
                // While the bucket minimum still fires at `at`, it is
                // the next-in-seq event of the batch (a fused slot
                // stays put shedding one member per iteration, keyed
                // by its next member, so interleave with other
                // same-time slots falls out of the min-scan).
                let b = Wheel::l0_bucket(at.as_nanos());
                loop {
                    let Core::Wheel(wheel) = &mut self.core else {
                        unreachable!()
                    };
                    let head = wheel.l0_head.get(b);
                    if head == NIL {
                        break;
                    }
                    let (prev, min) = list_min(&self.slots, head);
                    if self.slots[min as usize].time != at {
                        break;
                    }
                    let event = self.wheel_take_l0(b, prev, min);
                    self.live -= 1;
                    out.push(event);
                }
                // Same front-is-live repair as `wheel_pop_min`: the
                // batch may have drained the last level entries.
                let Core::Wheel(wheel) = &self.core else {
                    unreachable!()
                };
                if wheel.l0_count == 0 && wheel.l1_count == 0 {
                    self.sweep_overflow_top();
                }
                Some(at)
            }
        }
    }

    /// Returns the time of the next pending event without popping it.
    ///
    /// Heap backend: the top is never cancelled (`pop` and `cancel`
    /// sweep), so this is a plain O(1) read. Wheel backend: a read-only
    /// bucket scan (no cancelled entry ever sits in the wheel, and the
    /// overflow top is kept live by the same sweeps).
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.core {
            Core::Heap(heap) => {
                debug_assert!(heap
                    .peek()
                    .map(|e| !self.slots[e.slot as usize].cancelled)
                    .unwrap_or(true));
                heap.peek().map(|e| e.time)
            }
            Core::Wheel(wheel) => {
                if wheel.l0_count > 0 {
                    let start = Wheel::l0_bucket(self.now.as_nanos().max(wheel.l0_end - G1));
                    let b = find_set_from(&wheel.l0_mask, start).expect("l0_count > 0");
                    let (_, min) = list_min(&self.slots, wheel.l0_head.get(b));
                    return Some(self.slots[min as usize].time);
                }
                if wheel.l1_count > 0 {
                    // The global minimum is in the first occupied
                    // level-1 bucket in ring order from the window
                    // (bucket time-ranges are monotone from there, and
                    // all overflow times are larger still).
                    let start = Wheel::l1_bucket(wheel.l0_end);
                    let b = find_set_from(&wheel.l1_mask, start).expect("l1_count > 0");
                    let (_, min) = list_min(&self.slots, wheel.l1_head.get(b));
                    return Some(self.slots[min as usize].time);
                }
                debug_assert!(wheel
                    .overflow
                    .peek()
                    .map(|e| !self.slots[e.slot as usize].cancelled)
                    .unwrap_or(true));
                wheel.overflow.peek().map(|e| e.time)
            }
        }
    }

    /// Wheel backend: removes and returns `(time, event)` of the
    /// minimum entry if its time is `<= limit`, advancing the level-0
    /// window (draining level-1 buckets, promoting overflow entries)
    /// as needed. Advancing only happens when the result is actually
    /// popped — a `None` return leaves the window untouched, so `now`
    /// can never fall behind the level-0 coverage. Does not touch
    /// `self.live`; callers account for the removed event.
    fn wheel_pop_min(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        loop {
            let Core::Wheel(wheel) = &mut self.core else {
                unreachable!("wheel_pop_min on heap backend")
            };
            if wheel.l0_count > 0 {
                let start = Wheel::l0_bucket(self.now.as_nanos().max(wheel.l0_end - G1));
                let b = find_set_from(&wheel.l0_mask, start).expect("l0_count > 0");
                let (prev, min) = list_min(&self.slots, wheel.l0_head.get(b));
                let time = self.slots[min as usize].time;
                if time > limit {
                    return None;
                }
                let event = self.wheel_take_l0(b, prev, min);
                let Core::Wheel(wheel) = &self.core else {
                    unreachable!()
                };
                if wheel.l0_count == 0 && wheel.l1_count == 0 {
                    // The popped entry was the last one in the wheel
                    // proper: the overflow top is the front now, so
                    // discard any cancelled run sitting on it.
                    self.sweep_overflow_top();
                }
                return Some((time, event));
            }
            if wheel.l1_count > 0 {
                // The global minimum lives in the first occupied
                // level-1 bucket in ring order (bucket time-ranges are
                // monotone from the window position).
                let cur = Wheel::l1_bucket(wheel.l0_end);
                let b = find_set_from(&wheel.l1_mask, cur).expect("l1_count > 0");
                let (_, min) = list_min(&self.slots, wheel.l1_head.get(b));
                if self.slots[min as usize].time > limit {
                    // Check BEFORE advancing: a limited pop must leave
                    // the window where `now` can still reach it, or a
                    // later schedule could alias into a stale bucket.
                    return None;
                }
                // Advance the window to the target bucket and
                // redistribute it into level 0 (ring distance in G1
                // steps from the current window position).
                let steps = (b + N1 - cur) % N1;
                let new_end = wheel.l0_end + (steps as u64 + 1) * G1;
                self.wheel_advance_to(new_end);
                continue;
            }
            // Both wheel levels empty: jump to the overflow minimum.
            self.sweep_overflow_top();
            let Core::Wheel(wheel) = &mut self.core else {
                unreachable!()
            };
            let head = wheel.overflow.peek()?;
            if head.time > limit {
                return None;
            }
            let t = head.time.as_nanos();
            let new_end = (t >> G1_BITS << G1_BITS) + G1;
            self.wheel_advance_to(new_end);
        }
    }

    /// Removes the front member of the level-0 entry `slot` (bucket
    /// `b`, list predecessor `prev`): a fused slot sheds one member and
    /// stays linked, re-keyed to its next member's sequence number; a
    /// singleton is unlinked from the bucket and its slab slot retired.
    /// Returns the removed event. `self.live` is the caller's job.
    fn wheel_take_l0(&mut self, b: usize, prev: u32, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        if !s.fused.is_empty() {
            let (seq, next_ev) = s.fused.remove(0);
            s.seq = seq;
            return s
                .event
                .replace(next_ev)
                .expect("fused front member owns a payload");
        }
        let Core::Wheel(wheel) = &mut self.core else {
            unreachable!()
        };
        list_unlink(&mut self.slots, wheel.l0_head.slot_mut(b), prev, slot);
        if wheel.l0_head.get(b) == NIL {
            clear_bit(&mut wheel.l0_mask, b);
        }
        wheel.l0_count -= 1;
        let (_, event) = self.retire_queued(slot);
        event.expect("wheel entries are never cancelled in place")
    }

    /// Moves the level-0 window forward so that its exclusive end is
    /// `new_end` (a multiple of `G1`), draining the level-1 buckets the
    /// window passes over and promoting overflow entries into the
    /// freshly uncovered level-1 range. Cancelled overflow entries are
    /// retired instead of promoted — the wheel proper never holds a
    /// cancelled entry.
    ///
    /// Empty stretches are hopped via the level-1 occupancy bitmap in
    /// one assignment: a gap of N empty G1 blocks costs one bitmap
    /// scan, not N per-block iterations, so crossing a long idle gap
    /// is O(occupied buckets) rather than O(elapsed time). The hop is
    /// safe for overflow promotion because callers derive `new_end`
    /// from an occupied level-1 bucket or from the overflow minimum:
    /// every overflow time is `>= new_end - G1`, so a promoted entry
    /// can never land behind the hopped window.
    fn wheel_advance_to(&mut self, new_end: u64) {
        loop {
            let Core::Wheel(wheel) = &mut self.core else {
                unreachable!()
            };
            if wheel.l0_end >= new_end {
                break;
            }
            // Hop straight to the next occupied level-1 bucket (ring
            // order from the window position); everything before it is
            // provably empty calendar.
            let cur1 = Wheel::l1_bucket(wheel.l0_end);
            let steps_left = ((new_end - wheel.l0_end) >> G1_BITS) as usize;
            let hop = if wheel.l1_count == 0 {
                None
            } else {
                find_set_from(&wheel.l1_mask, cur1).map(|b| (b + N1 - cur1) % N1)
            };
            match hop {
                Some(dist) if dist < steps_left => {
                    // Jump to the occupied bucket and drain it into
                    // level 0. List order is irrelevant: the
                    // per-bucket min-scan re-establishes (time, seq)
                    // order.
                    wheel.l0_end += dist as u64 * G1;
                    let end = wheel.l0_end + G1;
                    let b1 = Wheel::l1_bucket(wheel.l0_end);
                    let mut cur = wheel.l1_head.take(b1);
                    clear_bit(&mut wheel.l1_mask, b1);
                    while cur != NIL {
                        let nxt = self.slots[cur as usize].next;
                        debug_assert!(self.slots[cur as usize].time.as_nanos() >= wheel.l0_end);
                        debug_assert!(self.slots[cur as usize].time.as_nanos() < end);
                        wheel.l1_count -= 1;
                        l0_link(wheel, &mut self.slots, cur);
                        cur = nxt;
                    }
                    wheel.l0_end = end;
                }
                _ => {
                    // No occupied bucket inside the span: every block
                    // up to `new_end` is empty (the nearest occupancy
                    // sits at or beyond it), so the window crosses the
                    // whole stretch in one assignment with nothing to
                    // drain.
                    wheel.l0_end = new_end;
                }
            }
            // The level-1 horizon moved with the window: promote
            // overflow entries that now fall under it. (Inside the
            // loop: a promoted entry may land in a bucket the window
            // still has to pass, and the next iteration's bitmap scan
            // drains it.)
            let h1 = wheel.h1();
            while let Some(head) = wheel.overflow.peek() {
                if head.time.as_nanos() >= h1 {
                    break;
                }
                let entry = wheel.overflow.pop().expect("peeked non-empty");
                let slot = entry.slot;
                if self.slots[slot as usize].cancelled {
                    // Lazily cancelled while parked in overflow:
                    // retire the slot in place (inlined so the wheel
                    // borrow from `self.core` stays disjoint).
                    self.cancelled -= 1;
                    let s = &mut self.slots[slot as usize];
                    s.generation += 1;
                    s.loc = LOC_NONE;
                    s.next = NIL;
                    s.cancelled = false;
                    s.event = None;
                    self.free.push(slot);
                    continue;
                }
                if entry.time.as_nanos() < wheel.l0_end {
                    l0_link(wheel, &mut self.slots, slot);
                } else {
                    l1_link(wheel, &mut self.slots, slot);
                }
            }
        }
    }

    /// Retires the slab slot of an entry leaving the queue structure,
    /// returning whether it had been (lazily) cancelled plus the
    /// payload the slot owned.
    fn retire_queued(&mut self, slot: u32) -> (bool, Option<E>) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.fused.is_empty(), "fused slots shed members, not retire");
        s.generation += 1;
        s.loc = LOC_NONE;
        s.next = NIL;
        let event = s.event.take();
        let was_cancelled = std::mem::replace(&mut s.cancelled, false);
        if was_cancelled {
            self.cancelled -= 1;
        }
        self.free.push(slot);
        (was_cancelled, event)
    }

    /// Frees `slot` for reuse, invalidating outstanding tokens (eager
    /// wheel cancellation: the entry is already out of the structure).
    fn retire_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.fused.is_empty(), "fused slots shed members, not retire");
        s.generation += 1;
        s.loc = LOC_NONE;
        s.next = NIL;
        s.cancelled = false;
        s.event = None;
        self.free.push(slot);
    }

    /// Discards cancelled entries sitting at the heap top so that the
    /// top is always live (heap backend).
    fn sweep_heap_top(&mut self) {
        loop {
            let Core::Heap(heap) = &mut self.core else {
                return;
            };
            let Some(top) = heap.peek() else { return };
            if !self.slots[top.slot as usize].cancelled {
                return;
            }
            let entry = heap.pop().expect("peeked non-empty");
            self.retire_queued(entry.slot);
        }
    }

    /// Discards cancelled entries sitting at the overflow-heap top
    /// (wheel backend), so overflow peeks always see a live entry.
    fn sweep_overflow_top(&mut self) {
        loop {
            let Core::Wheel(wheel) = &mut self.core else {
                return;
            };
            let Some(top) = wheel.overflow.peek() else {
                return;
            };
            if !self.slots[top.slot as usize].cancelled {
                return;
            }
            let entry = wheel.overflow.pop().expect("peeked non-empty");
            self.retire_queued(entry.slot);
        }
    }

    /// Releases memory retained past the current working set: trailing
    /// free slab slots (and their spare capacity), the overflow/heap
    /// storage's spare capacity, and bucket-head chunks whose buckets
    /// are all empty. Bounded by the structures' current sizes and
    /// observably inert — pop order, cancel results, and `peek_time`
    /// are identical with or without the call — so fleet drivers can
    /// invoke it after a storm peak without disturbing byte-identity.
    /// Stale tokens referencing truncated slots stay dead: out-of-range
    /// slots report the usual recorded-nothing `false`, and regrown
    /// slots start above every truncated generation (`gen_floor`).
    pub fn compact(&mut self) {
        self.slab_hwm = self.slab_hwm.max(self.slots.len());
        match &mut self.core {
            Core::Heap(heap) => heap.shrink_to_fit(),
            Core::Wheel(wheel) => {
                wheel.overflow.shrink_to_fit();
                wheel.l0_head.release_empty(&wheel.l0_mask);
                wheel.l1_head.release_empty(&wheel.l1_mask);
            }
        }
        // Drop the free tail of the slab: slots at the end that hold no
        // queued entry can go, and the free list forgets them. Interior
        // free slots stay (their indices are linked into live bucket
        // lists' numbering); in practice post-storm slabs are a dense
        // live prefix plus a long free tail.
        let mut is_free = vec![false; self.slots.len()];
        for &f in &self.free {
            is_free[f as usize] = true;
        }
        let mut new_len = self.slots.len();
        while new_len > 0 && is_free[new_len - 1] {
            new_len -= 1;
        }
        if new_len < self.slots.len() {
            let floor = self.slots[new_len..]
                .iter()
                .map(|s| s.generation + 1)
                .max()
                .unwrap_or(0);
            self.gen_floor = self.gen_floor.max(floor);
            self.slots.truncate(new_len);
            self.free.retain(|&f| (f as usize) < new_len);
        }
        self.slots.shrink_to_fit();
        self.free.shrink_to_fit();
    }

    /// Largest slab length ever reached (slots, not bytes), surviving
    /// [`EventQueue::compact`] truncation — the storm-peak watermark
    /// fleet stats report.
    pub fn slab_high_watermark(&self) -> usize {
        self.slab_hwm.max(self.slots.len())
    }

    /// Approximate resident bytes held by the queue's own structures
    /// (slab, free list, heap storage, materialized bucket chunks).
    /// Fused-member spill and payload-internal allocations are not
    /// counted.
    pub fn resident_bytes(&self) -> usize {
        let slab = self.slots.capacity() * std::mem::size_of::<Slot<E>>();
        let free = self.free.capacity() * std::mem::size_of::<u32>();
        let core = match &self.core {
            Core::Heap(heap) => heap.capacity() * std::mem::size_of::<Entry>(),
            Core::Wheel(wheel) => {
                wheel.overflow.capacity() * std::mem::size_of::<Entry>()
                    + wheel.l0_head.resident_bytes()
                    + wheel.l1_head.resident_bytes()
            }
        };
        slab + free + core
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Cancellation records not yet swept out of the queue structures
    /// (diagnostics; always bounded by the number of queued entries).
    /// Backend-dependent: the heap cancels lazily everywhere, the
    /// wheel only in its overflow heap.
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Wheel, QueueBackend::Heap];

    #[test]
    fn pops_in_time_order() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.schedule(SimTime::from_nanos(30), "c");
            q.schedule(SimTime::from_nanos(10), "a");
            q.schedule(SimTime::from_nanos(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{be:?}");
        }
    }

    #[test]
    fn ties_break_fifo() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t = SimTime::from_nanos(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{be:?}");
        }
    }

    #[test]
    fn now_advances_with_pops() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.schedule(SimTime::from_nanos(42), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_nanos(42), "{be:?}");
        }
    }

    #[test]
    fn cancellation_skips_event() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t1 = q.schedule(SimTime::from_nanos(10), "a");
            q.schedule(SimTime::from_nanos(20), "b");
            assert!(q.cancel(t1));
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"), "{be:?}");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn double_cancel_is_false() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t = q.schedule(SimTime::from_nanos(10), ());
            assert!(q.cancel(t));
            assert!(!q.cancel(t), "{be:?}");
        }
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t = q.schedule(SimTime::from_nanos(10), ());
            q.pop();
            // The token already fired: per the documented contract the
            // cancel reports failure and records nothing.
            assert!(!q.cancel(t), "{be:?}");
            assert_eq!(q.cancelled_backlog(), 0);
            q.schedule(SimTime::from_nanos(20), ());
            assert!(q.pop().is_some());
        }
    }

    #[test]
    fn stale_token_does_not_cancel_slot_reuse() {
        // The slot of a fired event is recycled for the next schedule;
        // the old (stale) token must not cancel the new occupant.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let old = q.schedule(SimTime::from_nanos(10), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(1));
            let fresh = q.schedule(SimTime::from_nanos(20), 2);
            assert!(!q.cancel(old), "{be:?}: stale token must be dead");
            assert_eq!(q.pop().map(|(_, e)| e), Some(2), "new occupant survives");
            assert!(!q.cancel(fresh), "fired token is dead too");
        }
    }

    #[test]
    fn post_fire_cancellations_do_not_accumulate() {
        // Regression: cancelling tokens after their events popped used
        // to grow the cancelled set without bound (nothing ever swept
        // those entries). The bookkeeping must stay empty here.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let mut tokens = Vec::new();
            for i in 0..10_000u64 {
                tokens.push(q.schedule(SimTime::from_nanos(i + 1), i));
            }
            while q.pop().is_some() {}
            for t in tokens {
                assert!(!q.cancel(t), "{be:?}");
            }
            assert_eq!(q.cancelled_backlog(), 0);
            assert_eq!(q.len(), 0);
        }
    }

    #[test]
    fn heap_pre_fire_cancellations_stay_lazy() {
        // Heap backend: pre-fire cancellations below the heap top stay
        // lazily in the heap (backlog 1) and are swept once their
        // entry surfaces.
        let mut q = EventQueue::with_backend(QueueBackend::Heap);
        q.schedule(SimTime::from_nanos(100_000), 0);
        let b = q.schedule(SimTime::from_nanos(100_001), 1);
        assert!(q.cancel(b));
        assert_eq!(q.cancelled_backlog(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        assert_eq!(q.cancelled_backlog(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn wheel_cancels_are_eager_outside_overflow() {
        // Wheel backend: a cancel inside the wheel's coverage removes
        // the entry on the spot — zero backlog — while a far-future
        // cancel parks lazily in the overflow heap.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.schedule(SimTime::from_nanos(50), 0);
        let near = q.schedule(SimTime::from_nanos(100_000), 1);
        let far = q.schedule(SimTime::from_secs(10), 2);
        q.schedule(SimTime::from_secs(11), 3);
        assert!(q.cancel(near));
        assert_eq!(q.cancelled_backlog(), 0, "wheel cancel is eager");
        assert!(q.cancel(far));
        assert!(q.cancelled_backlog() <= 1, "overflow cancel may be lazy");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 3]);
        assert_eq!(q.cancelled_backlog(), 0);
    }

    #[test]
    fn cancel_at_top_sweeps_immediately() {
        // Cancelling the front entry keeps peek_time a pure read on
        // both backends.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let a = q.schedule(SimTime::from_nanos(10), 0);
            q.schedule(SimTime::from_nanos(20), 1);
            assert!(q.cancel(a));
            assert_eq!(q.cancelled_backlog(), 0, "{be:?}");
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(20)));
        }
    }

    #[test]
    fn peek_time_skips_cancelled() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t1 = q.schedule(SimTime::from_nanos(10), 1);
            q.schedule(SimTime::from_nanos(20), 2);
            q.cancel(t1);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(20)), "{be:?}");
        }
    }

    #[test]
    fn peek_time_is_shared_access() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.schedule(SimTime::from_nanos(10), ());
            let r: &EventQueue<()> = &q;
            assert_eq!(r.peek_time(), Some(SimTime::from_nanos(10)), "{be:?}");
        }
    }

    #[test]
    fn peek_time_reaches_into_level_one() {
        // Level 0 empty, next event beyond the level-0 window: the
        // peek must find it in the level-1 ring without popping.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.schedule(SimTime::from_millis(1), 7);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let a = q.schedule(SimTime::from_nanos(1), ());
            q.schedule(SimTime::from_nanos(2), ());
            q.cancel(a);
            assert_eq!(q.len(), 1, "{be:?}");
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.schedule(SimTime::from_nanos(10), 1u32);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t.as_nanos(), e), (10, 1), "{be:?}");
            // Schedule relative to the new now.
            q.schedule(q.now() + SimDuration::from_nanos(5), 2u32);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t.as_nanos(), e), (15, 2));
        }
    }

    #[test]
    fn slab_recycles_slots() {
        // Steady-state schedule/pop churn must not grow the slab.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            for i in 0..100_000u64 {
                q.schedule(SimTime::from_nanos(i + 1), i);
                q.pop();
            }
            assert!(q.slots.len() <= 2, "{be:?}: slab grew to {}", q.slots.len());
        }
    }

    #[test]
    fn wheel_spans_every_level() {
        // Events in level 0, level 1, and the overflow heap — popped
        // back in global time order across the structural boundaries.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        let times: Vec<u64> = vec![
            40,            // level 0
            5_000,         // level 0
            200_000,       // level 1 (beyond the initial 131 µs window)
            10_000_000,    // level 1 (10 ms)
            50_000_000,    // overflow (50 ms)
            2_000_000_000, // overflow (2 s)
        ];
        let mut shuffled = times.clone();
        shuffled.reverse();
        for &t in &shuffled {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, times);
        assert_eq!(q.now(), SimTime::from_nanos(2_000_000_000));
    }

    #[test]
    fn wheel_same_timestamp_fifo_across_levels() {
        // Same-timestamp events arriving via different routes (direct
        // level-0 insert vs. level-1/overflow promotion) must still pop
        // in schedule order.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        let t = SimTime::from_millis(40); // starts in overflow
        q.schedule(t, 0u32); // → overflow
        q.schedule(SimTime::from_nanos(10), 100); // level 0, pops first
        let order: Vec<u32> = {
            // Pop the early event; the window later jumps to 40 ms.
            let mut out = Vec::new();
            out.push(q.pop().unwrap().1);
            q.schedule(t, 1); // still beyond the level-1 horizon → overflow
            out.push(q.pop().unwrap().1);
            q.schedule(t, 2); // now == t: direct level-0 insert
            while let Some((at, e)) = q.pop() {
                assert_eq!(at, t);
                out.push(e);
            }
            out
        };
        assert_eq!(order, vec![100, 0, 1, 2]);
    }

    #[test]
    fn drain_next_batch_groups_same_timestamp() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t1 = SimTime::from_nanos(100);
            let t2 = SimTime::from_nanos(200);
            q.schedule(t1, 1);
            q.schedule(t2, 10);
            q.schedule(t1, 2);
            q.schedule(t1, 3);
            let mut out = Vec::new();
            assert_eq!(q.drain_next_batch(SimTime::MAX, &mut out), Some(t1));
            assert_eq!(out, vec![1, 2, 3], "{be:?}");
            assert_eq!(q.now(), t1);
            out.clear();
            assert_eq!(q.drain_next_batch(SimTime::from_nanos(150), &mut out), None);
            assert!(out.is_empty());
            assert_eq!(q.drain_next_batch(SimTime::MAX, &mut out), Some(t2));
            assert_eq!(out, vec![10]);
            assert!(q.is_empty());
            assert_eq!(q.drain_next_batch(SimTime::MAX, &mut out), None);
        }
    }

    #[test]
    fn pop_at_or_before_respects_limit() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.schedule(SimTime::from_nanos(500), 5);
            assert!(q.pop_at_or_before(SimTime::from_nanos(400)).is_none());
            assert_eq!(q.len(), 1, "{be:?}: limited pop must not consume");
            assert_eq!(
                q.pop_at_or_before(SimTime::from_nanos(500)).map(|(_, e)| e),
                Some(5)
            );
        }
    }

    #[test]
    fn limited_pop_does_not_strand_the_window() {
        // A limited pop that answers None (next event beyond the
        // limit, parked in level 1 / overflow) must leave the wheel
        // able to accept schedules near `now` without aliasing.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.schedule(SimTime::from_nanos(100), 1u32);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        q.schedule(SimTime::from_millis(25), 2); // level 1
        q.schedule(SimTime::from_secs(1), 3); // overflow
        assert!(q.pop_at_or_before(SimTime::from_millis(20)).is_none());
        // Schedule close to now: must pop before the far ones.
        q.schedule(SimTime::from_millis(15), 4);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![4, 2, 3]);
    }

    #[test]
    fn wheel_window_jump_over_long_gap() {
        // A lone far-future event forces the window to jump (no
        // per-bucket crawling): schedule → pop → schedule near the new
        // now must all stay consistent.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.schedule(SimTime::from_secs(3), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        let near = q.now() + SimDuration::from_nanos(64);
        q.schedule(near, "near");
        assert_eq!(q.pop().map(|(t, _)| t), Some(near));
    }

    #[test]
    fn fused_same_deadline_share_one_slot() {
        // Coincident deadlines in a wheel level collapse into one slab
        // slot and one bucket node, popping in FIFO order regardless.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        let t = SimTime::from_nanos(500);
        for i in 0..8 {
            q.schedule(t, i);
        }
        assert_eq!(q.slots.len(), 1, "members fused into the first slot");
        assert_eq!(q.len(), 8);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fused_member_cancel_semantics() {
        // Every member token of a fused slot is individually
        // cancellable, with the same stale-token contract singletons
        // have, on either backend.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t = SimTime::from_nanos(700);
            let toks: Vec<_> = (0..5).map(|i| q.schedule(t, i)).collect();
            assert!(q.cancel(toks[2]), "{be:?}: middle member");
            assert!(!q.cancel(toks[2]), "{be:?}: double cancel");
            assert!(q.cancel(toks[0]), "{be:?}: front member");
            assert_eq!(q.len(), 3);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![1, 3, 4], "{be:?}");
            for tok in toks {
                assert!(!q.cancel(tok), "{be:?}: all tokens dead after fire");
            }
            assert_eq!(q.cancelled_backlog(), 0, "{be:?}");
        }
    }

    #[test]
    fn fused_slot_interleaves_with_later_singleton() {
        // A fused slot keyed by its front member must interleave
        // correctly with a separate same-time slot arriving via a
        // different route (level-1 redistribution), exactly as the
        // heap backend would order the four events.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            let t = SimTime::from_millis(1); // starts in level 1
            q.schedule(t, 0u32);
            q.schedule(t, 1); // fuses with 0 on the wheel
            q.schedule(t, 2);
            let mut out = Vec::new();
            assert_eq!(q.drain_next_batch(SimTime::MAX, &mut out), Some(t));
            assert_eq!(out, vec![0, 1, 2], "{be:?}");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn fusion_in_level_one_pops_in_order() {
        // Fusing inside a level-1 bucket: members ride the
        // redistribution into level 0 together and still pop in
        // global (time, seq) order against neighbours.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        let a = SimTime::from_micros(200); // level 1
        let b = SimTime::from_micros(201); // same level-1 bucket
        q.schedule(a, 10u32);
        q.schedule(b, 20);
        q.schedule(a, 11); // fuses with 10
        assert_eq!(q.slots.len(), 2, "coincident deadline fused");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![10, 11, 20]);
    }

    #[test]
    fn small_slab_grows_on_demand_with_identical_order() {
        // A fleet-profile queue starting from a tiny slab must produce
        // the exact pop order of the default reservation under a load
        // that forces several mid-run doublings.
        for be in BACKENDS {
            let mut small = EventQueue::with_backend_and_slots(be, 2);
            let mut big = EventQueue::with_backend(be);
            for i in 0..3000u64 {
                let t = SimTime::from_nanos(1 + (i * 7919) % 50_000);
                small.schedule(t, i);
                big.schedule(t, i);
            }
            loop {
                let (a, b) = (small.pop(), big.pop());
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e)),
                    "{be:?}"
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn compact_releases_storm_peak_and_keeps_tokens_dead() {
        // A burst inflates the slab; compact() must shed the free tail,
        // keep the high-water mark visible, and never let a
        // pre-compaction token cancel a post-compaction occupant of a
        // recycled slot index.
        for be in BACKENDS {
            let mut q = EventQueue::with_backend_and_slots(be, 4);
            let stale: Vec<_> = (0..4000u64)
                .map(|i| q.schedule(SimTime::from_nanos(i + 1), i))
                .collect();
            while q.pop().is_some() {}
            let peak = q.slab_high_watermark();
            assert!(peak >= 1000, "{be:?}: storm should inflate the slab");
            q.compact();
            assert!(q.slots.is_empty(), "{be:?}: free tail dropped");
            assert_eq!(q.slab_high_watermark(), peak, "{be:?}: HWM survives");
            // Regrow over the same indices; every stale token is dead.
            let fresh: Vec<_> = (0..4000u64)
                .map(|i| q.schedule(SimTime::from_nanos(10_000 + i), i))
                .collect();
            for t in stale {
                assert!(!q.cancel(t), "{be:?}: stale token aliased a live slot");
            }
            assert_eq!(q.len(), 4000, "{be:?}");
            for t in fresh.iter().step_by(2) {
                assert!(q.cancel(*t), "{be:?}: fresh tokens stay cancellable");
            }
            let popped = std::iter::from_fn(|| q.pop()).count();
            assert_eq!(popped, 2000, "{be:?}");
        }
    }

    #[test]
    fn compact_with_live_entries_is_inert() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend_and_slots(be, 4);
            // Live entries across all wheel levels, plus churn to leave
            // free slots behind them.
            for i in 0..500u64 {
                let t = q.schedule(SimTime::from_nanos(i + 1), i);
                q.cancel(t);
            }
            q.schedule(SimTime::from_nanos(40), 1u64);
            q.schedule(SimTime::from_micros(200), 2);
            q.schedule(SimTime::from_secs(2), 3);
            q.compact();
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![1, 2, 3], "{be:?}");
        }
    }

    #[test]
    fn backend_env_selector_parses() {
        // Only exercises the parser (the env var itself is process
        // global and owned by the integration tests).
        assert_eq!(QueueBackend::default(), QueueBackend::Wheel);
        let q: EventQueue<()> = EventQueue::with_backend(QueueBackend::Heap);
        assert_eq!(q.backend(), QueueBackend::Heap);
        let q: EventQueue<()> = EventQueue::with_backend(QueueBackend::Wheel);
        assert_eq!(q.backend(), QueueBackend::Wheel);
    }
}
