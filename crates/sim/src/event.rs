//! Deterministic event queue.
//!
//! The queue orders events by `(time, sequence)` so that events scheduled
//! at the same instant fire in insertion order — a hard requirement for
//! reproducibility. Cancellation is lazy: [`EventQueue::schedule`]
//! returns an [`EventToken`]; cancelled entries stay in the heap and are
//! discarded when they surface.
//!
//! # Generation-stamped slots
//!
//! This is the simulator's hottest structure (every machine event goes
//! through one schedule and one pop), so the schedule/pop/cancel path
//! performs **zero hash lookups**. Each heap entry is stamped with a
//! *slot* in a slab; the slot records a generation counter, a cancelled
//! bit, and owns the event payload (the heap itself only shuffles
//! 20-byte `(time, seq, slot)` keys, however large `E` is):
//!
//! - `schedule` takes a free slot (or grows the slab) and returns a
//!   token carrying `(slot, generation)`.
//! - `cancel` compares the token's generation against the slot: a match
//!   means the entry is still in the heap, so the cancelled bit is
//!   flipped — O(1), no search. A mismatch means the event already
//!   fired (or was swept), so the cancel reports `false` and records
//!   nothing.
//! - `pop` bumps the slot generation when an entry leaves the heap
//!   (fired or swept), recycling the slot and invalidating any stale
//!   tokens.
//!
//! The heap top is kept live (never cancelled) by sweeping in `pop` and
//! `cancel`, which makes [`EventQueue::peek_time`] a true `&self` read.
//! Cancelled entries *below* the top stay untouched until they surface,
//! so the cancellation backlog is always bounded by the heap size.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Tokens are generation-stamped: once the event fires (or the cancel
/// is swept), the token goes stale and [`EventQueue::cancel`] on it is
/// a recorded-nothing no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    generation: u64,
}

/// A heap entry carries no payload — only the ordering key and the slot
/// index. Keeping entries at ~20 bytes matters: sift-up/sift-down in
/// the binary heap move entries around on every schedule and pop, and
/// event payloads (which can be an order of magnitude larger) would be
/// copied log(n) times per operation. Payloads live in the slab and are
/// written exactly once on schedule and read exactly once on pop.
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour on BinaryHeap (a max-heap).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-slot bookkeeping. A slot is bound to exactly one heap entry at a
/// time; the generation distinguishes successive occupants. The slot
/// also owns the entry's payload (see [`Entry`]).
struct Slot<E> {
    generation: u64,
    cancelled: bool,
    event: Option<E>,
}

/// A time-ordered queue of events of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    /// Pending (non-cancelled) events.
    live: usize,
    /// Cancelled entries still physically in the heap.
    cancelled: usize,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            cancelled: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error and panics in debug
    /// builds; in release builds the event fires immediately (at `now`).
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time:?} < now {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].event = Some(event);
                s
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    cancelled: false,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(Entry { time, seq, slot });
        self.live += 1;
        EventToken { slot, generation }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been
    /// cancelled. Cancelling an already-fired token is a no-op (and
    /// records nothing: the slot generation moved on, so the stale
    /// token cannot leave residue).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot as usize) else {
            return false;
        };
        if slot.generation != token.generation || slot.cancelled {
            return false;
        }
        slot.cancelled = true;
        self.live -= 1;
        self.cancelled += 1;
        // Keep the heap-top-is-live invariant (peek_time is `&self`).
        self.sweep_top();
        true
    }

    /// Pops the next non-cancelled event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.pop()?;
            let (was_cancelled, event) = self.retire_slot(entry.slot);
            if was_cancelled {
                continue; // was cancelled; discard and keep looking
            }
            self.live -= 1;
            self.now = entry.time;
            self.sweep_top();
            let event = event.expect("live slot owns its payload");
            return Some((entry.time, event));
        }
    }

    /// Returns the time of the next pending event without popping it.
    ///
    /// The heap top is never a cancelled entry (`pop` and `cancel`
    /// sweep), so this is a plain O(1) read.
    pub fn peek_time(&self) -> Option<SimTime> {
        debug_assert!(self
            .heap
            .peek()
            .map(|e| !self.slots[e.slot as usize].cancelled)
            .unwrap_or(true));
        self.heap.peek().map(|e| e.time)
    }

    /// Frees `slot` for reuse, invalidating outstanding tokens.
    /// Returns whether the retiring entry had been cancelled, plus the
    /// payload the slot owned.
    fn retire_slot(&mut self, slot: u32) -> (bool, Option<E>) {
        let s = &mut self.slots[slot as usize];
        s.generation += 1;
        let event = s.event.take();
        let was_cancelled = std::mem::replace(&mut s.cancelled, false);
        if was_cancelled {
            self.cancelled -= 1;
        }
        self.free.push(slot);
        (was_cancelled, event)
    }

    /// Discards cancelled entries sitting at the heap top so that the
    /// top is always live.
    fn sweep_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if !self.slots[top.slot as usize].cancelled {
                break;
            }
            let entry = self.heap.pop().expect("peeked non-empty");
            self.retire_slot(entry.slot);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Cancellation records not yet swept from the heap (diagnostics;
    /// always bounded by the number of heap entries).
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert!(q.cancel(t1));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime::from_nanos(10), ());
        assert!(q.cancel(t));
        assert!(!q.cancel(t));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        // The token already fired: per the documented contract the
        // cancel reports failure and records nothing.
        assert!(!q.cancel(t));
        assert_eq!(q.cancelled_backlog(), 0);
        q.schedule(SimTime::from_nanos(20), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn stale_token_does_not_cancel_slot_reuse() {
        // The slot of a fired event is recycled for the next schedule;
        // the old (stale) token must not cancel the new occupant.
        let mut q = EventQueue::new();
        let old = q.schedule(SimTime::from_nanos(10), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        let fresh = q.schedule(SimTime::from_nanos(20), 2);
        assert!(!q.cancel(old), "stale token must be dead");
        assert_eq!(q.pop().map(|(_, e)| e), Some(2), "new occupant survives");
        assert!(!q.cancel(fresh), "fired token is dead too");
    }

    #[test]
    fn post_fire_cancellations_do_not_accumulate() {
        // Regression: cancelling tokens after their events popped used
        // to grow the cancelled set without bound (nothing ever swept
        // those entries). The bookkeeping must stay empty here.
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for i in 0..10_000u64 {
            tokens.push(q.schedule(SimTime::from_nanos(i + 1), i));
        }
        while q.pop().is_some() {}
        for t in tokens {
            assert!(!q.cancel(t));
        }
        assert_eq!(q.cancelled_backlog(), 0);
        assert_eq!(q.len(), 0);
        // Pre-fire cancellations below the heap top stay lazily in the
        // heap (backlog 1) and are swept once their entry surfaces.
        q.schedule(SimTime::from_nanos(100_000), 0);
        let b = q.schedule(SimTime::from_nanos(100_001), 1);
        assert!(q.cancel(b));
        assert_eq!(q.cancelled_backlog(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        assert_eq!(q.cancelled_backlog(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_at_top_sweeps_immediately() {
        // Cancelling the heap-top entry sweeps it right away so that
        // peek_time stays a pure &self read.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), 0);
        q.schedule(SimTime::from_nanos(20), 1);
        assert!(q.cancel(a));
        assert_eq!(q.cancelled_backlog(), 0);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        q.cancel(t1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn peek_time_is_shared_access() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        let r: &EventQueue<()> = &q;
        assert_eq!(r.peek_time(), Some(SimTime::from_nanos(10)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 1));
        // Schedule relative to the new now.
        q.schedule(q.now() + crate::time::SimDuration::from_nanos(5), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (15, 2));
    }

    #[test]
    fn slab_recycles_slots() {
        // Steady-state schedule/pop churn must not grow the slab.
        let mut q = EventQueue::new();
        for i in 0..100_000u64 {
            q.schedule(SimTime::from_nanos(i + 1), i);
            q.pop();
        }
        assert!(q.slots.len() <= 2, "slab grew to {}", q.slots.len());
    }
}
