//! Deterministic event queue.
//!
//! The queue orders events by `(time, sequence)` so that events scheduled
//! at the same instant fire in insertion order — a hard requirement for
//! reproducibility. Cancellation is lazy: [`EventQueue::schedule`]
//! returns an [`EventToken`]; cancelled tokens are dropped when popped.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour on BinaryHeap (a max-heap).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers still in the heap and not cancelled. Cancel
    /// bookkeeping is validated against this so a token cancelled
    /// after its event fired leaves no residue (the `cancelled` set is
    /// always bounded by the heap size).
    live: HashSet<u64>,
    cancelled: HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error and panics in debug
    /// builds; in release builds the event fires immediately (at `now`).
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time:?} < now {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been
    /// cancelled. Cancelling an already-fired token is a no-op (and
    /// records nothing: cancellation state never outlives the event).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.live.remove(&token.0) {
            return false;
        }
        self.cancelled.insert(token.0);
        true
    }

    /// Pops the next non-cancelled event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Returns the time of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Cancellation records not yet swept from the heap (diagnostics;
    /// always bounded by the number of pending events).
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert!(q.cancel(t1));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime::from_nanos(10), ());
        assert!(q.cancel(t));
        assert!(!q.cancel(t));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        // The token already fired: per the documented contract the
        // cancel reports failure and records nothing.
        assert!(!q.cancel(t));
        assert_eq!(q.cancelled_backlog(), 0);
        q.schedule(SimTime::from_nanos(20), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn post_fire_cancellations_do_not_accumulate() {
        // Regression: cancelling tokens after their events popped used
        // to grow the cancelled set without bound (nothing ever swept
        // those entries). The bookkeeping must stay empty here.
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for i in 0..10_000u64 {
            tokens.push(q.schedule(SimTime::from_nanos(i + 1), i));
        }
        while q.pop().is_some() {}
        for t in tokens {
            assert!(!q.cancel(t));
        }
        assert_eq!(q.cancelled_backlog(), 0);
        assert_eq!(q.len(), 0);
        // Pre-fire cancellations are swept once their heap entry pops.
        let a = q.schedule(SimTime::from_nanos(100_000), 0);
        q.schedule(SimTime::from_nanos(100_001), 1);
        assert!(q.cancel(a));
        assert_eq!(q.cancelled_backlog(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.cancelled_backlog(), 0);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        q.cancel(t1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 1));
        // Schedule relative to the new now.
        q.schedule(q.now() + crate::time::SimDuration::from_nanos(5), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (15, 2));
    }
}
