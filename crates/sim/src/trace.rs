//! Deterministic, bounded scheduler trace layer.
//!
//! Root-causing a scheduling bug in a discrete-event simulation needs
//! the *sequence* of decisions, not just end-of-run counters. This
//! module provides a zero-dependency trace facility the whole
//! workspace shares:
//!
//! - [`Tracer`] is a cheaply cloneable handle (`Rc<RefCell<_>>`) that
//!   layers hand to each other; every subsystem holds an
//!   `Option<Tracer>` so the disabled path is a single branch.
//! - Events go into a **bounded ring** ([`TraceConfig::capacity`]):
//!   memory never grows with run length; the oldest events are dropped
//!   and counted ([`Tracer::dropped`]).
//! - Every emit also bumps a per-kind counter in a `BTreeMap`, so
//!   counter export order is deterministic.
//! - [`Tracer::to_tsv`] renders a stable, byte-identical-for-identical-
//!   seeds TSV (events in emission order, then counters) — the
//!   determinism tests fingerprint it.
//! - The query API ([`Tracer::events_on`], [`Tracer::matching`],
//!   [`Tracer::causal_pairs`]) lets tests assert *causal* scheduler
//!   invariants ("every hw-probe VM-exit was preceded by a probe IRQ
//!   on that CPU") instead of aggregate ones.
//!
//! Event ordering is by emission sequence number. Timestamps are the
//! emitter's best-known simulation time and are *not* guaranteed to be
//! globally monotone: the kernel stamps intra-call times (e.g. a
//! dispatch at `now + context_switch`) that can run slightly ahead of
//! the machine clock. Causality queries therefore use `seq`, never
//! `at`.
//!
//! # Dump-on-failure
//!
//! Set `TAICHI_TRACE=<path>` and hold a [`FailureDump`] guard in a
//! test: if the test panics, the guard writes the trace TSV to
//! `<path>` on unwind so the failing schedule can be inspected.

use crate::time::SimTime;

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::rc::Rc;

/// CPU column value for events not attributable to a single CPU.
pub const NO_CPU: u32 = u32::MAX;

/// Trace knobs (carried by the machine configuration).
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Master switch. Off by default: no tracer is constructed and
    /// every hook is a `None` check.
    pub enabled: bool,
    /// Ring capacity in events. Oldest events are evicted (and
    /// counted) beyond this.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 65_536,
        }
    }
}

/// What happened. Payloads are small `Copy` data; string payloads are
/// `&'static str` names so events stay `Copy` and allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// The vCPU scheduler granted `vcpu` the CPU (DP→CP yield or
    /// CP-pCPU fallback placement).
    YieldGrant {
        /// Index of the granted vCPU.
        vcpu: u32,
    },
    /// A yield was vetoed by the pipeline-occupancy signal (§9).
    YieldVeto {
        /// Packets in flight through the accelerator for this CPU.
        inflight: u32,
    },
    /// A DP core crossed its idle threshold but no vCPU was runnable.
    YieldNoRunnable,
    /// VM-enter completed; `vcpu` is now in guest mode.
    VmEnter {
        /// Index of the entered vCPU.
        vcpu: u32,
    },
    /// VM-exit began for `vcpu` with the *raw* hardware exit reason
    /// (the controllers may reinterpret a slice expiry as a probe hit;
    /// the trace records what the hardware saw).
    VmExit {
        /// Index of the exiting vCPU.
        vcpu: u32,
        /// Exit reason name (e.g. `"hw_probe"`, `"slice_expired"`).
        reason: &'static str,
    },
    /// The adaptive slice controller changed this CPU's slice.
    SliceAdapt {
        /// New slice length in nanoseconds.
        ns: u64,
    },
    /// The adaptive yield controller changed this CPU's empty-poll
    /// threshold.
    ThresholdAdapt {
        /// New threshold in polls.
        polls: u64,
    },
    /// §4.1 safe rescheduling: `vcpu` exited inside a lock context and
    /// is being re-placed on this CPU.
    LockReschedule {
        /// Index of the rescheduled vCPU.
        vcpu: u32,
    },
    /// The unified IPI orchestrator routed an IPI.
    IpiRoute {
        /// Destination CPU.
        dst: u32,
        /// Route taken: `"direct"`, `"posted"`, or `"wake"`.
        route: &'static str,
    },
    /// The hardware workload probe's IRQ arrived at a V-state CPU.
    ProbeIrq,
    /// The delivery-time probe re-check caught a packet that raced a
    /// yield (the core was P-state at ingest).
    ProbeRecheck,
    /// A softirq was newly raised on this CPU.
    SoftirqRaise {
        /// Softirq name (e.g. `"taichi_vcpu"`).
        kind: &'static str,
    },
    /// A pending softirq was dispatched on this CPU.
    SoftirqDispatch {
        /// Softirq name.
        kind: &'static str,
    },
    /// The kernel preempted the running thread at slice expiry.
    Preempt {
        /// Preempted thread.
        tid: u64,
    },
    /// A thread entered a non-preemptible routine.
    NonPreemptibleEnter {
        /// The thread.
        tid: u64,
    },
    /// A thread left a non-preemptible routine.
    NonPreemptibleLeave {
        /// The thread.
        tid: u64,
    },
    /// The accelerator began preprocessing a packet (stage ②).
    AccelPreprocess {
        /// Packet ID.
        pkt: u64,
    },
    /// The accelerator consulted the V-state table for a packet.
    AccelVCheck {
        /// Packet ID.
        pkt: u64,
        /// Whether the destination CPU was in V-state.
        vstate: bool,
    },
    /// A packet finished stage ③ and became visible to software.
    AccelTransferDone {
        /// Packet ID.
        pkt: u64,
    },
    /// The fault-injection layer fired a planned fault.
    FaultInject {
        /// Fault name (e.g. `"ipi_drop"`, `"accel_stall"`).
        kind: &'static str,
    },
    /// The scheduler invoked a graceful-degradation policy in response
    /// to an injected fault.
    Degrade {
        /// Degradation action name (e.g. `"ipi_resend"`,
        /// `"yield_clamp"`).
        action: &'static str,
    },
}

/// Payload-free discriminant of [`TraceKind`], used for queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum TraceTag {
    YieldGrant,
    YieldVeto,
    YieldNoRunnable,
    VmEnter,
    VmExit,
    SliceAdapt,
    ThresholdAdapt,
    LockReschedule,
    IpiRoute,
    ProbeIrq,
    ProbeRecheck,
    SoftirqRaise,
    SoftirqDispatch,
    Preempt,
    NonPreemptibleEnter,
    NonPreemptibleLeave,
    AccelPreprocess,
    AccelVCheck,
    AccelTransferDone,
    FaultInject,
    Degrade,
}

impl TraceTag {
    /// Stable snake_case name used in the TSV and counter registry.
    pub fn name(self) -> &'static str {
        match self {
            TraceTag::YieldGrant => "yield_grant",
            TraceTag::YieldVeto => "yield_veto",
            TraceTag::YieldNoRunnable => "yield_no_runnable",
            TraceTag::VmEnter => "vm_enter",
            TraceTag::VmExit => "vm_exit",
            TraceTag::SliceAdapt => "slice_adapt",
            TraceTag::ThresholdAdapt => "threshold_adapt",
            TraceTag::LockReschedule => "lock_reschedule",
            TraceTag::IpiRoute => "ipi_route",
            TraceTag::ProbeIrq => "probe_irq",
            TraceTag::ProbeRecheck => "probe_recheck",
            TraceTag::SoftirqRaise => "softirq_raise",
            TraceTag::SoftirqDispatch => "softirq_dispatch",
            TraceTag::Preempt => "preempt",
            TraceTag::NonPreemptibleEnter => "nonpreemptible_enter",
            TraceTag::NonPreemptibleLeave => "nonpreemptible_leave",
            TraceTag::AccelPreprocess => "accel_preprocess",
            TraceTag::AccelVCheck => "accel_vcheck",
            TraceTag::AccelTransferDone => "accel_transfer_done",
            TraceTag::FaultInject => "fault_inject",
            TraceTag::Degrade => "degrade",
        }
    }
}

impl TraceKind {
    /// The payload-free discriminant.
    pub fn tag(&self) -> TraceTag {
        match self {
            TraceKind::YieldGrant { .. } => TraceTag::YieldGrant,
            TraceKind::YieldVeto { .. } => TraceTag::YieldVeto,
            TraceKind::YieldNoRunnable => TraceTag::YieldNoRunnable,
            TraceKind::VmEnter { .. } => TraceTag::VmEnter,
            TraceKind::VmExit { .. } => TraceTag::VmExit,
            TraceKind::SliceAdapt { .. } => TraceTag::SliceAdapt,
            TraceKind::ThresholdAdapt { .. } => TraceTag::ThresholdAdapt,
            TraceKind::LockReschedule { .. } => TraceTag::LockReschedule,
            TraceKind::IpiRoute { .. } => TraceTag::IpiRoute,
            TraceKind::ProbeIrq => TraceTag::ProbeIrq,
            TraceKind::ProbeRecheck => TraceTag::ProbeRecheck,
            TraceKind::SoftirqRaise { .. } => TraceTag::SoftirqRaise,
            TraceKind::SoftirqDispatch { .. } => TraceTag::SoftirqDispatch,
            TraceKind::Preempt { .. } => TraceTag::Preempt,
            TraceKind::NonPreemptibleEnter { .. } => TraceTag::NonPreemptibleEnter,
            TraceKind::NonPreemptibleLeave { .. } => TraceTag::NonPreemptibleLeave,
            TraceKind::AccelPreprocess { .. } => TraceTag::AccelPreprocess,
            TraceKind::AccelVCheck { .. } => TraceTag::AccelVCheck,
            TraceKind::AccelTransferDone { .. } => TraceTag::AccelTransferDone,
            TraceKind::FaultInject { .. } => TraceTag::FaultInject,
            TraceKind::Degrade { .. } => TraceTag::Degrade,
        }
    }

    /// Stable snake_case name.
    pub fn name(&self) -> &'static str {
        self.tag().name()
    }

    fn detail(&self) -> String {
        match self {
            TraceKind::YieldGrant { vcpu } => format!("vcpu={vcpu}"),
            TraceKind::YieldVeto { inflight } => format!("inflight={inflight}"),
            TraceKind::YieldNoRunnable => "-".into(),
            TraceKind::VmEnter { vcpu } => format!("vcpu={vcpu}"),
            TraceKind::VmExit { vcpu, reason } => {
                format!("vcpu={vcpu} reason={reason}")
            }
            TraceKind::SliceAdapt { ns } => format!("ns={ns}"),
            TraceKind::ThresholdAdapt { polls } => format!("polls={polls}"),
            TraceKind::LockReschedule { vcpu } => format!("vcpu={vcpu}"),
            TraceKind::IpiRoute { dst, route } => format!("dst={dst} route={route}"),
            TraceKind::ProbeIrq | TraceKind::ProbeRecheck => "-".into(),
            TraceKind::SoftirqRaise { kind } | TraceKind::SoftirqDispatch { kind } => {
                format!("kind={kind}")
            }
            TraceKind::Preempt { tid }
            | TraceKind::NonPreemptibleEnter { tid }
            | TraceKind::NonPreemptibleLeave { tid } => format!("tid={tid}"),
            TraceKind::AccelPreprocess { pkt } | TraceKind::AccelTransferDone { pkt } => {
                format!("pkt={pkt}")
            }
            TraceKind::AccelVCheck { pkt, vstate } => {
                format!("pkt={pkt} vstate={vstate}")
            }
            TraceKind::FaultInject { kind } => format!("kind={kind}"),
            TraceKind::Degrade { action } => format!("action={action}"),
        }
    }
}

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emission sequence number (total order over the whole run,
    /// including evicted events).
    pub seq: u64,
    /// Simulation time known to the emitter.
    pub at: SimTime,
    /// CPU the event concerns ([`NO_CPU`] when not applicable).
    pub cpu: u32,
    /// What happened.
    pub kind: TraceKind,
}

#[derive(Debug)]
struct TraceBuf {
    capacity: usize,
    next_seq: u64,
    now: SimTime,
    dropped: u64,
    ring: VecDeque<TraceEvent>,
    counters: BTreeMap<&'static str, u64>,
}

/// Cloneable handle to a shared trace buffer.
///
/// Cloning is cheap (reference count); all clones observe and append
/// to the same ring. Not `Send`: the simulation is single-threaded by
/// design.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Rc<RefCell<TraceBuf>>,
}

impl Tracer {
    /// Creates a tracer with the given ring capacity (min 1).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(TraceBuf {
                capacity: capacity.max(1),
                next_seq: 0,
                now: SimTime::ZERO,
                dropped: 0,
                ring: VecDeque::new(),
                counters: BTreeMap::new(),
            })),
        }
    }

    /// Creates a tracer from a config; `None` when disabled.
    pub fn from_config(cfg: &TraceConfig) -> Option<Self> {
        cfg.enabled.then(|| Tracer::new(cfg.capacity))
    }

    /// Advances the tracer clock (the event loop calls this once per
    /// popped event; emitters without their own `now` use it).
    pub fn set_time(&self, now: SimTime) {
        self.inner.borrow_mut().now = now;
    }

    /// Current tracer clock.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Emits an event stamped with the tracer clock.
    pub fn emit(&self, cpu: u32, kind: TraceKind) {
        let now = self.inner.borrow().now;
        self.emit_at(now, cpu, kind);
    }

    /// Emits an event with an explicit timestamp.
    pub fn emit_at(&self, at: SimTime, cpu: u32, kind: TraceKind) {
        let mut b = self.inner.borrow_mut();
        let seq = b.next_seq;
        b.next_seq += 1;
        *b.counters.entry(kind.name()).or_insert(0) += 1;
        if b.ring.len() == b.capacity {
            b.ring.pop_front();
            b.dropped += 1;
        }
        b.ring.push_back(TraceEvent { seq, at, cpu, kind });
    }

    /// Bumps a named counter without emitting a ring event.
    pub fn bump(&self, name: &'static str) {
        *self.inner.borrow_mut().counters.entry(name).or_insert(0) += 1;
    }

    /// Events currently in the ring.
    pub fn len(&self) -> usize {
        self.inner.borrow().ring.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Total events ever emitted (including evicted ones).
    pub fn total_emitted(&self) -> u64 {
        self.inner.borrow().next_seq
    }

    /// Value of a named counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in deterministic (name) order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// A copy of the buffered events in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().ring.iter().copied().collect()
    }

    /// Buffered events that concern `cpu`, in emission order.
    pub fn events_on(&self, cpu: u32) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .ring
            .iter()
            .filter(|e| e.cpu == cpu)
            .copied()
            .collect()
    }

    /// Buffered events whose kind matches `tag`, in emission order.
    pub fn matching(&self, tag: TraceTag) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .ring
            .iter()
            .filter(|e| e.kind.tag() == tag)
            .copied()
            .collect()
    }

    /// Per-CPU timelines: every buffered event grouped by CPU, each
    /// group in emission order.
    pub fn per_cpu_timelines(&self) -> BTreeMap<u32, Vec<TraceEvent>> {
        let mut map: BTreeMap<u32, Vec<TraceEvent>> = BTreeMap::new();
        for e in self.inner.borrow().ring.iter() {
            map.entry(e.cpu).or_default().push(*e);
        }
        map
    }

    /// For every buffered event whose tag is in `effects`, pairs it
    /// with the most recent *earlier* event on the **same CPU** whose
    /// tag is in `causes` (`None` when no such cause exists in the
    /// buffer). Ordering is by emission sequence, so a cause emitted
    /// at the same simulated instant still counts.
    pub fn causal_pairs(
        &self,
        causes: &[TraceTag],
        effects: &[TraceTag],
    ) -> Vec<(Option<TraceEvent>, TraceEvent)> {
        let mut latest_cause: BTreeMap<u32, TraceEvent> = BTreeMap::new();
        let mut out = Vec::new();
        for e in self.inner.borrow().ring.iter() {
            let tag = e.kind.tag();
            if effects.contains(&tag) {
                out.push((latest_cause.get(&e.cpu).copied(), *e));
            }
            if causes.contains(&tag) {
                latest_cause.insert(e.cpu, *e);
            }
        }
        out
    }

    /// Per-ring eviction warning: `Some(message)` when this ring has
    /// evicted events, `None` when the buffer still holds the complete
    /// schedule. The message reports **this ring's** drop and survivor
    /// counts — when a process exports many machines' traces, each
    /// export must consult its own ring, never a process-global
    /// tally.
    pub fn eviction_warning(&self) -> Option<String> {
        let b = self.inner.borrow();
        if b.dropped == 0 {
            return None;
        }
        Some(format!(
            "trace ring evicted {} event(s); the TSV holds only the \
             newest {} (raise TraceConfig::capacity for a full schedule)",
            b.dropped,
            b.ring.len()
        ))
    }

    /// Renders the trace as a stable TSV: a header, one line per
    /// buffered event, then the counter registry and drop count as
    /// `#`-prefixed footer lines. Identical seeds produce byte-
    /// identical output.
    pub fn to_tsv(&self) -> String {
        let b = self.inner.borrow();
        let mut s = String::with_capacity(64 + b.ring.len() * 48);
        s.push_str("# taichi-trace v1\n");
        s.push_str("# seq\tns\tcpu\tkind\tdetail\n");
        for e in b.ring.iter() {
            let _ = write!(s, "{}\t{}\t", e.seq, e.at.as_nanos());
            if e.cpu == NO_CPU {
                s.push('-');
            } else {
                let _ = write!(s, "{}", e.cpu);
            }
            let _ = writeln!(s, "\t{}\t{}", e.kind.name(), e.kind.detail());
        }
        for (name, v) in b.counters.iter() {
            let _ = writeln!(s, "# counter\t{name}\t{v}");
        }
        let _ = writeln!(s, "# dropped\t{}", b.dropped);
        s
    }
}

/// Process-global registry of claimed trace-export destinations.
///
/// When many machines export TSVs in one process under an explicit
/// `TAICHI_TRACE=<path>`, writing the same path from every export
/// silently clobbers all rings but the last — and the eviction
/// warning printed alongside then describes a different ring than the
/// file holds. [`claim_export_path`] makes the destination per-export.
static EXPORT_PATHS: std::sync::OnceLock<std::sync::Mutex<BTreeMap<String, u64>>> =
    std::sync::OnceLock::new();

/// Claims an explicit trace-export destination for one ring's TSV.
///
/// The first claim of `path` in this process gets it verbatim; every
/// subsequent claim gets the disambiguated `<path>.<n>` (n counting
/// from 1) plus a warning message explaining the rename, so no export
/// overwrites another ring's schedule. Claims are process-global and
/// thread-safe.
pub fn claim_export_path(path: &str) -> (std::path::PathBuf, Option<String>) {
    let mut map = EXPORT_PATHS
        .get_or_init(|| std::sync::Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let n = map.entry(path.to_string()).or_insert(0);
    *n += 1;
    if *n == 1 {
        (std::path::PathBuf::from(path), None)
    } else {
        let unique = format!("{path}.{}", *n - 1);
        let warning = format!(
            "TAICHI_TRACE destination {path} was already written by an \
             earlier export in this process; writing {unique} instead \
             so the earlier ring's schedule survives"
        );
        (std::path::PathBuf::from(unique), Some(warning))
    }
}

/// Forgets all claimed export destinations (test helper, mirroring
/// `env::reset_warned`).
#[doc(hidden)]
pub fn reset_export_paths() {
    if let Some(m) = EXPORT_PATHS.get() {
        m.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// RAII guard that writes the trace to `$TAICHI_TRACE` if the holding
/// thread unwinds with a panic (i.e. a test fails). No-op otherwise.
#[derive(Debug)]
pub struct FailureDump {
    tracer: Tracer,
    label: String,
}

impl FailureDump {
    /// Arms a dump guard labelled `label` (shown in the stderr note).
    pub fn new(tracer: &Tracer, label: &str) -> Self {
        FailureDump {
            tracer: tracer.clone(),
            label: label.to_string(),
        }
    }
}

impl Drop for FailureDump {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let Ok(path) = std::env::var("TAICHI_TRACE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let (path, clash) = claim_export_path(&path);
        let path = path.display();
        if let Some(w) = clash {
            eprintln!("[taichi-trace] {}: warning: {w}", self.label);
        }
        match std::fs::write(path.to_string(), self.tracer.to_tsv()) {
            Ok(()) => eprintln!("[taichi-trace] {}: wrote {path}", self.label),
            Err(e) => eprintln!("[taichi-trace] {}: could not write {path}: {e}", self.label),
        }
        if let Some(w) = self.tracer.eviction_warning() {
            eprintln!("[taichi-trace] {}: warning: {w}", self.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tracer: &Tracer, at_ns: u64, cpu: u32, kind: TraceKind) {
        tracer.emit_at(SimTime::from_nanos(at_ns), cpu, kind);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(4);
        for i in 0..10 {
            ev(&t, i, 0, TraceKind::ProbeIrq);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.total_emitted(), 10);
        // The survivors are the newest four, in order.
        let seqs: Vec<u64> = t.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // Counters see every emit, not just survivors.
        assert_eq!(t.counter("probe_irq"), 10);
    }

    #[test]
    fn queries_filter_by_cpu_and_tag() {
        let t = Tracer::new(64);
        ev(&t, 1, 0, TraceKind::ProbeIrq);
        ev(&t, 2, 1, TraceKind::VmEnter { vcpu: 3 });
        ev(
            &t,
            3,
            0,
            TraceKind::VmExit {
                vcpu: 3,
                reason: "hw_probe",
            },
        );
        assert_eq!(t.events_on(0).len(), 2);
        assert_eq!(t.events_on(1).len(), 1);
        assert_eq!(t.matching(TraceTag::VmEnter).len(), 1);
        assert_eq!(t.matching(TraceTag::SoftirqRaise).len(), 0);
        let tl = t.per_cpu_timelines();
        assert_eq!(tl[&0].len(), 2);
        assert_eq!(tl[&1].len(), 1);
    }

    #[test]
    fn causal_pairs_match_nearest_prior_cause_on_same_cpu() {
        let t = Tracer::new(64);
        ev(&t, 1, 0, TraceKind::ProbeIrq); // cause on cpu 0
        ev(
            &t,
            2,
            1,
            TraceKind::VmExit {
                vcpu: 9,
                reason: "x",
            },
        ); // no cause on cpu 1
        ev(&t, 3, 0, TraceKind::ProbeIrq); // newer cause on cpu 0
        ev(
            &t,
            4,
            0,
            TraceKind::VmExit {
                vcpu: 9,
                reason: "x",
            },
        );
        let pairs = t.causal_pairs(&[TraceTag::ProbeIrq], &[TraceTag::VmExit]);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].0.is_none(), "cpu 1 exit has no probe IRQ");
        let (cause, effect) = (&pairs[1].0, &pairs[1].1);
        assert_eq!(cause.expect("paired").seq, 2, "nearest prior cause");
        assert_eq!(effect.seq, 3);
    }

    #[test]
    fn effect_at_same_instant_still_pairs() {
        let t = Tracer::new(8);
        ev(&t, 5, 2, TraceKind::ProbeIrq);
        ev(
            &t,
            5,
            2,
            TraceKind::VmExit {
                vcpu: 0,
                reason: "hw_probe",
            },
        );
        let pairs = t.causal_pairs(&[TraceTag::ProbeIrq], &[TraceTag::VmExit]);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].0.is_some());
    }

    #[test]
    fn tsv_is_stable_and_self_describing() {
        let t = Tracer::new(8);
        ev(
            &t,
            10,
            3,
            TraceKind::SoftirqRaise {
                kind: "taichi_vcpu",
            },
        );
        ev(&t, 12, NO_CPU, TraceKind::SliceAdapt { ns: 100_000 });
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("# taichi-trace v1\n"));
        assert!(tsv.contains("0\t10\t3\tsoftirq_raise\tkind=taichi_vcpu\n"));
        assert!(tsv.contains("1\t12\t-\tslice_adapt\tns=100000\n"));
        assert!(tsv.contains("# counter\tslice_adapt\t1\n"));
        assert!(tsv.contains("# counter\tsoftirq_raise\t1\n"));
        assert!(tsv.ends_with("# dropped\t0\n"));
        // Rendering twice is byte-identical.
        assert_eq!(tsv, t.to_tsv());
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let t = Tracer::new(8);
        ev(&t, 1, 0, TraceKind::VmEnter { vcpu: 0 });
        ev(&t, 1, 0, TraceKind::ProbeIrq);
        t.bump("custom");
        let names: Vec<&str> = t.counters().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(t.counter("custom"), 1);
        assert_eq!(t.counter("never"), 0);
    }

    #[test]
    fn clock_drives_emit() {
        let t = Tracer::new(8);
        t.set_time(SimTime::from_nanos(77));
        t.emit(1, TraceKind::ProbeRecheck);
        assert_eq!(t.snapshot()[0].at.as_nanos(), 77);
        assert_eq!(t.now().as_nanos(), 77);
    }

    #[test]
    fn eviction_accounting_is_per_ring() {
        // Two machines' rings in one process: only the overflowing
        // ring warns, and each ring's drop counter is its own.
        let small = Tracer::new(2);
        let large = Tracer::new(64);
        for i in 0..8 {
            ev(&small, i, 0, TraceKind::ProbeIrq);
            ev(&large, i, 0, TraceKind::ProbeIrq);
        }
        assert_eq!(small.dropped(), 6);
        assert_eq!(large.dropped(), 0);
        let w = small.eviction_warning().expect("small ring overflowed");
        assert!(w.contains("6 event(s)"), "{w}");
        assert!(w.contains("newest 2"), "{w}");
        assert!(large.eviction_warning().is_none());
        // Draining one ring's warning must not consume the other's.
        assert!(small.eviction_warning().is_some());
    }

    #[test]
    fn export_path_claims_disambiguate() {
        reset_export_paths();
        let (p1, w1) = claim_export_path("/tmp/taichi-claim-test.tsv");
        assert_eq!(p1, std::path::PathBuf::from("/tmp/taichi-claim-test.tsv"));
        assert!(w1.is_none());
        let (p2, w2) = claim_export_path("/tmp/taichi-claim-test.tsv");
        assert_eq!(p2, std::path::PathBuf::from("/tmp/taichi-claim-test.tsv.1"));
        assert!(w2.expect("second claim warns").contains("already written"));
        let (p3, _) = claim_export_path("/tmp/taichi-claim-test.tsv");
        assert_eq!(p3, std::path::PathBuf::from("/tmp/taichi-claim-test.tsv.2"));
        // A different destination is untouched by earlier claims.
        let (q1, wq) = claim_export_path("/tmp/taichi-claim-other.tsv");
        assert_eq!(q1, std::path::PathBuf::from("/tmp/taichi-claim-other.tsv"));
        assert!(wq.is_none());
        reset_export_paths();
        let (p4, w4) = claim_export_path("/tmp/taichi-claim-test.tsv");
        assert_eq!(p4, std::path::PathBuf::from("/tmp/taichi-claim-test.tsv"));
        assert!(w4.is_none());
    }

    #[test]
    fn from_config_respects_enable() {
        assert!(Tracer::from_config(&TraceConfig::default()).is_none());
        let on = TraceConfig {
            enabled: true,
            capacity: 16,
        };
        assert!(Tracer::from_config(&on).is_some());
    }
}
