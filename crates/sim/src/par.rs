//! Deterministic parallel fan-out for independent simulation runs.
//!
//! Every experiment in this repo is a set of fully self-contained
//! `(mode, seed, knobs)` machine runs: each builds its own `Machine`,
//! its own RNG streams, and never touches shared state. That makes the
//! sweep embarrassingly parallel *without* giving up determinism — the
//! only ordering that matters is the order results are **emitted** in,
//! and [`sweep`] returns them in input order regardless of which worker
//! finished first.
//!
//! The implementation is plain `std::thread` (the workspace builds
//! offline; no rayon): workers pull job indices from an atomic counter
//! and write results into per-index cells, so no two workers ever
//! contend on the same result and no channel reordering can occur.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the `TAICHI_WORKERS` environment variable when
/// set (`0` or a value that fails to parse falls back with a one-shot
/// warning to stderr), otherwise the machine's available parallelism.
pub fn default_workers() -> usize {
    let var = std::env::var("TAICHI_WORKERS").ok();
    let (workers, warning) = resolve_workers(var.as_deref(), available());
    if let Some(w) = warning {
        // Deduplicated: nested sweeps would otherwise repeat the same
        // line once per `sweep` call.
        crate::env::warn_once("TAICHI_WORKERS", &w);
    }
    workers
}

/// Pure resolution of the `TAICHI_WORKERS` override: returns the worker
/// count plus an optional warning line. Separated from the env read so
/// both fallback paths are unit-testable without mutating process
/// state.
fn resolve_workers(var: Option<&str>, available: usize) -> (usize, Option<String>) {
    let Some(s) = var else {
        return (available, None);
    };
    match s.trim().parse::<usize>() {
        Ok(0) => (
            1,
            Some(
                "warning: TAICHI_WORKERS=0 requests zero workers; \
                 clamping to 1 (serial)"
                    .to_string(),
            ),
        ),
        Ok(n) => (n, None),
        Err(_) => (
            available,
            Some(format!(
                "warning: TAICHI_WORKERS={s:?} is not a valid worker count; \
                 using available parallelism"
            )),
        ),
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items` on [`default_workers`] threads, returning the
/// results **in input order** (bit-identical to a serial loop for
/// self-contained jobs).
pub fn sweep<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    sweep_with(default_workers(), items, f)
}

/// Like [`sweep`] with an explicit worker count. `workers <= 1` runs
/// the jobs serially on the calling thread (the reference ordering the
/// parallel path must reproduce).
pub fn sweep_with<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result mutex poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex poisoned")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // Jobs finish out of order (larger inputs first by sleep), yet
        // results come back in input order.
        let items: Vec<u64> = (0..32).collect();
        let out = sweep_with(4, items.clone(), |i| {
            std::thread::sleep(std::time::Duration::from_micros(200 - i * 5));
            i * 10
        });
        assert_eq!(out, items.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        let f = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial = sweep_with(1, items.clone(), f);
        let parallel = sweep_with(8, items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep_with(4, empty, |i| i).is_empty());
        assert_eq!(sweep_with(4, vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = sweep_with(16, vec![1u32, 2], |i| i * 2);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn zero_workers_warns_and_clamps_to_serial() {
        let (workers, warning) = resolve_workers(Some("0"), 8);
        assert_eq!(workers, 1);
        let w = warning.expect("zero must warn");
        assert!(w.contains("TAICHI_WORKERS=0"), "{w}");
    }

    #[test]
    fn unparsable_workers_warns_and_uses_available() {
        let (workers, warning) = resolve_workers(Some("lots"), 6);
        assert_eq!(workers, 6);
        let w = warning.expect("garbage must warn");
        assert!(w.contains("\"lots\""), "{w}");
    }

    #[test]
    fn valid_and_unset_workers_resolve_silently() {
        assert_eq!(resolve_workers(Some(" 3 "), 8), (3, None));
        assert_eq!(resolve_workers(None, 5), (5, None));
    }
}
