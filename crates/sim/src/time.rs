//! Nanosecond-resolution virtual time.
//!
//! The simulation clock is a plain `u64` count of nanoseconds since
//! simulated boot, wrapped in [`SimTime`] so it cannot be confused with
//! durations ([`SimDuration`]) or wall-clock time. All arithmetic is
//! checked in debug builds and saturating semantics are available
//! explicitly where components need them.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulated boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant, used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since boot.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since boot.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since boot.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the elapsed duration since `earlier`, or zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the elapsed duration since `earlier`, or `None` if
    /// `earlier` is in the future. Accounting paths use this instead of
    /// [`saturating_since`](Self::saturating_since) when an underflow
    /// means a bookkeeping bug rather than an intended clamp, so the
    /// caller can assert/trace instead of silently charging zero.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Returns `self + d` without panicking, clamping at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a duration from fractional microseconds, clamping
    /// negatives to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns `self - other`, or `None` if `other` is larger. The
    /// checked sibling of [`saturating_sub`](Self::saturating_sub) for
    /// call sites where underflow indicates a bug.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Returns `self * k` clamped at [`SimDuration::MAX`].
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Returns true when the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= earlier.0,
            "SimTime subtraction went negative: {} - {}",
            self.0,
            earlier.0
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(7).as_nanos(), 7_000_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 13_000);
        assert_eq!((t + d) - t, SimDuration::from_micros(3));
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(late.saturating_since(early).as_nanos(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn fractional_constructors() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_min_max() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(12_500).to_string(), "12.500us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_mul_clamps() {
        let d = SimDuration::from_nanos(u64::MAX / 2);
        assert_eq!(d.saturating_mul(4), SimDuration::MAX);
    }

    #[test]
    fn checked_variants_signal_underflow() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_nanos(4)));
        assert_eq!(early.checked_since(late), None);
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(9);
        assert_eq!(b.checked_sub(a), Some(SimDuration::from_nanos(6)));
        assert_eq!(a.checked_sub(b), None);
    }
}
