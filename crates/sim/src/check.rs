//! Minimal deterministic property-testing harness.
//!
//! The workspace must build and test without network access, so instead
//! of an external property-testing crate the randomized test suites use
//! this helper: every property runs a fixed number of cases, each case
//! driven by an [`Rng`] stream derived from the property name and the
//! case index. Failures therefore reproduce exactly — rerunning the
//! test replays the same cases in the same order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// FNV-1a hash of the property name, used as the base seed so distinct
/// properties get decorrelated case streams.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Number of cases to run, honouring the `TAICHI_PROP_CASES` override.
pub fn case_count(default_cases: u64) -> u64 {
    std::env::var("TAICHI_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_cases)
}

/// Runs `f` for `cases` independent cases.
///
/// Each case receives `(case_index, rng)` where the RNG stream depends
/// only on `name` and the index; a panic inside a case is annotated
/// with the case index before being re-raised so it can be replayed in
/// isolation.
pub fn run_cases<F>(name: &str, cases: u64, mut f: F)
where
    F: FnMut(u64, &mut Rng),
{
    let cases = case_count(cases);
    for i in 0..cases {
        let mut rng = Rng::stream(name_seed(name), i);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(i, &mut rng)));
        if let Err(e) = outcome {
            eprintln!("property '{name}' failed at case {i}/{cases}");
            resume_unwind(e);
        }
    }
}

/// Generates a vector whose length and element values are uniform in
/// the given ranges (`len` may be empty when `len_lo == 0`).
pub fn vec_u64(rng: &mut Rng, len_lo: u64, len_hi: u64, val_lo: u64, val_hi: u64) -> Vec<u64> {
    let len = if len_lo == len_hi {
        len_lo
    } else {
        rng.gen_range(len_lo, len_hi)
    };
    (0..len).map(|_| rng.gen_range(val_lo, val_hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        run_cases("repro", 8, |_, rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        run_cases("repro", 8, |_, rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_names_decorrelate() {
        let mut a = Vec::new();
        run_cases("alpha", 4, |_, rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        run_cases("beta", 4, |_, rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn vec_u64_respects_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let v = vec_u64(&mut rng, 1, 10, 5, 50);
            assert!((1..10).contains(&(v.len() as u64)));
            assert!(v.iter().all(|&x| (5..50).contains(&x)));
        }
    }
}
