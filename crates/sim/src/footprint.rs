//! Per-machine memory-footprint profiles.
//!
//! A single hot machine wants every reservation made up front: the
//! event slab, the skipped-deadline heap, and the DP rx rings are all
//! sized for their worst case at construction so the steady-state loop
//! never allocates (the [`crate::alloc`] audit pins that down). A
//! fleet driver standing up thousands of mostly-idle machines wants
//! the opposite: start every per-machine structure small and let it
//! grow to that machine's actual working set, because eager worst-case
//! reservations multiplied by 4096 machines dominate the run's
//! resident memory.
//!
//! [`FootprintProfile`] names the two policies. It only moves *where
//! growth starts*, never what the simulation computes: every structure
//! behind it grows on demand to the same logical state, so traces,
//! stats, and CSVs are byte-identical across profiles — the fleet
//! identity matrix asserts exactly that.

use crate::env::env_parse_or_warn;
use crate::event::INITIAL_SLOTS;

/// How aggressively one simulated machine pre-reserves memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FootprintProfile {
    /// Reserve for the worst case at construction (single hot machine;
    /// the historical behaviour and the default).
    #[default]
    Hot,
    /// Start small and grow on demand (thousands of mostly-idle
    /// machines; the fleet drivers' default).
    Fleet,
}

impl FootprintProfile {
    /// Resolves the profile from `TAICHI_FOOTPRINT` (`hot` or `fleet`);
    /// unset/empty answers `default`, an unrecognized value warns once
    /// and answers `default` — the same contract as `TAICHI_QUEUE`.
    pub fn from_env_or(default: FootprintProfile) -> FootprintProfile {
        env_parse_or_warn("TAICHI_FOOTPRINT", |s| match s.trim() {
            "" => Ok(default),
            "hot" => Ok(FootprintProfile::Hot),
            "fleet" => Ok(FootprintProfile::Fleet),
            other => Err(format!(
                "warning: TAICHI_FOOTPRINT={other:?} is not a known footprint profile \
                 (expected \"hot\" or \"fleet\"); using the configured default"
            )),
        })
        .unwrap_or(default)
    }

    /// Initial event-slab reservation ([`crate::event::EventQueue`]).
    pub fn initial_event_slots(self) -> usize {
        match self {
            FootprintProfile::Hot => INITIAL_SLOTS,
            FootprintProfile::Fleet => 32,
        }
    }

    /// Initial skipped-deadline heap reservation (machine skip layer).
    pub fn skipped_deadline_capacity(self) -> usize {
        match self {
            FootprintProfile::Hot => 1024,
            FootprintProfile::Fleet => 16,
        }
    }

    /// Whether rx rings (DP services, per-tenant staging) reserve their
    /// full logical capacity up front. The capacity *bound* is
    /// identical either way — only the backing storage is lazy — so
    /// drop/reject accounting cannot differ.
    pub fn eager_rings(self) -> bool {
        matches!(self, FootprintProfile::Hot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_matches_historical_reservations() {
        let p = FootprintProfile::default();
        assert_eq!(p, FootprintProfile::Hot);
        assert_eq!(p.initial_event_slots(), INITIAL_SLOTS);
        assert_eq!(p.skipped_deadline_capacity(), 1024);
        assert!(p.eager_rings());
    }

    #[test]
    fn fleet_starts_small() {
        let p = FootprintProfile::Fleet;
        assert!(p.initial_event_slots() < INITIAL_SLOTS / 8);
        assert!(p.skipped_deadline_capacity() < 1024);
        assert!(!p.eager_rings());
    }
}
