//! Allocation-free small vector for hot-path scratch storage.
//!
//! [`InlineVec<T, N>`] keeps its first `N` elements in the struct
//! itself and spills the rest to a heap `Vec` that retains its
//! capacity across [`InlineVec::clear`]. A long-lived scratch buffer
//! therefore stops allocating entirely once it has seen its largest
//! burst — the property the zero-allocation harness
//! ([`crate::alloc`]) asserts over the whole engine.
//!
//! Elements must be `Copy`: that keeps the container trivially safe
//! (no drop obligations for the inline region) and matches every use —
//! kernel actions, CPU ids, thread ids — all of which are small plain
//! values. Reads hand out copies, so callers can iterate while holding
//! `&mut` access to everything around the buffer.

/// A grow-only vector with `N` inline slots and a reusable heap spill.
#[derive(Clone, Debug)]
pub struct InlineVec<T: Copy, const N: usize> {
    inline: [Option<T>; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// Creates an empty buffer (no heap allocation).
    pub const fn new() -> Self {
        InlineVec {
            inline: [None; N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends one element.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `index` (panics when out of bounds).
    #[inline]
    pub fn get(&self, index: usize) -> T {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        if index < N {
            self.inline[index].expect("initialized up to len")
        } else {
            self.spill[index - N]
        }
    }

    /// Iterates the elements in push order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let inline_len = self.len.min(N);
        self.inline[..inline_len]
            .iter()
            .map(|v| v.expect("initialized up to len"))
            .chain(self.spill.iter().copied())
    }

    /// Copies the elements into a `Vec` (tests and cold paths).
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// Empties the buffer, retaining spill capacity for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        for i in 0..10 {
            assert_eq!(v.get(i as usize), i as u32);
        }
        assert_eq!(v.to_vec(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..6 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        v.push(99);
        assert_eq!(v.to_vec(), vec![99]);
    }

    #[test]
    fn inline_boundary_exact() {
        let mut v: InlineVec<u8, 3> = InlineVec::new();
        for i in 0..3 {
            v.push(i);
        }
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_vec(), vec![0, 1, 2]);
        v.push(3);
        assert_eq!(v.get(3), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_len_panics() {
        let mut v: InlineVec<u8, 4> = InlineVec::new();
        v.push(1);
        v.get(1);
    }
}
