//! HDR-style log-linear histogram for latency recording.
//!
//! Values (typically nanoseconds) are bucketed with bounded relative
//! error: each power-of-two range is split into `SUB_BUCKETS` linear
//! sub-buckets, giving ~1.6% worst-case relative error with the default
//! of 64 sub-buckets — more than enough to report the percentiles the
//! paper's tables use (p50/p99/p999, min/avg/max/mdev).

use std::fmt;

/// Sub-buckets per power-of-two range; must be a power of two.
const SUB_BUCKETS: usize = 64;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// A log-linear histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    sum_sq: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            sum_sq: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value as u128);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let v = value as f64;
        self.sum_sq += v * v;
    }

    /// Records `n` occurrences of the same sample.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value as u128 * n as u128);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let v = value as f64;
        self.sum_sq += v * v * n as f64;
    }

    /// Merges another histogram into this one.
    ///
    /// Everything the fleet fold exports — bucket counts, `count`,
    /// `sum`, `min`/`max`, and therefore every quantile and the mean —
    /// is accumulated in saturating integer arithmetic, so the merge
    /// is exactly commutative and associative regardless of fold
    /// order. Only `sum_sq` (feeding [`Histogram::stddev`]) is a
    /// float accumulation and thus order-sensitive; order-invariant
    /// consumers must not export it.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.sum_sq += other.sum_sq;
    }

    /// Clears every sample while keeping the bucket vector's capacity,
    /// so epoch-oriented drivers can drain a histogram into an
    /// aggregate and reuse it allocation-free. Observably identical to
    /// a freshly constructed histogram: trailing zero buckets never
    /// affect counts, quantiles, or merges.
    pub fn reset(&mut self) {
        self.buckets.clear();
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum_sq = 0.0;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation (0.0 when fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.mean();
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Value at quantile `q` in `[0, 1]`, by bucket interpolation.
    ///
    /// Returns 0 for an empty histogram. `q <= 0` returns the minimum,
    /// `q >= 1` the maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                let (lo, hi) = Self::bucket_bounds(idx);
                // Report the bucket midpoint, clamped to observed range.
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience alias: percentile in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// Returns the empirical CDF as `(upper_bound, cumulative_fraction)`
    /// pairs, one per non-empty bucket.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            let (_, hi) = Self::bucket_bounds(idx);
            out.push((hi, seen as f64 / self.count as f64));
        }
        out
    }

    /// Fraction of samples strictly below `threshold`.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_bounds(idx);
            if hi <= threshold {
                below += c;
            } else if lo < threshold {
                // Linear interpolation within the straddling bucket.
                let frac = (threshold - lo) as f64 / (hi - lo).max(1) as f64;
                below += (c as f64 * frac) as u64;
            }
        }
        below as f64 / self.count as f64
    }

    /// Counts samples in `[lo, hi)` by whole-bucket attribution.
    pub fn count_between(&self, lo: u64, hi: u64) -> u64 {
        let mut total = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (blo, bhi) = Self::bucket_bounds(idx);
            let mid = blo + (bhi - blo) / 2;
            if mid >= lo && mid < hi {
                total += c;
            }
        }
        total
    }

    /// Maps a value to its bucket index.
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BITS;
        let sub = ((value >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
        ((exp - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Returns the `[lo, hi)` value range covered by bucket `idx`.
    ///
    /// The top tier's last bucket nominally ends at 2^64, which does
    /// not fit in a `u64`; its upper bound saturates to `u64::MAX`
    /// (the bucket is closed at the top instead of half-open). Without
    /// the saturation, recording a value at or near `u64::MAX` and
    /// then asking for any quantile overflowed the bound computation.
    fn bucket_bounds(idx: usize) -> (u64, u64) {
        let tier = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if tier == 0 {
            return (sub, sub + 1);
        }
        let shift = tier as u32 - 1;
        let base = (SUB_BUCKETS as u64) << shift;
        let width = 1u64 << shift;
        (
            base.saturating_add(sub * width),
            base.saturating_add(sub.saturating_add(1).saturating_mul(width)),
        )
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn empty_percentile_edges_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(100.0), 0);
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);
        assert_eq!(h.fraction_below(u64::MAX), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn quantile_extremes_hit_exact_min_and_max() {
        let mut h = Histogram::new();
        for v in [17u64, 900, 123_456, 7_777_777] {
            h.record(v);
        }
        // p=0 and p=100 bypass bucket interpolation and report the
        // exact observed extremes (as do out-of-range quantiles).
        assert_eq!(h.percentile(0.0), 17);
        assert_eq!(h.percentile(100.0), 7_777_777);
        assert_eq!(h.quantile(-0.5), 17);
        assert_eq!(h.quantile(1.5), 7_777_777);
    }

    #[test]
    fn merge_into_empty_adopts_other_extremes() {
        let mut empty = Histogram::new();
        let mut other = Histogram::new();
        other.record(5);
        other.record(50);
        empty.merge(&other);
        // An empty self starts with min = u64::MAX sentinel; the merge
        // must not leak it.
        assert_eq!(empty.min(), 5);
        assert_eq!(empty.max(), 50);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(30);
        let before = (h.count(), h.min(), h.max(), h.mean());
        h.merge(&Histogram::new());
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), before);
        // Merging two empties stays a well-formed empty histogram.
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.min(), 0);
        assert_eq!(e.max(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 3.8).abs() < 1e-9);
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_contain_values() {
        let mut prev_hi = 0u64;
        for idx in 0..(SUB_BUCKETS * 10) {
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, prev_hi, "gap at bucket {idx}");
            assert!(hi > lo);
            prev_hi = hi;
        }
    }

    #[test]
    fn index_and_bounds_agree() {
        // Every probed value must land in a bucket whose bounds contain it.
        let probes: Vec<u64> = (0..64)
            .chain([
                64,
                65,
                100,
                127,
                128,
                1000,
                4096,
                1 << 20,
                (1 << 40) + 12345,
            ])
            .collect();
        for v in probes {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v < hi, "value {v} not in bucket [{lo},{hi})");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        let v = 1_234_567u64;
        h.record(v);
        let got = h.quantile(0.5);
        let err = (got as f64 - v as f64).abs() / v as f64;
        assert!(err < 0.02, "relative error {err}");
    }

    #[test]
    fn percentiles_ordering() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        // p50 of uniform 100..=1_000_000 is ~500_000.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.05, "{p50}");
    }

    #[test]
    fn fraction_below_matches_uniform() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let f = h.fraction_below(500);
        assert!((f - 0.5).abs() < 0.02, "fraction {f}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..500u64 {
            a.record(i * 3);
            combined.record(i * 3);
        }
        for i in 0..700u64 {
            b.record(i * 7 + 1);
            combined.record(i * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.percentile(50.0), combined.percentile(50.0));
        assert_eq!(a.percentile(99.0), combined.percentile(99.0));
    }

    #[test]
    fn top_bucket_bounds_saturate_instead_of_overflowing() {
        // Recording a value in the topmost bucket and then asking for a
        // quantile used to overflow `bucket_bounds` (the nominal upper
        // bound of the last bucket is 2^64).
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Mid-bucket interpolation stays clamped to the observed range.
        let p50 = h.quantile(0.5);
        assert!(p50 >= h.min() && p50 <= h.max());
        // CDF and fraction_below walk the same bounds.
        assert!(!h.cdf().is_empty());
        assert!(h.fraction_below(u64::MAX) <= 1.0);
        let idx = Histogram::bucket_index(u64::MAX);
        let (lo, hi) = Histogram::bucket_bounds(idx);
        assert_eq!(hi, u64::MAX, "top bucket saturates instead of overflowing");
        assert!(hi > lo);
    }

    #[test]
    fn merge_of_disjoint_ranges_matches_combined() {
        // One histogram entirely below the other, with the upper one
        // reaching the saturated top bucket.
        let mut lo = Histogram::new();
        let mut hi = Histogram::new();
        let mut combined = Histogram::new();
        for v in [1u64, 2, 5, 60, 63] {
            lo.record(v);
            combined.record(v);
        }
        for v in [u64::MAX - 7, u64::MAX - 1, u64::MAX] {
            hi.record(v);
            combined.record(v);
        }
        let mut merged = lo.clone();
        merged.merge(&hi);
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.min(), combined.min());
        assert_eq!(merged.max(), combined.max());
        assert_eq!(merged.quantile(0.0), 1);
        assert_eq!(merged.quantile(1.0), u64::MAX);
        for q in [0.1, 0.25, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), combined.quantile(q), "q={q}");
        }
        // Merge in the opposite order: identical integer state.
        let mut rev = hi.clone();
        rev.merge(&lo);
        assert_eq!(rev.count(), merged.count());
        assert_eq!(rev.quantile(0.5), merged.quantile(0.5));
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut a = Histogram::new();
        a.record_n(100, u64::MAX);
        a.record_n(100, 5); // would wrap without saturation
        assert_eq!(a.count(), u64::MAX);
        let mut b = Histogram::new();
        b.record_n(200, u64::MAX - 1);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        // Quantiles stay well-defined on a saturated histogram.
        let q = a.quantile(0.5);
        assert!(q >= a.min() && q <= a.max());
    }

    #[test]
    fn quantile_on_merged_then_empty_stays_zero() {
        // Folding nothing but empties (a fleet epoch where no machine
        // completed a packet) must leave every quantile at the empty
        // sentinel, not leak min = u64::MAX through interpolation.
        let mut acc = Histogram::new();
        for _ in 0..4 {
            acc.merge(&Histogram::new());
        }
        assert!(acc.is_empty());
        assert_eq!(acc.quantile(0.5), 0);
        assert_eq!(acc.percentile(99.0), 0);
        assert_eq!(acc.min(), 0);
        assert_eq!(acc.max(), 0);
    }

    /// Randomized merge trees: fold a pool of leaf histograms in a
    /// random binary-tree order and compare against recording every
    /// sample into one histogram. Everything integer-valued must match
    /// exactly, independent of tree shape.
    #[test]
    fn randomized_merge_trees_equal_combined_recording() {
        let mut rng = crate::rng::Rng::new(0x4157_0001);
        for round in 0..20 {
            let leaves = 2 + (round % 7) as usize;
            let mut pool = Vec::new();
            let mut combined = Histogram::new();
            for _ in 0..leaves {
                let mut h = Histogram::new();
                let samples = rng.gen_range(0, 200); // empties included
                for _ in 0..samples {
                    // Mix magnitudes: sub-bucket exact values, mid-range,
                    // and occasional top-tier extremes.
                    let v = match rng.next_below(10) {
                        0 => rng.next_below(64),
                        1..=7 => rng.next_below(10_000_000),
                        8 => u64::MAX - rng.next_below(1000),
                        _ => rng.next_u64(),
                    };
                    h.record(v);
                    combined.record(v);
                }
                pool.push(h);
            }
            // Random merge tree: repeatedly merge two random nodes.
            while pool.len() > 1 {
                let i = rng.next_below(pool.len() as u64) as usize;
                let right = pool.swap_remove(i);
                let j = rng.next_below(pool.len() as u64) as usize;
                pool[j].merge(&right);
            }
            let folded = &pool[0];
            assert_eq!(folded.count(), combined.count(), "round {round}");
            assert_eq!(folded.min(), combined.min(), "round {round}");
            assert_eq!(folded.max(), combined.max(), "round {round}");
            assert_eq!(
                folded.mean().to_bits(),
                combined.mean().to_bits(),
                "round {round}: integer sum/count mean must be exact"
            );
            for p in [0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                assert_eq!(
                    folded.percentile(p),
                    combined.percentile(p),
                    "round {round} p{p}"
                );
            }
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(12345, 10);
        for _ in 0..10 {
            b.record(12345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        assert!(h.stddev() < 1e-9);
    }

    #[test]
    fn stddev_known_case() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(4);
        h.record(4);
        h.record(4);
        h.record(5);
        h.record(5);
        h.record(7);
        h.record(9);
        // Classic example: population stddev = 2.
        assert!((h.stddev() - 2.0).abs() < 1e-9, "{}", h.stddev());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * i % 100_000);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
