//! One-shot parsing of `TAICHI_*` environment overrides.
//!
//! Every selector the simulator reads from the environment
//! (`TAICHI_QUEUE`, `TAICHI_SEED`, `TAICHI_WORKERS`, `TAICHI_FAULTS`,
//! `TAICHI_POLICY`) shares the same contract: unset means the default,
//! a valid value applies, and an invalid value falls back **with a
//! warning** — silently ignoring a typoed selector would fake a
//! comparison run. The warning must also not repeat: several of these
//! variables are consulted per constructed object (every `EventQueue`
//! re-reads `TAICHI_QUEUE`), and a 100k-machine sweep repeating the
//! same line 100k times buries the one occurrence that matters.
//!
//! [`env_parse_or_warn`] centralizes the read-parse-warn-once shape;
//! [`warn_once`] is the underlying deduplicated emitter for callers
//! whose fallback logic does not fit the `Option` shape (for example
//! `TAICHI_WORKERS`, where `0` and garbage fall back differently).

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

fn warned() -> &'static Mutex<HashSet<String>> {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Emits `message` to stderr at most once per `key` per process.
/// Returns `true` when the message was actually printed.
pub fn warn_once(key: &str, message: &str) -> bool {
    let fresh = warned()
        .lock()
        .expect("env warning registry poisoned")
        .insert(key.to_string());
    if fresh {
        eprintln!("{message}");
    }
    fresh
}

/// Test-only: forget that `key` warned, so warn-once behaviour itself
/// can be exercised repeatedly in one process.
#[doc(hidden)]
pub fn reset_warned(key: &str) {
    warned()
        .lock()
        .expect("env warning registry poisoned")
        .remove(key);
}

/// Reads the environment variable `var` and runs `parse` on its value.
///
/// - unset: `None`, silently (the caller's default applies);
/// - `parse` returns `Ok(v)`: `Some(v)`;
/// - `parse` returns `Err(warning)`: the warning line is printed to
///   stderr **once per variable per process**, then `None` (the
///   caller's default applies, exactly as if the variable were unset).
///
/// The `Err` string is the complete warning line, so each caller keeps
/// its established message wording.
pub fn env_parse_or_warn<T>(var: &str, parse: impl FnOnce(&str) -> Result<T, String>) -> Option<T> {
    let raw = std::env::var(var).ok()?;
    match parse(&raw) {
        Ok(v) => Some(v),
        Err(warning) => {
            warn_once(var, &warning);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_silently_none() {
        assert_eq!(
            env_parse_or_warn("TAICHI_TEST_UNSET_VAR", |_| Ok(1u32)),
            None
        );
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("TAICHI_TEST_VALID", "42");
        let got = env_parse_or_warn("TAICHI_TEST_VALID", |s| {
            s.parse::<u32>().map_err(|e| e.to_string())
        });
        std::env::remove_var("TAICHI_TEST_VALID");
        assert_eq!(got, Some(42));
    }

    #[test]
    fn invalid_value_warns_once_then_stays_quiet() {
        reset_warned("TAICHI_TEST_BAD");
        std::env::set_var("TAICHI_TEST_BAD", "junk");
        let parse = |s: &str| {
            s.parse::<u32>()
                .map_err(|_| format!("warning: TAICHI_TEST_BAD={s:?} bad"))
        };
        assert_eq!(env_parse_or_warn("TAICHI_TEST_BAD", parse), None);
        // Second failure: same fallback, but the registry suppresses
        // the repeat emission.
        assert!(!warn_once("TAICHI_TEST_BAD", "repeat"));
        std::env::remove_var("TAICHI_TEST_BAD");
        reset_warned("TAICHI_TEST_BAD");
    }

    #[test]
    fn warn_once_is_per_key() {
        reset_warned("TAICHI_TEST_KEY_A");
        reset_warned("TAICHI_TEST_KEY_B");
        assert!(warn_once("TAICHI_TEST_KEY_A", "a"));
        assert!(warn_once("TAICHI_TEST_KEY_B", "b"), "independent keys");
        assert!(!warn_once("TAICHI_TEST_KEY_A", "a again"));
        reset_warned("TAICHI_TEST_KEY_A");
        reset_warned("TAICHI_TEST_KEY_B");
    }
}
