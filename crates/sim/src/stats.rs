//! Online summary statistics and utilization meters.

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A monotone event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Tracks the busy fraction of a resource over simulated time.
///
/// The meter is driven by `set_busy`/`set_idle` transitions; utilization
/// over any window is busy-time divided by elapsed time. Sampled
/// windows (e.g. per-second readings for the Fig. 3 CDF) are produced by
/// [`UtilizationMeter::sample_and_reset`].
#[derive(Clone, Debug)]
pub struct UtilizationMeter {
    busy_since: Option<SimTime>,
    busy_accum: SimDuration,
    window_start: SimTime,
    total_busy: SimDuration,
    created: SimTime,
    /// Furthest point in simulated time that busy spans have been
    /// folded to. Poll-mode services account whole bursts eagerly, so
    /// spans routinely end *after* the clock that later queries the
    /// meter — the frontier lets samples credit that overhang to the
    /// windows it actually occupies instead of the window that folded
    /// it (which read >1.0 before the clamp, and starved its
    /// successor).
    frontier: SimTime,
}

impl UtilizationMeter {
    /// Creates a meter that considers the resource idle at `now`.
    pub fn new(now: SimTime) -> Self {
        UtilizationMeter {
            busy_since: None,
            busy_accum: SimDuration::ZERO,
            window_start: now,
            total_busy: SimDuration::ZERO,
            created: now,
            frontier: now,
        }
    }

    /// Marks the resource busy starting at `now` (idempotent).
    pub fn set_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Marks the resource idle at `now` (idempotent). `now` may lie in
    /// the future relative to the querying clock — see `frontier`.
    pub fn set_idle(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            let d = now.saturating_since(since);
            self.busy_accum += d;
            self.total_busy += d;
            self.frontier = self.frontier.max(now);
        }
    }

    /// True when currently marked busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Returns the utilization of the window since the last sample and
    /// starts a new window.
    ///
    /// Busy time folded beyond `now` (a poll burst that ends after the
    /// sample boundary) is *carried* into the next window rather than
    /// credited to this one, so a window can neither exceed 1.0 from
    /// borrowed future work nor leave its successor short.
    pub fn sample_and_reset(&mut self, now: SimTime) -> f64 {
        // Close out any in-progress busy span into this window, then
        // re-open it for the next window.
        let reopen = self.busy_since.is_some();
        if reopen {
            self.set_idle(now);
        }
        let elapsed = now.saturating_since(self.window_start);
        let carry = SimDuration::from_nanos(
            self.frontier
                .saturating_since(now)
                .as_nanos()
                .min(self.busy_accum.as_nanos()),
        );
        let window_busy = self.busy_accum.as_nanos() - carry.as_nanos();
        let util = if elapsed.is_zero() {
            0.0
        } else {
            window_busy as f64 / elapsed.as_nanos() as f64
        };
        self.busy_accum = carry;
        self.window_start = now;
        if reopen {
            // Re-open past the fold frontier so the carried busy time
            // is never double-counted by the re-opened span.
            self.busy_since = Some(now.max(self.frontier));
        }
        util.min(1.0)
    }

    /// Lifetime utilization since creation. Busy time folded beyond
    /// `now` is clipped, so the ratio is exact rather than clamped.
    pub fn lifetime_utilization(&self, now: SimTime) -> f64 {
        let busy = self.total_busy(now);
        let elapsed = now.saturating_since(self.created);
        if elapsed.is_zero() {
            0.0
        } else {
            (busy.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
        }
    }

    /// Total accumulated busy time up to `now`, including any open span
    /// and excluding busy time folded beyond `now`.
    pub fn total_busy(&self, now: SimTime) -> SimDuration {
        let mut busy = self.total_busy.as_nanos();
        if let Some(since) = self.busy_since {
            busy += now.saturating_since(since).as_nanos();
        }
        busy = busy.saturating_sub(self.frontier.saturating_since(now).as_nanos());
        SimDuration::from_nanos(busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn utilization_half_busy() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        m.set_busy(SimTime::from_micros(0));
        m.set_idle(SimTime::from_micros(50));
        let u = m.sample_and_reset(SimTime::from_micros(100));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn utilization_spanning_window_boundary() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        m.set_busy(SimTime::from_micros(80));
        // Busy spans the sample point; both windows should see their share.
        let u1 = m.sample_and_reset(SimTime::from_micros(100));
        assert!((u1 - 0.2).abs() < 1e-9, "u1 {u1}");
        m.set_idle(SimTime::from_micros(150));
        let u2 = m.sample_and_reset(SimTime::from_micros(200));
        assert!((u2 - 0.5).abs() < 1e-9, "u2 {u2}");
    }

    #[test]
    fn utilization_idempotent_transitions() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        m.set_busy(SimTime::from_micros(10));
        m.set_busy(SimTime::from_micros(20)); // ignored
        m.set_idle(SimTime::from_micros(30));
        m.set_idle(SimTime::from_micros(40)); // ignored
        let u = m.sample_and_reset(SimTime::from_micros(100));
        assert!((u - 0.2).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn future_folded_span_is_carried_not_credited() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        // A poll burst accounted eagerly: busy 80..120 folded at t=80,
        // i.e. before the t=100 sample boundary it straddles.
        m.set_busy(SimTime::from_micros(80));
        m.set_idle(SimTime::from_micros(120));
        let u1 = m.sample_and_reset(SimTime::from_micros(100));
        assert!((u1 - 0.2).abs() < 1e-9, "window 1 overcredited: {u1}");
        let u2 = m.sample_and_reset(SimTime::from_micros(200));
        assert!((u2 - 0.2).abs() < 1e-9, "window 2 starved: {u2}");
    }

    #[test]
    fn future_fold_never_exceeds_full_window() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        // Bursts worth 150 µs of work folded inside a 100 µs window.
        m.set_busy(SimTime::ZERO);
        m.set_idle(SimTime::from_micros(150));
        let u1 = m.sample_and_reset(SimTime::from_micros(100));
        assert!((u1 - 1.0).abs() < 1e-9, "window 1 must saturate: {u1}");
        let u2 = m.sample_and_reset(SimTime::from_micros(200));
        assert!((u2 - 0.5).abs() < 1e-9, "window 2 gets the spill: {u2}");
        assert_eq!(
            m.total_busy(SimTime::from_micros(200)),
            SimDuration::from_micros(150)
        );
    }

    #[test]
    fn total_busy_clips_future_fold() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        m.set_busy(SimTime::ZERO);
        m.set_idle(SimTime::from_micros(150));
        assert_eq!(
            m.total_busy(SimTime::from_micros(100)),
            SimDuration::from_micros(100)
        );
        let u = m.lifetime_utilization(SimTime::from_micros(100));
        assert!((u - 1.0).abs() < 1e-9, "lifetime clipped at now: {u}");
    }

    #[test]
    fn lifetime_utilization_counts_open_span() {
        let mut m = UtilizationMeter::new(SimTime::ZERO);
        m.set_busy(SimTime::from_micros(0));
        let u = m.lifetime_utilization(SimTime::from_micros(100));
        assert!((u - 1.0).abs() < 1e-9);
        assert_eq!(
            m.total_busy(SimTime::from_micros(100)),
            SimDuration::from_micros(100)
        );
    }
}
