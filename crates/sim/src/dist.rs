//! Probability distributions for workload modelling.
//!
//! All samplers draw from the crate's deterministic [`Rng`] and return
//! `f64` values; duration-valued helpers convert to [`SimDuration`].
//! The set covers what the Tai Chi evaluation needs:
//!
//! - [`Dist::Exponential`] — Poisson inter-arrival times for open-loop
//!   packet/request generators.
//! - [`Dist::LogNormal`] — service-time spread (heavy right tail).
//! - [`Dist::Pareto`] / [`Dist::BoundedPareto`] — heavy-tailed routine
//!   durations.
//! - [`Dist::Empirical`] — piecewise distributions fitted to published
//!   production data (e.g. the Fig. 5 non-preemptible-routine histogram).
//! - [`Dist::Uniform`], [`Dist::Constant`], [`Dist::Bimodal`] — building
//!   blocks for synthetic benchmarks.

use crate::rng::Rng;
use crate::time::SimDuration;

/// A sampleable probability distribution over non-negative reals.
#[derive(Clone, Debug)]
pub enum Dist {
    /// Always returns `value`.
    Constant { value: f64 },
    /// Uniform over `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given `mean` (rate = 1/mean).
    Exponential { mean: f64 },
    /// Log-normal parameterised by the *target* mean and the sigma of the
    /// underlying normal (shape). `mu` is derived so that the sampled
    /// mean equals `mean`.
    LogNormal { mean: f64, sigma: f64 },
    /// Pareto with minimum `scale` and tail index `shape` (> 0).
    Pareto { scale: f64, shape: f64 },
    /// Pareto truncated to `[scale, cap]` by inverse-transform over the
    /// truncated CDF (no rejection, so sampling cost is constant).
    BoundedPareto { scale: f64, shape: f64, cap: f64 },
    /// Two-point mixture: `value_a` with probability `p_a`, else
    /// `value_b`.
    Bimodal {
        p_a: f64,
        value_a: f64,
        value_b: f64,
    },
    /// Piecewise-uniform empirical distribution: each bucket
    /// `(lo, hi, weight)` is chosen with probability proportional to
    /// `weight`, then a value is drawn uniformly inside it.
    Empirical { buckets: Vec<(f64, f64, f64)> },
    /// A mixture of sub-distributions with the given weights.
    Mixture { parts: Vec<(f64, Dist)> },
}

impl Dist {
    /// Convenience constructor for a constant distribution.
    pub fn constant(value: f64) -> Dist {
        Dist::Constant { value }
    }

    /// Convenience constructor for an exponential with mean in the same
    /// unit the caller will interpret samples in.
    pub fn exponential(mean: f64) -> Dist {
        Dist::Exponential { mean }
    }

    /// Convenience constructor for a uniform distribution.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        Dist::Uniform { lo, hi }
    }

    /// Draws one sample.
    ///
    /// Samples are clamped to be non-negative (every quantity we model —
    /// durations, sizes, counts — is non-negative).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let v = match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.next_f64(),
            Dist::Exponential { mean } => -mean * rng.next_f64_open().ln(),
            Dist::LogNormal { mean, sigma } => {
                // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
                let mu = mean.ln() - sigma * sigma / 2.0;
                let z = sample_standard_normal(rng);
                (mu + sigma * z).exp()
            }
            Dist::Pareto { scale, shape } => {
                let u = rng.next_f64_open();
                scale / u.powf(1.0 / shape)
            }
            Dist::BoundedPareto { scale, shape, cap } => {
                // Inverse transform of the truncated Pareto CDF.
                let l = *scale;
                let h = *cap;
                let a = *shape;
                let u = rng.next_f64();
                let la = l.powf(a);
                let ha = h.powf(a);
                let x = (1.0 - u * (1.0 - la / ha)).powf(-1.0 / a) * l;
                x.min(h)
            }
            Dist::Bimodal {
                p_a,
                value_a,
                value_b,
            } => {
                if rng.chance(*p_a) {
                    *value_a
                } else {
                    *value_b
                }
            }
            Dist::Empirical { buckets } => sample_empirical(buckets, rng),
            Dist::Mixture { parts } => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                let mut pick = rng.next_f64() * total;
                for (w, d) in parts {
                    if pick < *w {
                        return d.sample(rng).max(0.0);
                    }
                    pick -= w;
                }
                parts.last().map(|(_, d)| d.sample(rng)).unwrap_or(0.0)
            }
        };
        v.max(0.0)
    }

    /// Hoists per-sample constants for hot sampling loops.
    ///
    /// [`Dist::sample`] re-derives dependent parameters on every draw
    /// (the log-normal location `mu = ln(mean) - sigma²/2` costs a
    /// transcendental per call), and its Box–Muller step discards the
    /// second normal of every generated pair. Loops that sample the
    /// same distribution millions of times prepare it once: the
    /// prepared log-normal keeps `mu` hoisted **and** caches the spare
    /// Box–Muller value, halving the transcendental cost per draw.
    ///
    /// Still fully deterministic — the values are a pure function of
    /// the `Rng` stream and the call sequence — but the prepared
    /// sampler consumes uniforms at a different rate than
    /// [`Dist::sample`], so the two produce different (identically
    /// distributed) realizations from the same stream.
    pub fn prepared(&self) -> PreparedDist {
        match self {
            Dist::LogNormal { mean, sigma } => PreparedDist::LogNormal {
                mu: mean.ln() - sigma * sigma / 2.0,
                sigma: *sigma,
                spare: None,
            },
            other => PreparedDist::Plain(other.clone()),
        }
    }

    /// Draws one sample interpreted as nanoseconds.
    pub fn sample_nanos(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_nanos(self.sample(rng).round().max(0.0) as u64)
    }

    /// Draws one sample interpreted as microseconds.
    pub fn sample_micros(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_nanos((self.sample(rng) * 1_000.0).round().max(0.0) as u64)
    }

    /// Draws one sample interpreted as milliseconds.
    pub fn sample_millis(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_nanos((self.sample(rng) * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Returns the analytic mean where one exists in closed form.
    ///
    /// Used by generators to translate a target utilization into an
    /// arrival rate. `Mixture` and `Empirical` means are computed from
    /// their components (bucket midpoints for `Empirical`).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => *mean,
            Dist::LogNormal { mean, .. } => *mean,
            Dist::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::BoundedPareto { scale, shape, cap } => {
                // E[X] for truncated Pareto (shape != 1).
                let l = *scale;
                let h = *cap;
                let a = *shape;
                if (a - 1.0).abs() < 1e-12 {
                    let la = l.powf(a);
                    let ha = h.powf(a);
                    la / (1.0 - la / ha) * a * (h / l).ln() / l.powf(a - 1.0)
                } else {
                    let num = l.powf(a) / (1.0 - (l / h).powf(a));
                    num * a / (a - 1.0) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
                }
            }
            Dist::Bimodal {
                p_a,
                value_a,
                value_b,
            } => p_a * value_a + (1.0 - p_a) * value_b,
            Dist::Empirical { buckets } => {
                let total: f64 = buckets.iter().map(|(_, _, w)| w).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                buckets
                    .iter()
                    .map(|(lo, hi, w)| (lo + hi) / 2.0 * w / total)
                    .sum()
            }
            Dist::Mixture { parts } => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                parts.iter().map(|(w, d)| d.mean() * w / total).sum()
            }
        }
    }
}

/// A distribution with per-sample constants hoisted and the Box–Muller
/// pair cached (see [`Dist::prepared`]).
///
/// Deterministic given the `Rng` stream and the call sequence, but not
/// draw-for-draw identical to [`Dist::sample`]: the prepared log-normal
/// consumes one uniform pair per **two** samples.
#[derive(Clone, Debug)]
pub enum PreparedDist {
    /// Log-normal with the location parameter already derived and the
    /// second normal of each Box–Muller pair banked for the next draw.
    LogNormal {
        mu: f64,
        sigma: f64,
        spare: Option<f64>,
    },
    /// Any other family (no per-sample constants worth hoisting).
    Plain(Dist),
}

impl PreparedDist {
    /// Draws one sample. `&mut self` because the log-normal banks the
    /// spare Box–Muller value between calls — the dominant cost of a
    /// normal draw is the `ln`/`sqrt`/`sin_cos` triple, and using both
    /// halves of the pair amortizes it over two samples (the two halves
    /// are independent standard normals, so the distribution is
    /// unchanged).
    pub fn sample(&mut self, rng: &mut Rng) -> f64 {
        match self {
            PreparedDist::LogNormal { mu, sigma, spare } => {
                let z = match spare.take() {
                    Some(z) => z,
                    None => {
                        let (z1, z2) = sample_standard_normal_pair(rng);
                        *spare = Some(z2);
                        z1
                    }
                };
                (*mu + *sigma * z).exp().max(0.0)
            }
            PreparedDist::Plain(d) => d.sample(rng),
        }
    }
}

/// Samples a standard normal via Box–Muller (one value per call; the
/// second value is discarded to keep the sampler stateless).
fn sample_standard_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The full Box–Muller transform: both independent standard normals
/// from one uniform pair (the first matches [`sample_standard_normal`]
/// on the same stream position).
fn sample_standard_normal_pair(rng: &mut Rng) -> (f64, f64) {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let (sin, cos) = (2.0 * std::f64::consts::PI * u2).sin_cos();
    (r * cos, r * sin)
}

/// Samples from a piecewise-uniform empirical distribution.
fn sample_empirical(buckets: &[(f64, f64, f64)], rng: &mut Rng) -> f64 {
    let total: f64 = buckets.iter().map(|(_, _, w)| w).sum();
    if total <= 0.0 || buckets.is_empty() {
        return 0.0;
    }
    let mut pick = rng.next_f64() * total;
    for &(lo, hi, w) in buckets {
        if pick < w {
            return lo + (hi - lo) * rng.next_f64();
        }
        pick -= w;
    }
    let &(lo, hi, _) = buckets.last().expect("checked non-empty");
    lo + (hi - lo) * rng.next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant(7.5);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
        assert_eq!(d.mean(), 7.5);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(2.0, 4.0);
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((empirical_mean(&d, 3, 100_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::exponential(50.0);
        let m = empirical_mean(&d, 4, 200_000);
        assert!((m - 50.0).abs() / 50.0 < 0.02, "mean {m}");
    }

    #[test]
    fn lognormal_mean_matches_parameter() {
        let d = Dist::LogNormal {
            mean: 100.0,
            sigma: 0.8,
        };
        let m = empirical_mean(&d, 5, 300_000);
        assert!((m - 100.0).abs() / 100.0 < 0.05, "mean {m}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Dist::Pareto {
            scale: 10.0,
            shape: 2.0,
        };
        let mut rng = Rng::new(6);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 10.0);
        }
        // Analytic mean = shape*scale/(shape-1) = 20.
        let m = empirical_mean(&d, 7, 400_000);
        assert!((m - 20.0).abs() / 20.0 < 0.1, "mean {m}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = Dist::BoundedPareto {
            scale: 1.0,
            shape: 1.3,
            cap: 67.0,
        };
        let mut rng = Rng::new(8);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=67.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn bounded_pareto_mean_close_to_analytic() {
        let d = Dist::BoundedPareto {
            scale: 1.0,
            shape: 1.5,
            cap: 100.0,
        };
        let analytic = d.mean();
        let m = empirical_mean(&d, 9, 400_000);
        assert!(
            (m - analytic).abs() / analytic < 0.05,
            "sampled {m}, analytic {analytic}"
        );
    }

    #[test]
    fn bimodal_mixes() {
        let d = Dist::Bimodal {
            p_a: 0.9,
            value_a: 1.0,
            value_b: 100.0,
        };
        let m = empirical_mean(&d, 10, 100_000);
        let want = 0.9 * 1.0 + 0.1 * 100.0;
        assert!((m - want).abs() / want < 0.05, "mean {m}");
    }

    #[test]
    fn empirical_buckets_weighting() {
        // 94.5% of mass in [1,5), the rest in [5,67) — the Fig. 5 shape.
        let d = Dist::Empirical {
            buckets: vec![(1.0, 5.0, 94.5), (5.0, 67.0, 5.5)],
        };
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mut in_low = 0usize;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((1.0..67.0).contains(&x));
            if x < 5.0 {
                in_low += 1;
            }
        }
        let frac = in_low as f64 / n as f64;
        assert!((frac - 0.945).abs() < 0.01, "low fraction {frac}");
    }

    #[test]
    fn mixture_weights() {
        let d = Dist::Mixture {
            parts: vec![(3.0, Dist::constant(1.0)), (1.0, Dist::constant(5.0))],
        };
        let m = empirical_mean(&d, 12, 100_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_unit_helpers() {
        let d = Dist::constant(2.5);
        let mut rng = Rng::new(13);
        assert_eq!(d.sample_micros(&mut rng).as_nanos(), 2_500);
        assert_eq!(d.sample_millis(&mut rng).as_nanos(), 2_500_000);
        assert_eq!(d.sample_nanos(&mut rng).as_nanos(), 3); // 2.5 rounds to 3
    }

    #[test]
    fn samples_never_negative() {
        let dists = [
            Dist::LogNormal {
                mean: 1.0,
                sigma: 2.0,
            },
            Dist::uniform(0.0, 1.0),
            Dist::exponential(1.0),
        ];
        let mut rng = Rng::new(14);
        for d in &dists {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }
}
