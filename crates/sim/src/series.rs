//! Fixed-interval time series.
//!
//! Records scalar samples against simulated time on a fixed sampling
//! grid — the shape used for utilization traces (Fig. 3's per-second
//! fleet sweep) and for plotting any metric's evolution over a run.
//! Values land in the bucket their timestamp falls into; multiple
//! samples per bucket average.

use crate::time::{SimDuration, SimTime};

/// Upper bound on the number of buckets a series may grow to (~16 M;
/// at a 1 ms interval that is over four hours of simulated time). A
/// sample beyond this range indicates a timestamp bug in the caller,
/// and recording it panics instead of attempting an enormous
/// allocation.
pub const MAX_BUCKETS: usize = 1 << 24;

/// A scalar time series on a fixed sampling interval.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    interval: SimDuration,
    origin: SimTime,
    sums: Vec<f64>,
    counts: Vec<u32>,
}

impl TimeSeries {
    /// Creates a series sampled every `interval`, starting at `origin`.
    ///
    /// # Panics
    ///
    /// Panics when `interval` is zero.
    pub fn new(origin: SimTime, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        TimeSeries {
            interval,
            origin,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Records `value` at `at`. Samples before the origin are clamped
    /// into the first bucket.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies more than [`MAX_BUCKETS`] intervals past
    /// the origin — a far-future timestamp that would otherwise force
    /// a multi-gigabyte allocation.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.saturating_since(self.origin).as_nanos() / self.interval.as_nanos()) as usize;
        assert!(
            idx < MAX_BUCKETS,
            "sample at {at} is {idx} intervals past the series origin (max {MAX_BUCKETS})"
        );
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Number of buckets spanned so far.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Mean value of bucket `idx`, `None` for empty buckets.
    pub fn bucket(&self, idx: usize) -> Option<f64> {
        match (self.sums.get(idx), self.counts.get(idx)) {
            (Some(&s), Some(&c)) if c > 0 => Some(s / c as f64),
            _ => None,
        }
    }

    /// The start time of bucket `idx`.
    pub fn bucket_start(&self, idx: usize) -> SimTime {
        self.origin + SimDuration::from_nanos(self.interval.as_nanos() * idx as u64)
    }

    /// Iterates `(bucket_start, mean)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        (0..self.len()).filter_map(move |i| self.bucket(i).map(|v| (self.bucket_start(i), v)))
    }

    /// Largest bucket mean (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.iter().map(|(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean over all recorded samples (not bucket means).
    pub fn mean(&self) -> f64 {
        let total: f64 = self.sums.iter().sum();
        let n: u32 = self.counts.iter().sum();
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(SimTime::ZERO, SimDuration::from_millis(10))
    }

    #[test]
    fn buckets_by_interval() {
        let mut s = series();
        s.record(SimTime::from_millis(1), 1.0);
        s.record(SimTime::from_millis(9), 3.0);
        s.record(SimTime::from_millis(15), 10.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bucket(0), Some(2.0));
        assert_eq!(s.bucket(1), Some(10.0));
        assert_eq!(s.bucket(2), None);
        assert_eq!(s.bucket_start(1), SimTime::from_millis(10));
    }

    #[test]
    fn sparse_buckets_are_none() {
        let mut s = series();
        s.record(SimTime::from_millis(35), 7.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.bucket(0), None);
        assert_eq!(s.bucket(3), Some(7.0));
        let points: Vec<_> = s.iter().collect();
        assert_eq!(points, vec![(SimTime::from_millis(30), 7.0)]);
    }

    #[test]
    fn pre_origin_clamps_to_first_bucket() {
        let mut s = TimeSeries::new(SimTime::from_millis(100), SimDuration::from_millis(10));
        s.record(SimTime::from_millis(50), 5.0);
        assert_eq!(s.bucket(0), Some(5.0));
    }

    #[test]
    fn summary_stats() {
        let mut s = series();
        for i in 0..10u64 {
            s.record(SimTime::from_millis(i * 10 + 1), i as f64);
        }
        assert_eq!(s.max(), 9.0);
        assert!((s.mean() - 4.5).abs() < 1e-12);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_series() {
        let s = series();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.interval(), SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        TimeSeries::new(SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "intervals past the series origin")]
    fn far_future_sample_panics_instead_of_allocating() {
        let mut s = series();
        s.record(SimTime::MAX, 1.0);
    }
}
