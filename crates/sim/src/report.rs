//! Plain-text table and CSV formatting for experiment binaries.
//!
//! Every `figN`/`tableN` binary in `taichi-bench` prints both a human
//! readable aligned table (stdout) and machine readable CSV rows so the
//! paper's figures can be regenerated from the same run.

use std::fmt::Write as _;

/// A simple column-aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count should match the header.
    pub fn row(&mut self, cells: &[String]) {
        debug_assert_eq!(
            cells.len(),
            self.header.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends one row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(0);
                let _ = write!(line, "{cell:>w$}");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the CSV form (header + rows), RFC-4180-style quoting for
    /// cells containing commas or quotes.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a fraction as a signed percentage with two decimals,
/// e.g. `-0.72%`.
pub fn pct(frac: f64) -> String {
    format!("{:+.2}%", frac * 100.0)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats nanoseconds as a value in microseconds with two decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e3)
}

/// Formats nanoseconds as a value in milliseconds with two decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Formats a float with thousands separators, e.g. `1_234_567`.
pub fn grouped(v: f64) -> String {
    let neg = v < 0.0;
    let whole = v.abs().round() as u64;
    let s = whole.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    if neg {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.contains("long-name"));
        // Both data rows align on the same column width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new("", &["x", "y"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_csv().contains("1.5,2.25"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.0072), "-0.72%");
        assert_eq!(ratio(3.456), "3.46x");
        assert_eq!(us(2_500), "2.50");
        assert_eq!(ms(3_500_000), "3.50");
        assert_eq!(grouped(1_234_567.0), "1_234_567");
        assert_eq!(grouped(-1_000.4), "-1_000");
        assert_eq!(grouped(999.0), "999");
    }
}
