//! Deterministic pseudo-random number generation.
//!
//! The reproduction contract requires that a run with a given seed
//! produces bit-identical results on every machine and toolchain, so we
//! implement the generator ourselves instead of depending on external
//! crates whose stream definitions may change between versions.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. Child streams for independent
//! components are derived with [`Rng::fork`], which applies the
//! xoshiro256** `jump`-equivalent re-seeding via SplitMix64 over a fork
//! counter so sibling streams are decorrelated.

/// A deterministic, forkable pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
    forks: u64,
}

/// Advances a SplitMix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates the `index`-th independent stream for a base seed.
    ///
    /// Streams for different indices (and the base stream from
    /// [`Rng::new`], which equals index-free seeding) are decorrelated
    /// via golden-ratio mixing. This is the canonical way to give
    /// several components reproducible, independent randomness from
    /// one experiment seed.
    pub fn stream(seed: u64, index: u64) -> Self {
        Rng::new(seed.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including zero) produces a valid, full-period stream.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { state, forks: 0 }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]`, never zero.
    ///
    /// Useful as input to inverse-transform samplers that take `ln(u)`.
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's method: rejection zone is [0, 2^64 mod bound). The
        // threshold is only computed lazily — it is strictly below
        // `bound`, so any draw whose low product half is >= `bound`
        // is accepted without paying for the 64-bit division. Draw
        // consumption and results are identical to the eager form.
        let x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                let x = self.next_u64();
                m = (x as u128) * (bound as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi (got {lo}..{hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }

    /// Shuffles `items` in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator.
    ///
    /// Each call returns a different stream; forking is itself
    /// deterministic, so the k-th fork of a given parent is always the
    /// same stream.
    pub fn fork(&mut self) -> Rng {
        self.forks += 1;
        // Mix the parent state with the fork index through SplitMix64 so
        // that child streams are decorrelated from both the parent and
        // one another.
        let mut sm = self.state[0]
            .wrapping_add(self.state[3].rotate_left(17))
            .wrapping_add(self.forks.wrapping_mul(0xA076_1D64_78BD_642F));
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { state, forks: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for the SplitMix64(0) seeding, locked in as a
        // regression anchor: any change to the stream definition must be
        // caught because experiment results depend on it.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // Spot check: outputs are not all equal and not trivially zero.
        assert!(first.iter().any(|&x| x != 0));
        assert!(first[0] != first[1]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.gen_range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        Rng::new(0).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = Rng::new(5);
        let mut parent2 = Rng::new(5);
        let mut c1a = parent1.fork();
        let mut c1b = parent1.fork();
        let mut c2a = parent2.fork();
        assert_eq!(c1a.next_u64(), c2a.next_u64(), "k-th fork reproducible");
        // Sibling forks differ.
        let mut c1a2 = Rng::new(5).fork();
        assert_ne!(c1b.next_u64(), c1a2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_empty_is_none() {
        let mut r = Rng::new(2);
        let empty: [u8; 0] = [];
        assert!(r.pick(&empty).is_none());
        assert_eq!(r.pick(&[42]).copied(), Some(42));
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a = Rng::stream(7, 0);
        let mut a2 = Rng::stream(7, 0);
        let mut b = Rng::stream(7, 1);
        let mut base = Rng::new(7);
        let x = a.next_u64();
        assert_eq!(x, a2.next_u64(), "same (seed, index) same stream");
        assert_ne!(x, b.next_u64(), "indices decorrelate");
        assert_ne!(x, base.next_u64(), "stream 0 differs from the base");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = Rng::new(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
