//! Counting allocator harness for zero-allocation assertions.
//!
//! The engine's steady-state claim — *zero heap allocations per
//! dispatched event after warm-up* — is enforced by a test, not by
//! inspection. [`CountingAlloc`] wraps the system allocator and counts
//! every allocation event; a test binary installs it as its
//! `#[global_allocator]`, runs the workload past warm-up, snapshots the
//! counters, runs the measurement window, and asserts the delta:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: taichi_sim::alloc::CountingAlloc =
//!     taichi_sim::alloc::CountingAlloc;
//!
//! let before = taichi_sim::alloc::snapshot();
//! run_steady_state_window();
//! let delta = taichi_sim::alloc::snapshot().since(before);
//! assert_eq!(delta.allocation_events(), 0);
//! ```
//!
//! Counters are process-global relaxed atomics: cheap enough to leave
//! enabled for a whole benchmark run, and exact in the single-threaded
//! sections where the assertions are made. `realloc` counts as an
//! allocation event (growing a `Vec` in the hot loop is exactly the
//! regression the harness exists to catch).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]`-installable wrapper around [`System`] that
/// counts allocation traffic. Zero-sized; install it in the binary
/// that wants the accounting.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the counter updates have no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// Fresh allocations (`alloc` + `alloc_zeroed`).
    pub allocs: u64,
    /// Reallocations (`Vec` growth and friends).
    pub reallocs: u64,
    /// Deallocations.
    pub deallocs: u64,
    /// Bytes requested across allocs and reallocs.
    pub bytes: u64,
}

impl AllocCounters {
    /// Allocation *events*: anything that could touch the heap
    /// allocator for new space. This is the number the steady-state
    /// assertion pins to zero.
    pub fn allocation_events(&self) -> u64 {
        self.allocs + self.reallocs
    }

    /// Counter deltas accumulated since `earlier`.
    pub fn since(&self, earlier: AllocCounters) -> AllocCounters {
        AllocCounters {
            allocs: self.allocs - earlier.allocs,
            reallocs: self.reallocs - earlier.reallocs,
            deallocs: self.deallocs - earlier.deallocs,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Reads the current counter values. Meaningful only in a binary that
/// installed [`CountingAlloc`] as its global allocator — otherwise all
/// counters stay zero.
pub fn snapshot() -> AllocCounters {
    AllocCounters {
        allocs: ALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// True when the counters have recorded any traffic, i.e. the wrapper
/// is actually installed in this process.
pub fn is_installed() -> bool {
    snapshot().allocation_events() > 0
}
