//! Randomized differential test of [`EventQueue`] against a
//! straight-line reference model.
//!
//! The production queue is a generation-stamped slab over a binary
//! heap (lazy discard of cancelled entries, eager sweep of the heap
//! top). The reference below is the *specification*: a sorted list in
//! `(time, seq)` order where cancellation marks an entry and sweeps
//! mirror the documented points (on `cancel` and after `pop`, the
//! leading cancelled run is discarded). Every observable — pop order
//! and payload, `len`, `cancelled_backlog`, `peek_time`, `is_empty`,
//! and `cancel`'s return value (including stale tokens after slot
//! reuse) — must agree at every step of a long random op sequence.

use taichi_sim::{EventQueue, EventToken, Rng, SimDuration, SimTime};

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Live,
    Cancelled,
}

/// Specification model: entries sorted by `(time, seq)`, never a
/// cancelled entry at the front (the sweep invariant).
struct SpecQueue {
    /// `(time, seq, payload, state)`, sorted ascending by `(time, seq)`.
    entries: Vec<(SimTime, u64, u64, State)>,
    next_seq: u64,
    now: SimTime,
}

impl SpecQueue {
    fn new() -> Self {
        SpecQueue {
            entries: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Returns the model-side id of the new entry (its seq).
    fn schedule(&mut self, time: SimTime, payload: u64) -> u64 {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let at = self
            .entries
            .partition_point(|&(t, s, _, _)| (t, s) < (time, seq));
        self.entries.insert(at, (time, seq, payload, State::Live));
        seq
    }

    /// Cancels by model id; true iff the entry is still present and
    /// live (a stale or repeated cancel records nothing).
    fn cancel(&mut self, id: u64) -> bool {
        let Some(e) = self.entries.iter_mut().find(|e| e.1 == id) else {
            return false;
        };
        if e.3 == State::Cancelled {
            return false;
        }
        e.3 = State::Cancelled;
        self.sweep_front();
        true
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        // The front is live by the sweep invariant.
        if self.entries.is_empty() {
            return None;
        }
        let (time, _, payload, state) = self.entries.remove(0);
        assert!(state == State::Live, "sweep invariant violated in spec");
        self.now = time;
        self.sweep_front();
        Some((time, payload))
    }

    fn sweep_front(&mut self) {
        while let Some(&(_, _, _, state)) = self.entries.first() {
            if state == State::Live {
                break;
            }
            self.entries.remove(0);
        }
    }

    fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.3 == State::Live).count()
    }

    fn cancelled_backlog(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.3 == State::Cancelled)
            .count()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.0)
    }
}

fn check_invariants(q: &EventQueue<u64>, spec: &SpecQueue, step: usize) {
    assert_eq!(q.len(), spec.len(), "len diverged at step {step}");
    assert_eq!(
        q.cancelled_backlog(),
        spec.cancelled_backlog(),
        "cancelled_backlog diverged at step {step}"
    );
    assert_eq!(
        q.peek_time(),
        spec.peek_time(),
        "peek_time diverged at step {step}"
    );
    assert_eq!(
        q.is_empty(),
        spec.len() == 0,
        "is_empty diverged at step {step}"
    );
}

fn run_differential(seed: u64, ops: usize) {
    let mut rng = Rng::new(seed);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut spec = SpecQueue::new();
    // All tokens ever issued (live, fired, swept, recycled slots) —
    // cancelling old ones exercises generation staleness after reuse.
    let mut tokens: Vec<(EventToken, u64)> = Vec::new();
    let mut next_payload = 0u64;

    for step in 0..ops {
        match rng.next_below(4) {
            // Half the ops schedule, so the queue keeps growing and
            // slots recycle through the free list.
            0 | 1 => {
                let dt = SimDuration::from_nanos(rng.next_below(1_000));
                let time = q.now() + dt;
                let payload = next_payload;
                next_payload += 1;
                let tok = q.schedule(time, payload);
                let id = spec.schedule(time, payload);
                tokens.push((tok, id));
            }
            2 if !tokens.is_empty() => {
                let i = rng.next_below(tokens.len() as u64) as usize;
                let (tok, id) = tokens[i];
                let a = q.cancel(tok);
                let b = spec.cancel(id);
                assert_eq!(a, b, "cancel return diverged at step {step}");
            }
            _ => {
                let a = q.pop();
                let b = spec.pop();
                assert_eq!(a, b, "pop diverged at step {step}");
            }
        }
        check_invariants(&q, &spec, step);
    }

    // Drain: the remaining pop order must match exactly.
    let mut drained = 0usize;
    loop {
        let a = q.pop();
        let b = spec.pop();
        assert_eq!(a, b, "pop diverged during drain after {drained} pops");
        if a.is_none() {
            break;
        }
        drained += 1;
        check_invariants(&q, &spec, ops + drained);
    }
    assert_eq!(
        q.cancelled_backlog(),
        0,
        "drained queue must be fully swept"
    );
}

#[test]
fn event_queue_matches_spec_over_random_ops() {
    // 3 seeds x 12k ops (plus drains) >= the 10k-op floor each.
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        run_differential(seed, 12_000);
    }
}

#[test]
fn event_queue_matches_spec_under_heavy_cancellation() {
    // Skew towards cancels: schedule bursts, then cancel most of them
    // before popping, hammering the sweep + slot-recycling paths.
    let mut rng = Rng::new(0xCA7);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut spec = SpecQueue::new();
    let mut step = 0usize;
    for _round in 0..200 {
        let mut batch = Vec::new();
        for _ in 0..32 {
            let dt = SimDuration::from_nanos(rng.next_below(500));
            let time = q.now() + dt;
            let payload = rng.next_u64();
            batch.push((q.schedule(time, payload), spec.schedule(time, payload)));
            step += 1;
            check_invariants(&q, &spec, step);
        }
        for (tok, id) in batch {
            if rng.next_below(4) != 0 {
                assert_eq!(q.cancel(tok), spec.cancel(id), "cancel diverged");
                step += 1;
                check_invariants(&q, &spec, step);
            }
        }
        for _ in 0..8 {
            assert_eq!(q.pop(), spec.pop(), "pop diverged at step {step}");
            step += 1;
            check_invariants(&q, &spec, step);
        }
    }
}
