//! Randomized differential tests of [`EventQueue`].
//!
//! Two layers of checking:
//!
//! 1. **Spec model** — a sorted list in `(time, seq)` order with the
//!    documented sweep points (on `cancel` and after `pop`, the leading
//!    cancelled run is discarded). Every backend must agree with it on
//!    pop order and payload, `len`, `peek_time`, `is_empty`, and
//!    `cancel`'s return value (including stale tokens after slot
//!    reuse). `cancelled_backlog` is the one backend-dependent
//!    diagnostic: the spec mirrors the *heap*'s lazy disposal, so that
//!    assertion is pinned to the heap backend (the wheel removes
//!    cancelled entries eagerly everywhere but its overflow heap).
//!
//! 2. **Wheel-vs-heap differential** (≥100k ops) — the two backends
//!    run the same interleaved push/cancel/advance sequence, with time
//!    deltas spread across all three wheel levels, deliberate
//!    same-timestamp bursts, *fused-deadline* inserts (re-scheduling
//!    at the exact deadline of a still-pending entry, so the wheel's
//!    same-deadline fusion shares one slot), and long idle gaps
//!    (drains far past the last pending entry, so the wheel's bulk
//!    level-hop advance crosses swaths of empty buckets), and must
//!    produce identical `(time, payload)` pop sequences and identical
//!    observables throughout.

use taichi_sim::{EventQueue, EventToken, QueueBackend, Rng, SimDuration, SimTime};

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Live,
    Cancelled,
}

/// Specification model: entries sorted by `(time, seq)`, never a
/// cancelled entry at the front (the sweep invariant).
struct SpecQueue {
    /// `(time, seq, payload, state)`, sorted ascending by `(time, seq)`.
    entries: Vec<(SimTime, u64, u64, State)>,
    next_seq: u64,
    now: SimTime,
}

impl SpecQueue {
    fn new() -> Self {
        SpecQueue {
            entries: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Returns the model-side id of the new entry (its seq).
    fn schedule(&mut self, time: SimTime, payload: u64) -> u64 {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let at = self
            .entries
            .partition_point(|&(t, s, _, _)| (t, s) < (time, seq));
        self.entries.insert(at, (time, seq, payload, State::Live));
        seq
    }

    /// Cancels by model id; true iff the entry is still present and
    /// live (a stale or repeated cancel records nothing).
    fn cancel(&mut self, id: u64) -> bool {
        let Some(e) = self.entries.iter_mut().find(|e| e.1 == id) else {
            return false;
        };
        if e.3 == State::Cancelled {
            return false;
        }
        e.3 = State::Cancelled;
        self.sweep_front();
        true
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        // The front is live by the sweep invariant.
        if self.entries.is_empty() {
            return None;
        }
        let (time, _, payload, state) = self.entries.remove(0);
        assert!(state == State::Live, "sweep invariant violated in spec");
        self.now = time;
        self.sweep_front();
        Some((time, payload))
    }

    fn sweep_front(&mut self) {
        while let Some(&(_, _, _, state)) = self.entries.first() {
            if state == State::Live {
                break;
            }
            self.entries.remove(0);
        }
    }

    fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.3 == State::Live).count()
    }

    fn cancelled_backlog(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.3 == State::Cancelled)
            .count()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.0)
    }
}

fn check_invariants(q: &EventQueue<u64>, spec: &SpecQueue, step: usize) {
    assert_eq!(q.len(), spec.len(), "len diverged at step {step}");
    if q.backend() == QueueBackend::Heap {
        // The spec models the heap's lazy disposal; the wheel disposes
        // eagerly outside its overflow heap, so its backlog is smaller.
        assert_eq!(
            q.cancelled_backlog(),
            spec.cancelled_backlog(),
            "cancelled_backlog diverged at step {step}"
        );
    } else {
        assert!(
            q.cancelled_backlog() <= spec.cancelled_backlog(),
            "wheel backlog exceeded lazy-disposal bound at step {step}"
        );
    }
    assert_eq!(
        q.peek_time(),
        spec.peek_time(),
        "peek_time diverged at step {step}"
    );
    assert_eq!(
        q.is_empty(),
        spec.len() == 0,
        "is_empty diverged at step {step}"
    );
}

fn run_differential(backend: QueueBackend, seed: u64, ops: usize) {
    let mut rng = Rng::new(seed);
    let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
    let mut spec = SpecQueue::new();
    // All tokens ever issued (live, fired, swept, recycled slots) —
    // cancelling old ones exercises generation staleness after reuse.
    let mut tokens: Vec<(EventToken, u64)> = Vec::new();
    let mut next_payload = 0u64;

    let mut recent_times: Vec<SimTime> = Vec::new();

    for step in 0..ops {
        match rng.next_below(4) {
            // Half the ops schedule, so the queue keeps growing and
            // slots recycle through the free list. A quarter of the
            // schedules reuse the exact deadline of a recent entry,
            // driving the wheel's same-deadline fusion (the spec
            // model is fusion-blind — observables must not change).
            0 | 1 => {
                let time = match recent_times.get(rng.next_below(4) as usize) {
                    Some(&t) if rng.next_below(4) == 0 && t >= q.now() => t,
                    _ => q.now() + SimDuration::from_nanos(rng.next_below(1_000)),
                };
                recent_times.push(time);
                if recent_times.len() > 16 {
                    recent_times.remove(0);
                }
                let payload = next_payload;
                next_payload += 1;
                let tok = q.schedule(time, payload);
                let id = spec.schedule(time, payload);
                tokens.push((tok, id));
            }
            2 if !tokens.is_empty() => {
                let i = rng.next_below(tokens.len() as u64) as usize;
                let (tok, id) = tokens[i];
                let a = q.cancel(tok);
                let b = spec.cancel(id);
                assert_eq!(a, b, "cancel return diverged at step {step}");
            }
            _ => {
                let a = q.pop();
                let b = spec.pop();
                assert_eq!(a, b, "pop diverged at step {step}");
            }
        }
        check_invariants(&q, &spec, step);
    }

    // Drain: the remaining pop order must match exactly.
    let mut drained = 0usize;
    loop {
        let a = q.pop();
        let b = spec.pop();
        assert_eq!(a, b, "pop diverged during drain after {drained} pops");
        if a.is_none() {
            break;
        }
        drained += 1;
        check_invariants(&q, &spec, ops + drained);
    }
    assert_eq!(
        q.cancelled_backlog(),
        0,
        "drained queue must be fully swept"
    );
}

#[test]
fn event_queue_matches_spec_over_random_ops() {
    // Both backends x 3 seeds x 12k ops (plus drains).
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
            run_differential(backend, seed, 12_000);
        }
    }
}

#[test]
fn event_queue_matches_spec_under_heavy_cancellation() {
    // Skew towards cancels: schedule bursts, then cancel most of them
    // before popping, hammering the sweep + slot-recycling paths.
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let mut rng = Rng::new(0xCA7);
        let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
        let mut spec = SpecQueue::new();
        let mut step = 0usize;
        for _round in 0..200 {
            let mut batch = Vec::new();
            for _ in 0..32 {
                let dt = SimDuration::from_nanos(rng.next_below(500));
                let time = q.now() + dt;
                let payload = rng.next_u64();
                batch.push((q.schedule(time, payload), spec.schedule(time, payload)));
                step += 1;
                check_invariants(&q, &spec, step);
            }
            for (tok, id) in batch {
                if rng.next_below(4) != 0 {
                    assert_eq!(q.cancel(tok), spec.cancel(id), "cancel diverged");
                    step += 1;
                    check_invariants(&q, &spec, step);
                }
            }
            for _ in 0..8 {
                assert_eq!(q.pop(), spec.pop(), "pop diverged at step {step}");
                step += 1;
                check_invariants(&q, &spec, step);
            }
        }
    }
}

/// Cancel storm concentrated on the wheel's *overflow-heap* region,
/// where cancellation is lazy (a flag plus a top sweep, unlike the
/// eager unlink inside the wheel levels). The heavy-cancellation test
/// above never leaves the first wheel level — its 500 ns deltas sit
/// five orders of magnitude short of the ~33.5 ms level-1 horizon —
/// so the lazy path's bookkeeping (slot retirement at promotion and
/// top-sweep) went entirely unexercised by it.
///
/// Well over half of the scheduled deltas here land beyond the
/// horizon; most entries get cancelled while still buried in the
/// overflow heap; pops force promotions across the boundary. The spec
/// comparison in `check_invariants` bounds the wheel's cancelled
/// backlog by the lazy-disposal model at every step, and the full
/// drain must end with zero backlog on both backends — a leaked
/// overflow slot (a cancelled entry whose slot is never retired)
/// would hold the backlog nonzero at the end.
#[test]
fn overflow_cancel_storm_retires_every_slot() {
    const HORIZON_NS: u64 = 33_500_000; // just under the level-1 span
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let mut rng = Rng::new(0x5702_0CA7);
        let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
        let mut spec = SpecQueue::new();
        let mut tokens: Vec<(EventToken, u64)> = Vec::new();
        let mut next_payload = 0u64;
        let (mut far, mut total) = (0u64, 0u64);
        let mut step = 0usize;

        for _round in 0..300 {
            for _ in 0..16 {
                total += 1;
                let dt = if rng.next_below(10) < 7 {
                    // Deep in the overflow region: 34 ms ..= 500 ms.
                    far += 1;
                    SimDuration::from_nanos(34_000_000 + rng.next_below(466_000_000))
                } else {
                    // Inside the wheel levels, crossing both spans.
                    SimDuration::from_nanos(rng.next_below(33_000_000))
                };
                let time = q.now() + dt;
                let payload = next_payload;
                next_payload += 1;
                tokens.push((q.schedule(time, payload), spec.schedule(time, payload)));
            }
            // The storm: cancel roughly 3/4 of everything outstanding,
            // including stale tokens of already-fired entries (their
            // cancel must report false on both sides).
            for &(tok, id) in &tokens {
                if rng.next_below(4) < 3 {
                    assert_eq!(
                        q.cancel(tok),
                        spec.cancel(id),
                        "cancel return diverged at step {step}"
                    );
                    step += 1;
                }
            }
            check_invariants(&q, &spec, step);
            // A few pops advance time across the horizon, forcing
            // overflow promotion through cancelled runs.
            for _ in 0..6 {
                assert_eq!(q.pop(), spec.pop(), "pop diverged at step {step}");
                step += 1;
                check_invariants(&q, &spec, step);
            }
            // Keep the stale-token pool bounded (oldest first out);
            // enough survivors remain to exercise generation checks.
            if tokens.len() > 4096 {
                let excess = tokens.len() - 4096;
                tokens.drain(..excess);
            }
        }
        assert!(
            far * 2 > total,
            "storm drifted: only {far}/{total} deltas beyond the horizon"
        );
        assert!(
            far > 0 && 34_000_000 > HORIZON_NS,
            "constants drifted: far deltas must start past the horizon"
        );

        // Full drain: pop order stays identical, and both backends end
        // with every cancelled slot retired.
        loop {
            let a = q.pop();
            let b = spec.pop();
            assert_eq!(a, b, "pop diverged during drain at step {step}");
            step += 1;
            if a.is_none() {
                break;
            }
            check_invariants(&q, &spec, step);
        }
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(
            q.cancelled_backlog(),
            0,
            "{backend:?}: leaked cancelled slots after full drain"
        );
    }
}

/// Cold-start and sparse-occupancy differential for the fleet
/// footprint path: a wheel born with a 2-slot slab and *no*
/// materialized bucket-head chunks (`with_backend_and_slots` — the
/// fleet profile's constructor) must stay observably identical to a
/// fully prewarmed wheel and to the heap reference through:
///
/// - cold-start scheduling straight into absent chunks (the first
///   link must materialize exactly the right chunk, not disturb pop
///   order);
/// - sparse occupancy — event clusters separated by whole 64-bucket
///   chunk ranges, so most chunks stay absent while level hops cross
///   them;
/// - repeated [`EventQueue::compact`] calls at arbitrary moments
///   (live entries pending, sometimes mid-cluster), which release
///   empty chunks and truncate the slab: the generation floor must
///   keep every pre-compaction token dead, and regrowth must not
///   perturb ordering;
/// - stale-token cancels across compactions on all three queues.
#[test]
fn cold_start_sparse_occupancy_matches_prewarmed_and_heap() {
    let mut rng = Rng::new(0xC01D_57A7);
    // The fleet-profile wheel: tiny slab, lazy chunks.
    let mut small: EventQueue<u64> = EventQueue::with_backend_and_slots(QueueBackend::Wheel, 2);
    // The hot-profile wheel: full slab, every chunk materialized.
    let mut warm: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Wheel);
    // The ordering reference.
    let mut heap: EventQueue<u64> = EventQueue::with_backend_and_slots(QueueBackend::Heap, 2);
    let mut tokens: Vec<(EventToken, EventToken, EventToken)> = Vec::new();
    let mut next_payload = 0u64;
    let mut pops = 0usize;

    for step in 0..40_000usize {
        match rng.next_below(8) {
            0..=3 => {
                // Sparse clusters: a tight 1 us burst, based either
                // near now (level 0), a few ms out (level 1), or far
                // out (overflow) — chunk ranges between clusters stay
                // untouched.
                let base = match rng.next_below(8) {
                    0..=4 => rng.next_below(4) * 200_000,
                    5 | 6 => 2_000_000 + rng.next_below(3) * 5_000_000,
                    _ => 200_000_000,
                };
                let t = small.now() + SimDuration::from_nanos(base + rng.next_below(1_000));
                let payload = next_payload;
                next_payload += 1;
                tokens.push((
                    small.schedule(t, payload),
                    warm.schedule(t, payload),
                    heap.schedule(t, payload),
                ));
            }
            4 if !tokens.is_empty() => {
                // Cancels reach arbitrarily far back: post-compaction
                // tokens from truncated slots must report dead on the
                // small queue exactly when they do on the others.
                let i = rng.next_below(tokens.len() as u64) as usize;
                let (st, wt, ht) = tokens[i];
                let a = small.cancel(st);
                let b = warm.cancel(wt);
                let c = heap.cancel(ht);
                assert_eq!(a, b, "small/warm cancel diverged at step {step}");
                assert_eq!(a, c, "small/heap cancel diverged at step {step}");
            }
            5 => {
                // Compact the small queue mid-run (the fleet's
                // post-storm trigger fires with live entries pending);
                // occasionally compact the heap reference too — both
                // are observable no-ops.
                small.compact();
                if rng.next_below(4) == 0 {
                    heap.compact();
                }
            }
            _ => {
                let a = small.pop();
                let b = warm.pop();
                let c = heap.pop();
                assert_eq!(a, b, "small/warm pop diverged at step {step}");
                assert_eq!(a, c, "small/heap pop diverged at step {step}");
                pops += usize::from(a.is_some());
            }
        }
        assert_eq!(small.len(), heap.len(), "len diverged at step {step}");
        assert_eq!(
            small.peek_time(),
            heap.peek_time(),
            "peek_time diverged at step {step}"
        );
    }

    // Full drain, then one more cold restart on the compacted queue.
    loop {
        let a = small.pop();
        let b = warm.pop();
        let c = heap.pop();
        assert_eq!(a, b, "small/warm pop diverged during drain");
        assert_eq!(a, c, "small/heap pop diverged during drain");
        if a.is_none() {
            break;
        }
        pops += 1;
    }
    assert!(pops > 5_000, "differential exercised too few pops: {pops}");
    small.compact();
    heap.compact();
    // Post-drain compaction truncates the whole slab; scheduling again
    // regrows from empty with the generation floor raised.
    for i in 0..100u64 {
        let t = small.now() + SimDuration::from_nanos(1 + i * 7);
        tokens.push((
            small.schedule(t, i),
            warm.schedule(t, i),
            heap.schedule(t, i),
        ));
    }
    loop {
        let a = small.pop();
        let b = warm.pop();
        let c = heap.pop();
        assert_eq!(a, b, "regrown small/warm pop diverged");
        assert_eq!(a, c, "regrown small/heap pop diverged");
        if a.is_none() {
            break;
        }
    }
    // Every token ever issued is now dead on all three queues.
    for (st, wt, ht) in tokens {
        assert!(!small.cancel(st), "stale token revived on small queue");
        assert!(!warm.cancel(wt));
        assert!(!heap.cancel(ht));
    }
}

/// Draws a time delta that lands across all three wheel levels:
/// mostly dense near-future (level 0), a healthy share of level-1
/// distances, and an occasional far-future overflow entry — plus
/// exact-zero deltas to force same-timestamp FIFO runs.
fn mixed_delta(rng: &mut Rng) -> SimDuration {
    match rng.next_below(16) {
        // Same-instant burst: exercises per-timestamp FIFO.
        0 => SimDuration::ZERO,
        // Dense near-future timers (level 0: < 131 us).
        1..=9 => SimDuration::from_nanos(rng.next_below(100_000)),
        // Mid-range (level 1: up to ~33 ms).
        10..=13 => SimDuration::from_nanos(rng.next_below(30_000_000)),
        // Far future (overflow heap: up to 2 s).
        _ => SimDuration::from_nanos(rng.next_below(2_000_000_000)),
    }
}

/// ≥100k-op wheel-vs-heap differential: identical `(time, payload)`
/// pop sequences under interleaved push/cancel/advance, including
/// same-timestamp FIFO and batch drains.
#[test]
fn wheel_and_heap_pop_identical_sequences() {
    const OPS: usize = 120_000;
    let mut rng = Rng::new(0xD1FF_5EED);
    let mut wheel: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Wheel);
    let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
    let mut tokens: Vec<(EventToken, EventToken)> = Vec::new();
    let mut next_payload = 0u64;
    let mut pops = 0usize;
    let mut wheel_batch = Vec::new();
    let mut heap_batch = Vec::new();

    let mut recent_times: Vec<SimTime> = Vec::new();

    for step in 0..OPS {
        match rng.next_below(8) {
            0..=3 => {
                // Same-timestamp runs matter most: occasionally push a
                // small burst at one instant, or re-land on the exact
                // deadline of a recent pending entry so the wheel's
                // same-deadline fusion packs them into one slot (the
                // heap never fuses — pop sequences must still match).
                let burst = if rng.next_below(8) == 0 { 4 } else { 1 };
                let time = match recent_times.get(rng.next_below(8) as usize) {
                    Some(&t) if rng.next_below(3) == 0 && t >= wheel.now() => t,
                    _ => wheel.now() + mixed_delta(&mut rng),
                };
                recent_times.push(time);
                if recent_times.len() > 32 {
                    recent_times.remove(0);
                }
                for _ in 0..burst {
                    let payload = next_payload;
                    next_payload += 1;
                    tokens.push((wheel.schedule(time, payload), heap.schedule(time, payload)));
                }
            }
            4 if !tokens.is_empty() => {
                let i = rng.next_below(tokens.len() as u64) as usize;
                let (wt, ht) = tokens[i];
                assert_eq!(
                    wheel.cancel(wt),
                    heap.cancel(ht),
                    "cancel return diverged at step {step}"
                );
            }
            5 => {
                // Batch drain: both backends must group the same
                // same-timestamp run, in the same order. One drain in
                // four reaches seconds ahead — a long idle gap that
                // forces the wheel's bulk advance to hop level-1
                // stretches (and whole wheel spans) without touching
                // the per-slot cursor.
                let reach = if rng.next_below(4) == 0 {
                    3_000_000_000 // idle-gap skip: far past most entries
                } else {
                    40_000_000
                };
                let limit = wheel.now() + SimDuration::from_nanos(rng.next_below(reach));
                wheel_batch.clear();
                heap_batch.clear();
                let wt = wheel.drain_next_batch(limit, &mut wheel_batch);
                let ht = heap.drain_next_batch(limit, &mut heap_batch);
                assert_eq!(wt, ht, "batch timestamp diverged at step {step}");
                assert_eq!(wheel_batch, heap_batch, "batch diverged at step {step}");
                pops += wheel_batch.len();
            }
            _ => {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop diverged at step {step}");
                pops += usize::from(a.is_some());
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged at step {step}");
        assert_eq!(
            wheel.peek_time(),
            heap.peek_time(),
            "peek_time diverged at step {step}"
        );
        assert_eq!(wheel.now(), heap.now(), "now diverged at step {step}");
    }

    // Drain both queues completely; tails must match too.
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "pop diverged during final drain");
        if a.is_none() {
            break;
        }
        pops += 1;
    }
    assert!(wheel.is_empty() && heap.is_empty());
    assert!(pops > 10_000, "differential exercised too few pops: {pops}");
}
