//! Randomized property tests for the simulation substrate, driven by
//! the in-repo deterministic harness ([`taichi_sim::check`]) so the
//! workspace tests without network access.

use taichi_sim::check::{run_cases, vec_u64};
use taichi_sim::{Dist, EventQueue, Histogram, OnlineStats, Rng, SimDuration, SimTime};

/// The histogram's quantiles track a naive sorted-vector oracle within
/// the structure's documented ~2 % relative error.
#[test]
fn histogram_quantiles_match_oracle() {
    run_cases("histogram_quantiles_match_oracle", 128, |_, rng| {
        let mut values = vec_u64(rng, 50, 500, 1, 10_000_000);
        let q = 0.01 + rng.next_f64() * 0.98;
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        let oracle = values[idx] as f64;
        let got = h.quantile(q) as f64;
        // Bucketed quantiles may differ by the bucket width (~1.6 %)
        // plus one sample of discreteness at small counts.
        let tolerance = oracle * 0.04 + values[values.len() - 1] as f64 * 0.02;
        assert!(
            (got - oracle).abs() <= tolerance + 2.0,
            "q={q} got={got} oracle={oracle}"
        );
    });
}

/// Histogram count/min/max/mean are exact regardless of bucketing.
#[test]
fn histogram_moments_exact() {
    run_cases("histogram_moments_exact", 128, |_, rng| {
        let values = vec_u64(rng, 1, 300, 0, 1_000_000);
        let mut h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.min(), *values.iter().min().unwrap());
        assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = sum as f64 / values.len() as f64;
        assert!((h.mean() - mean).abs() < 1e-6);
    });
}

/// Merging histograms equals recording the concatenation — including
/// when either side is empty.
#[test]
fn histogram_merge_is_concat() {
    run_cases("histogram_merge_is_concat", 128, |_, rng| {
        let a = vec_u64(rng, 0, 200, 0, 100_000);
        let b = vec_u64(rng, 0, 200, 0, 100_000);
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hc.count());
        assert_eq!(ha.quantile(0.5), hc.quantile(0.5));
        assert_eq!(ha.quantile(0.99), hc.quantile(0.99));
        assert_eq!(ha.min(), hc.min());
        assert_eq!(ha.max(), hc.max());
    });
}

/// The event queue pops in nondecreasing time order and returns exactly
/// the live (non-cancelled) events.
#[test]
fn event_queue_total_order() {
    run_cases("event_queue_total_order", 128, |_, rng| {
        let times = vec_u64(rng, 1, 200, 0, 1_000_000);
        let cancel_every = rng.gen_range(2, 7) as usize;
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            tokens.push((q.schedule(SimTime::from_nanos(t), i), i));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (tok, i) in tokens.iter().step_by(cancel_every) {
            q.cancel(*tok);
            cancelled.insert(*i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((t, i)) = q.pop() {
            assert!(t >= last, "time went backwards");
            assert!(!cancelled.contains(&i), "cancelled event fired");
            last = t;
            seen += 1;
        }
        assert_eq!(seen, times.len() - cancelled.len());
    });
}

/// Ties at the same timestamp preserve insertion order.
#[test]
fn event_queue_fifo_ties() {
    run_cases("event_queue_fifo_ties", 64, |_, rng| {
        let n = rng.gen_range(1, 100) as usize;
        let t = SimTime::from_nanos(rng.next_below(1000));
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(t, i);
        }
        for i in 0..n {
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
    });
}

/// All distributions produce finite non-negative samples.
#[test]
fn distributions_nonnegative_finite() {
    run_cases("distributions_nonnegative_finite", 128, |_, rng| {
        let seed = rng.next_u64();
        let mean = 0.1 + rng.next_f64() * (1e6 - 0.1);
        let dists = [
            Dist::exponential(mean),
            Dist::uniform(0.0, mean),
            Dist::LogNormal { mean, sigma: 1.0 },
            Dist::Pareto {
                scale: mean,
                shape: 1.5,
            },
            Dist::BoundedPareto {
                scale: 1.0,
                shape: 1.2,
                cap: mean.max(2.0),
            },
        ];
        let mut sample_rng = Rng::new(seed);
        for d in &dists {
            for _ in 0..100 {
                let x = d.sample(&mut sample_rng);
                assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
            }
        }
    });
}

/// RNG ranges are honoured for arbitrary bounds.
#[test]
fn rng_range_bounds() {
    run_cases("rng_range_bounds", 128, |_, rng| {
        let seed = rng.next_u64();
        let lo = rng.next_below(1000);
        let width = rng.gen_range(1, 100_000);
        let mut r = Rng::new(seed);
        for _ in 0..200 {
            let v = r.gen_range(lo, lo + width);
            assert!((lo..lo + width).contains(&v));
        }
    });
}

/// Welford statistics match naive two-pass computation.
#[test]
fn online_stats_match_naive() {
    run_cases("online_stats_match_naive", 128, |_, rng| {
        let n = rng.gen_range(2, 200) as usize;
        let values: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
    });
}

/// Time arithmetic round-trips.
#[test]
fn time_arithmetic_roundtrip() {
    run_cases("time_arithmetic_roundtrip", 256, |_, rng| {
        let a = rng.next_below(u64::MAX / 4);
        let d = rng.next_below(u64::MAX / 4);
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        assert_eq!((t + dur) - dur, t);
        assert_eq!((t + dur) - t, dur);
        assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    });
}
