//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use taichi_sim::{Dist, EventQueue, Histogram, OnlineStats, Rng, SimDuration, SimTime};

proptest! {
    /// The histogram's quantiles track a naive sorted-vector oracle
    /// within the structure's documented ~2 % relative error.
    #[test]
    fn histogram_quantiles_match_oracle(
        mut values in prop::collection::vec(1u64..10_000_000, 50..500),
        q in 0.01f64..0.99,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        let oracle = values[idx] as f64;
        let got = h.quantile(q) as f64;
        // Bucketed quantiles may differ by the bucket width (~1.6 %)
        // plus one sample of discreteness at small counts.
        let tolerance = oracle * 0.04 + values[values.len() - 1] as f64 * 0.02;
        prop_assert!(
            (got - oracle).abs() <= tolerance + 2.0,
            "q={q} got={got} oracle={oracle}"
        );
    }

    /// Histogram count/min/max/mean are exact regardless of bucketing.
    #[test]
    fn histogram_moments_exact(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = sum as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a in prop::collection::vec(0u64..100_000, 0..200),
        b in prop::collection::vec(0u64..100_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.quantile(0.5), hc.quantile(0.5));
        prop_assert_eq!(ha.quantile(0.99), hc.quantile(0.99));
        prop_assert_eq!(ha.max(), hc.max());
    }

    /// The event queue pops in nondecreasing time order and returns
    /// exactly the live (non-cancelled) events.
    #[test]
    fn event_queue_total_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
        cancel_every in 2usize..7,
    ) {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            tokens.push((q.schedule(SimTime::from_nanos(t), i), i));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (tok, i) in tokens.iter().step_by(cancel_every) {
            q.cancel(*tok);
            cancelled.insert(*i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            prop_assert!(!cancelled.contains(&i), "cancelled event fired");
            last = t;
            seen += 1;
        }
        prop_assert_eq!(seen, times.len() - cancelled.len());
    }

    /// Ties at the same timestamp preserve insertion order.
    #[test]
    fn event_queue_fifo_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_nanos(t), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
    }

    /// All distributions produce finite non-negative samples.
    #[test]
    fn distributions_nonnegative_finite(seed in any::<u64>(), mean in 0.1f64..1e6) {
        let dists = [
            Dist::exponential(mean),
            Dist::uniform(0.0, mean),
            Dist::LogNormal { mean, sigma: 1.0 },
            Dist::Pareto { scale: mean, shape: 1.5 },
            Dist::BoundedPareto { scale: 1.0, shape: 1.2, cap: mean.max(2.0) },
        ];
        let mut rng = Rng::new(seed);
        for d in &dists {
            for _ in 0..100 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
            }
        }
    }

    /// RNG ranges are honoured for arbitrary bounds.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..100_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let v = rng.gen_range(lo, lo + width);
            prop_assert!((lo..lo + width).contains(&v));
        }
    }

    /// Welford statistics match naive two-pass computation.
    #[test]
    fn online_stats_match_naive(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Time arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrip(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }
}
