//! Program factories for the three CP task categories (§2.3).
//!
//! Each factory emits a plain [`Program`]; durations are drawn from the
//! crate's production-calibrated distributions using the caller's RNG
//! so whole-fleet generation is deterministic per seed.

use crate::routines;
use taichi_os::{LockId, Program, Segment};
use taichi_sim::{Dist, Rng, SimDuration};

/// The three CP categories from §2.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpTaskKind {
    /// Emulated-device init/deinit (gates VM creation/destruction).
    DeviceManagement,
    /// Metric collection and log preservation.
    Monitoring,
    /// Cluster-manager API handling.
    Orchestration,
}

/// Well-known kernel locks contended by CP tasks.
pub mod locks {
    use taichi_os::LockId;

    /// The NIC driver configuration lock (Fig. 4's example).
    pub const NIC_DRIVER: LockId = LockId(1);
    /// The block-device driver configuration lock.
    pub const BLK_DRIVER: LockId = LockId(2);
    /// The logging subsystem lock.
    pub const LOGGING: LockId = LockId(3);
}

/// Deterministic generator of CP task programs.
#[derive(Clone, Debug)]
pub struct TaskFactory {
    /// Routine-duration distribution in milliseconds.
    routine_ms: Dist,
    /// User-space compute per phase, in microseconds.
    compute_us: Dist,
    /// Preemptible syscall body per phase, in microseconds.
    syscall_us: Dist,
}

impl Default for TaskFactory {
    fn default() -> Self {
        TaskFactory {
            routine_ms: routines::mixed_routine_ms(0.10),
            compute_us: Dist::LogNormal {
                mean: 400.0,
                sigma: 0.6,
            },
            syscall_us: Dist::LogNormal {
                mean: 150.0,
                sigma: 0.5,
            },
        }
    }
}

impl TaskFactory {
    /// Creates a factory with explicit distributions.
    pub fn new(routine_ms: Dist, compute_us: Dist, syscall_us: Dist) -> Self {
        TaskFactory {
            routine_ms,
            compute_us,
            syscall_us,
        }
    }

    /// Builds a device-initialisation task: parse → `phases` rounds of
    /// (syscall + lock-guarded non-preemptible configure) → commit.
    ///
    /// This is the Fig. 1c red-path step 3 body and the Fig. 4 latency
    /// spike culprit: the configure routines hold a driver lock inside
    /// a non-preemptible section.
    pub fn device_init(&self, lock: LockId, phases: u32, rng: &mut Rng) -> Program {
        let mut p = Program::new().compute(self.compute_us.sample_micros(rng));
        for i in 0..phases {
            p = p.syscall(self.syscall_us.sample_micros(rng));
            let routine = self.routine_ms.sample_millis(rng);
            // Only the device-registration phase takes the shared
            // driver lock, and holds it only for the list-insertion
            // part of the routine; per-device configuration phases are
            // non-preemptible but lock-free.
            p = if i == 0 {
                let hold = SimDuration::from_nanos(routine.as_nanos() / 4);
                p.critical_locked(hold, lock).critical(routine - hold)
            } else {
                p.critical(routine)
            };
        }
        p.compute(self.compute_us.sample_micros(rng))
    }

    /// Builds a monitoring task: `iterations` rounds of collect
    /// (syscall) + log append (short lock-guarded routine) + sleep.
    pub fn monitoring(&self, iterations: u32, period: SimDuration, rng: &mut Rng) -> Program {
        let mut p = Program::new();
        for _ in 0..iterations {
            p = p
                .syscall(self.syscall_us.sample_micros(rng))
                .critical_locked(
                    // Log appends are short holds: scale routine down.
                    SimDuration::from_nanos(self.routine_ms.sample_micros(rng).as_nanos()),
                    locks::LOGGING,
                )
                .sleep(period);
        }
        p
    }

    /// Builds an orchestration task: parse request, a couple of
    /// syscalls, a response compute.
    pub fn orchestration(&self, rng: &mut Rng) -> Program {
        Program::new()
            .compute(self.compute_us.sample_micros(rng))
            .syscall(self.syscall_us.sample_micros(rng))
            .syscall(self.syscall_us.sample_micros(rng))
            .compute(self.compute_us.sample_micros(rng))
    }

    /// Builds a task of the given kind with default shape parameters.
    pub fn build(&self, kind: CpTaskKind, rng: &mut Rng) -> Program {
        match kind {
            CpTaskKind::DeviceManagement => self.device_init(locks::NIC_DRIVER, 3, rng),
            CpTaskKind::Monitoring => self.monitoring(5, SimDuration::from_millis(10), rng),
            CpTaskKind::Orchestration => self.orchestration(rng),
        }
    }
}

/// Returns true when the program contains at least one non-preemptible
/// segment (used by tests asserting CP realism).
pub fn has_non_preemptible(p: &Program) -> bool {
    p.segments().iter().any(|s| s.is_non_preemptible())
}

/// Returns true when the program contains at least one lock-guarded
/// segment.
pub fn has_locked_section(p: &Program) -> bool {
    p.segments()
        .iter()
        .any(|s| matches!(s, Segment::NonPreemptible { lock: Some(_), .. }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_init_shape() {
        let f = TaskFactory::default();
        let mut rng = Rng::new(1);
        let p = f.device_init(locks::NIC_DRIVER, 3, &mut rng);
        // parse + (syscall + locked hold + unlocked remainder)
        // + 2*(syscall + critical) + commit = 9 segments.
        assert_eq!(p.len(), 9);
        assert!(has_non_preemptible(&p));
        assert!(has_locked_section(&p));
        assert!(p.total_cpu_time() > SimDuration::from_micros(100));
    }

    #[test]
    fn monitoring_sleeps_between_rounds() {
        let f = TaskFactory::default();
        let mut rng = Rng::new(2);
        let p = f.monitoring(4, SimDuration::from_millis(10), &mut rng);
        let sleeps = p
            .segments()
            .iter()
            .filter(|s| matches!(s, Segment::Sleep(_)))
            .count();
        assert_eq!(sleeps, 4);
        assert!(has_locked_section(&p));
    }

    #[test]
    fn orchestration_is_preemptible_only() {
        let f = TaskFactory::default();
        let mut rng = Rng::new(3);
        let p = f.orchestration(&mut rng);
        assert!(!has_non_preemptible(&p));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn factory_is_deterministic_per_seed() {
        let f = TaskFactory::default();
        let mut r1 = Rng::new(9);
        let mut r2 = Rng::new(9);
        let p1 = f.build(CpTaskKind::DeviceManagement, &mut r1);
        let p2 = f.build(CpTaskKind::DeviceManagement, &mut r2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn build_covers_all_kinds() {
        let f = TaskFactory::default();
        let mut rng = Rng::new(4);
        for kind in [
            CpTaskKind::DeviceManagement,
            CpTaskKind::Monitoring,
            CpTaskKind::Orchestration,
        ] {
            let p = f.build(kind, &mut rng);
            assert!(!p.is_empty());
        }
    }
}
