//! The `synth_cp` benchmark (§6.1, Table 3).
//!
//! An in-house synthetic CP stressor: each task is tuned to ~50 ms of
//! CPU time, mixing user-space computation, syscalls, and
//! non-preemptible kernel routines (so it "accesses non-preemptible
//! kernel routines" like the classic CP tasks it emulates). The
//! benchmark spawns `concurrency` tasks simultaneously and reports the
//! average task execution (turnaround) time — the Fig. 11 metric.

use taichi_os::Program;
use taichi_sim::{Rng, SimDuration};

/// Builder for synth_cp task programs.
#[derive(Clone, Debug)]
pub struct SynthCp {
    /// Target CPU time per task.
    pub task_cpu_time: SimDuration,
    /// Number of (compute, syscall, routine) rounds per task.
    pub rounds: u32,
    /// Fraction of each round spent in a non-preemptible routine.
    pub routine_fraction: f64,
    /// Fraction of each round spent in preemptible syscall work.
    pub syscall_fraction: f64,
}

impl Default for SynthCp {
    fn default() -> Self {
        SynthCp {
            task_cpu_time: SimDuration::from_millis(50),
            rounds: 10,
            routine_fraction: 0.4,
            syscall_fraction: 0.2,
        }
    }
}

impl SynthCp {
    /// Builds one synth_cp task program.
    ///
    /// Round durations are jittered ±10 % (deterministically per RNG)
    /// so concurrent tasks do not phase-lock, while total CPU time per
    /// task stays at `task_cpu_time` in expectation.
    pub fn task(&self, rng: &mut Rng) -> Program {
        let rounds = self.rounds.max(1);
        let per_round = self.task_cpu_time.as_nanos() / rounds as u64;
        let mut p = Program::new();
        for _ in 0..rounds {
            let jitter = 0.9 + 0.2 * rng.next_f64();
            let round_ns = (per_round as f64 * jitter) as u64;
            let routine = (round_ns as f64 * self.routine_fraction) as u64;
            let syscall = (round_ns as f64 * self.syscall_fraction) as u64;
            let compute = round_ns.saturating_sub(routine + syscall);
            p = p
                .compute(SimDuration::from_nanos(compute))
                .syscall(SimDuration::from_nanos(syscall))
                .critical(SimDuration::from_nanos(routine));
        }
        p
    }

    /// Builds `concurrency` task programs for one benchmark run.
    pub fn workload(&self, concurrency: u32, rng: &mut Rng) -> Vec<Program> {
        (0..concurrency).map(|_| self.task(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_cpu_time_close_to_target() {
        let s = SynthCp::default();
        let mut rng = Rng::new(1);
        let mut total = 0u64;
        let n = 200;
        for _ in 0..n {
            total += s.task(&mut rng).total_cpu_time().as_nanos();
        }
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!((mean_ms - 50.0).abs() < 2.0, "mean {mean_ms} ms");
    }

    #[test]
    fn task_contains_all_three_segment_kinds() {
        let s = SynthCp::default();
        let mut rng = Rng::new(2);
        let p = s.task(&mut rng);
        assert_eq!(p.len() as u32, 3 * s.rounds);
        assert!(crate::task::has_non_preemptible(&p));
    }

    #[test]
    fn routines_are_ms_scale() {
        // Default: 50 ms / 10 rounds * 0.4 = ~2 ms routines — squarely
        // in the Fig. 5 1–5 ms band.
        let s = SynthCp::default();
        let mut rng = Rng::new(3);
        let p = s.task(&mut rng);
        let routine_ns: Vec<u64> = p
            .segments()
            .iter()
            .filter(|seg| seg.is_non_preemptible())
            .map(|seg| seg.cpu_time().as_nanos())
            .collect();
        assert_eq!(routine_ns.len(), 10);
        for ns in routine_ns {
            assert!((1_500_000..3_000_000).contains(&ns), "routine {ns} ns");
        }
    }

    #[test]
    fn workload_size() {
        let s = SynthCp::default();
        let mut rng = Rng::new(4);
        assert_eq!(s.workload(32, &mut rng).len(), 32);
    }

    #[test]
    fn zero_rounds_clamped() {
        let s = SynthCp {
            rounds: 0,
            ..SynthCp::default()
        };
        let mut rng = Rng::new(5);
        let p = s.task(&mut rng);
        assert_eq!(p.len(), 3);
    }
}
