//! The VM-creation workflow (Fig. 1c, red path).
//!
//! Cluster management issues a create request (①); CP tasks parse it
//! (②) and coordinate the data plane to initialise every emulated
//! device (③, ④); once *all* devices are ready, QEMU on the host is
//! notified to instantiate the VM (⑤). VM startup time is therefore
//! gated by the slowest device-initialisation task — which is why CP
//! scheduling latency shows up directly in the Figs. 2/17 SLO metric.
//!
//! Instance density scales the device count: the paper's VMs carry one
//! dual-queue virtio-net plus four virtio-blk devices (Table 4), and
//! §3.1 notes the device count per CP grows ~linearly with density.

use crate::task::{locks, TaskFactory};
use taichi_os::{Program, ThreadId};
use taichi_sim::{Rng, SimDuration, SimTime};

/// One VM-creation request.
#[derive(Clone, Debug)]
pub struct VmCreateRequest {
    /// VM identifier.
    pub vm_id: u64,
    /// Network devices to initialise.
    pub nic_devices: u32,
    /// Block devices to initialise.
    pub blk_devices: u32,
    /// When cluster management issued the request.
    pub issued_at: SimTime,
    /// Host-side QEMU instantiation time once devices are ready
    /// (outside the SmartNIC; modelled as a constant).
    pub qemu_boot: SimDuration,
}

impl VmCreateRequest {
    /// A request matching the paper's Table 4 VM at the given density
    /// multiplier (1 = normal density).
    pub fn at_density(vm_id: u64, density: u32, issued_at: SimTime) -> Self {
        let d = density.max(1);
        VmCreateRequest {
            vm_id,
            nic_devices: d,
            blk_devices: 4 * d,
            issued_at,
            qemu_boot: SimDuration::from_millis(120),
        }
    }

    /// Total devices this request must initialise.
    pub fn device_count(&self) -> u32 {
        self.nic_devices + self.blk_devices
    }

    /// Builds the device-initialisation programs for this request.
    ///
    /// NIC inits contend on the NIC driver lock, block inits on the
    /// block driver lock — matching the per-subsystem driver locks the
    /// paper's Fig. 4 describes.
    pub fn device_programs(&self, factory: &TaskFactory, rng: &mut Rng) -> Vec<Program> {
        let mut out = Vec::with_capacity(self.device_count() as usize);
        for _ in 0..self.nic_devices {
            out.push(factory.device_init(locks::NIC_DRIVER, 3, rng));
        }
        for _ in 0..self.blk_devices {
            out.push(factory.device_init(locks::BLK_DRIVER, 2, rng));
        }
        out
    }
}

/// Tracks one in-flight VM creation to completion.
#[derive(Clone, Debug)]
pub struct VmStartupTracker {
    /// The request being tracked.
    pub request: VmCreateRequest,
    /// Device-init threads still outstanding.
    outstanding: Vec<ThreadId>,
    /// When the last device finished (devices ready).
    devices_ready_at: Option<SimTime>,
}

impl VmStartupTracker {
    /// Starts tracking `request` with the spawned device threads.
    pub fn new(request: VmCreateRequest, device_threads: Vec<ThreadId>) -> Self {
        assert_eq!(
            device_threads.len(),
            request.device_count() as usize,
            "one thread per device"
        );
        VmStartupTracker {
            request,
            outstanding: device_threads,
            devices_ready_at: None,
        }
    }

    /// Notifies the tracker that a thread finished at `now`. Returns
    /// `true` when this completed the last outstanding device.
    pub fn on_thread_finished(&mut self, tid: ThreadId, now: SimTime) -> bool {
        let before = self.outstanding.len();
        self.outstanding.retain(|&t| t != tid);
        if self.outstanding.is_empty() && before > 0 {
            self.devices_ready_at = Some(now);
            true
        } else {
            false
        }
    }

    /// Outstanding device-init threads.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// True once every device finished.
    pub fn devices_ready(&self) -> bool {
        self.devices_ready_at.is_some()
    }

    /// The VM startup time: request issue → devices ready → QEMU boot.
    ///
    /// `None` until all devices are initialised.
    pub fn startup_time(&self) -> Option<SimDuration> {
        self.devices_ready_at
            .map(|r| (r - self.request.issued_at) + self.request.qemu_boot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_scales_devices() {
        let r1 = VmCreateRequest::at_density(1, 1, SimTime::ZERO);
        assert_eq!(r1.nic_devices, 1);
        assert_eq!(r1.blk_devices, 4);
        assert_eq!(r1.device_count(), 5);
        let r4 = VmCreateRequest::at_density(2, 4, SimTime::ZERO);
        assert_eq!(r4.device_count(), 20);
        // Zero density clamps to 1.
        assert_eq!(
            VmCreateRequest::at_density(3, 0, SimTime::ZERO).device_count(),
            5
        );
    }

    #[test]
    fn device_programs_match_count_and_locks() {
        let r = VmCreateRequest::at_density(1, 2, SimTime::ZERO);
        let f = TaskFactory::default();
        let mut rng = Rng::new(1);
        let progs = r.device_programs(&f, &mut rng);
        assert_eq!(progs.len(), 10);
        for p in &progs {
            assert!(crate::task::has_locked_section(p));
        }
    }

    #[test]
    fn tracker_completes_on_last_device() {
        let r = VmCreateRequest::at_density(1, 1, SimTime::from_millis(10));
        let tids: Vec<ThreadId> = (0..5).map(ThreadId).collect();
        let mut tr = VmStartupTracker::new(r, tids.clone());
        assert_eq!(tr.outstanding(), 5);
        for (i, &tid) in tids.iter().enumerate() {
            let now = SimTime::from_millis(20 + i as u64 * 10);
            let last = tr.on_thread_finished(tid, now);
            assert_eq!(last, i == 4);
        }
        assert!(tr.devices_ready());
        // issued at 10 ms, last device at 60 ms, qemu 120 ms → 170 ms.
        assert_eq!(tr.startup_time().unwrap(), SimDuration::from_millis(170));
    }

    #[test]
    fn unknown_thread_ignored() {
        let r = VmCreateRequest::at_density(1, 1, SimTime::ZERO);
        let tids: Vec<ThreadId> = (0..5).map(ThreadId).collect();
        let mut tr = VmStartupTracker::new(r, tids);
        assert!(!tr.on_thread_finished(ThreadId(99), SimTime::from_millis(1)));
        assert_eq!(tr.outstanding(), 5);
        assert!(tr.startup_time().is_none());
    }

    #[test]
    #[should_panic(expected = "one thread per device")]
    fn tracker_thread_count_mismatch_panics() {
        let r = VmCreateRequest::at_density(1, 1, SimTime::ZERO);
        VmStartupTracker::new(r, vec![ThreadId(0)]);
    }
}
