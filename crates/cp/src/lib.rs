//! Control-plane task models.
//!
//! The paper's control plane is an ecosystem of 300–500 heterogeneous
//! tasks in three categories (§2.3): device management (the VM
//! startup / teardown path), performance monitoring, and CSP
//! orchestration. Crucially for Tai Chi, CP tasks are *plain OS
//! threads*: nothing in this crate knows Tai Chi exists — tasks are
//! `taichi_os::Program`s bound to CPUs by standard affinity, which is
//! exactly the zero-modification transparency claim (C3).
//!
//! - [`routines`]: the production non-preemptible-routine duration
//!   distribution (Fig. 5: >456 k routines above 1 ms over 12 h,
//!   94.5 % in 1–5 ms, max 67 ms).
//! - [`task`]: program factories for the three CP categories.
//! - [`vm_lifecycle`]: the Fig. 1c red-path VM-creation workflow —
//!   device-initialisation tasks whose completion gates QEMU's VM
//!   instantiation, giving the VM-startup-time metric of Figs. 2 & 17.
//! - [`synth`]: the `synth_cp` stress benchmark (50 ms tasks mixing
//!   user compute, syscalls and non-preemptible routines) used for
//!   Fig. 11.

pub mod routines;
pub mod synth;
pub mod task;
pub mod vm_lifecycle;

pub use routines::fig5_routine_ms;
pub use synth::SynthCp;
pub use task::{CpTaskKind, TaskFactory};
pub use vm_lifecycle::{VmCreateRequest, VmStartupTracker};
