//! Production non-preemptible routine durations (Fig. 5).
//!
//! The paper traced non-preemptible kernel routines across dozens of
//! production nodes for 12 hours and reports, for routines exceeding
//! 1 ms: 94.5 % last 1–5 ms, the rest stretch up to a 67 ms maximum.
//! Routines below 1 ms (the vast majority by count) are short lock
//! holds and IRQ-off windows.
//!
//! Two distributions are provided:
//!
//! - [`fig5_routine_ms`]: only the long-tail (>1 ms) population, with
//!   bucket weights matching the published Fig. 5 histogram shape.
//! - [`mixed_routine_ms`]: the full population — mostly sub-millisecond
//!   holds with a configurable long-tail fraction — used when
//!   synthesising realistic CP task programs.

use taichi_sim::Dist;

/// Fig. 5 long-tail routine durations in milliseconds (>1 ms only).
///
/// Bucket weights follow the published histogram: 94.5 % in 1–5 ms,
/// with the remainder spread over 5–67 ms with geometrically decaying
/// mass (the paper's per-bucket counts decay roughly 10× per bucket).
pub fn fig5_routine_ms() -> Dist {
    Dist::Empirical {
        buckets: vec![
            (1.0, 5.0, 94.5),
            (5.0, 10.0, 4.0),
            (10.0, 20.0, 1.0),
            (20.0, 40.0, 0.4),
            (40.0, 67.0, 0.1),
        ],
    }
}

/// Full routine population in milliseconds.
///
/// `long_tail_fraction` of routines come from [`fig5_routine_ms`]; the
/// rest are sub-millisecond holds (log-uniform-ish over 10 µs–1 ms,
/// approximated piecewise).
pub fn mixed_routine_ms(long_tail_fraction: f64) -> Dist {
    let short = Dist::Empirical {
        buckets: vec![(0.01, 0.05, 40.0), (0.05, 0.2, 35.0), (0.2, 1.0, 25.0)],
    };
    Dist::Mixture {
        parts: vec![
            (1.0 - long_tail_fraction.clamp(0.0, 1.0), short),
            (long_tail_fraction.clamp(0.0, 1.0), fig5_routine_ms()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_sim::Rng;

    #[test]
    fn fig5_shape_matches_paper() {
        let d = fig5_routine_ms();
        let mut rng = Rng::new(5);
        let n = 200_000;
        let mut in_1_5 = 0usize;
        let mut max = 0.0f64;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((1.0..=67.0).contains(&x), "sample {x}");
            if x < 5.0 {
                in_1_5 += 1;
            }
            max = max.max(x);
        }
        let frac = in_1_5 as f64 / n as f64;
        assert!((frac - 0.945).abs() < 0.01, "1–5 ms fraction {frac}");
        assert!(max > 40.0, "tail missing, max {max}");
    }

    #[test]
    fn mixed_is_mostly_short() {
        let d = mixed_routine_ms(0.02);
        let mut rng = Rng::new(6);
        let n = 100_000;
        let long = (0..n).filter(|_| d.sample(&mut rng) > 1.0).count();
        let frac = long as f64 / n as f64;
        assert!((frac - 0.02).abs() < 0.005, "long fraction {frac}");
    }

    #[test]
    fn mixed_extremes_clamp() {
        let all_long = mixed_routine_ms(5.0); // clamped to 1.0
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            assert!(all_long.sample(&mut rng) >= 1.0);
        }
        let all_short = mixed_routine_ms(-1.0); // clamped to 0.0
        for _ in 0..1000 {
            assert!(all_short.sample(&mut rng) <= 1.0);
        }
    }
}
