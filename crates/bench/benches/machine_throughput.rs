//! Benchmark of whole-machine simulation throughput.
//!
//! Measures wall-clock cost per simulated interval for each scheduling
//! mode — both a performance regression guard for the simulator and a
//! sanity check that Tai Chi's extra machinery (probes, vCPU grants)
//! does not blow up the event count. Uses the in-repo timing loop
//! ([`taichi_bench::bench_coarse`]) so the workspace builds offline.

use taichi_bench::bench_coarse;
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::SynthCp;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::{Dist, Rng, SimTime};

fn build(mode: Mode) -> Machine {
    let mut m = Machine::new(MachineConfig::default(), mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(1);
    m.schedule_cp_batch(synth.workload(8, &mut rng), SimTime::ZERO);
    m
}

fn main() {
    for mode in [Mode::Baseline, Mode::TaiChi, Mode::Type2] {
        bench_coarse(&format!("simulate_20ms/{mode}"), 10, || {
            let mut m = build(mode);
            m.run_until(SimTime::from_millis(20));
            m.kernel().finished_count()
        });
    }
}
