//! Criterion micro-benchmarks of the Tai Chi scheduler hot paths.
//!
//! These are the operations on the per-packet / per-yield fast paths;
//! the paper's "negligible scheduling overhead" claim rests on all of
//! them being nanosecond-scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use taichi_core::orchestrator::IpiOrchestrator;
use taichi_core::probe_sw::AdaptiveYield;
use taichi_core::slice::AdaptiveSlice;
use taichi_core::vcpu_sched::VcpuScheduler;
use taichi_hw::{CpuId, HwWorkloadProbe, IpiMessage, IrqVector};
use taichi_os::{Kernel, KernelConfig};
use taichi_sim::{EventQueue, Histogram, Rng, SimDuration, SimTime};
use taichi_virt::VmExitReason;

fn bench_hw_probe(c: &mut Criterion) {
    let mut probe = HwWorkloadProbe::new(12);
    probe.set_state(CpuId(3), taichi_hw::CpuExecState::VState);
    c.bench_function("hw_probe_check_on_packet", |b| {
        b.iter(|| probe.check_on_packet(black_box(CpuId(3))))
    });
}

fn bench_adaptive_controllers(c: &mut Criterion) {
    let mut y = AdaptiveYield::new(12, 200, 25, 6400);
    c.bench_function("adaptive_yield_update", |b| {
        b.iter(|| {
            y.on_vm_exit(black_box(CpuId(2)), VmExitReason::SliceExpired);
            y.on_vm_exit(black_box(CpuId(2)), VmExitReason::HwProbe);
        })
    });
    let mut s = AdaptiveSlice::new(
        12,
        SimDuration::from_micros(50),
        SimDuration::from_micros(1600),
    );
    c.bench_function("adaptive_slice_update", |b| {
        b.iter(|| {
            s.on_vm_exit(black_box(CpuId(2)), VmExitReason::SliceExpired);
            s.on_vm_exit(black_box(CpuId(2)), VmExitReason::HwProbe);
        })
    });
}

fn bench_ipi_routing(c: &mut Criterion) {
    let cp: Vec<CpuId> = (8..12).map(CpuId).collect();
    let mut kernel = Kernel::new(KernelConfig::default(), &cp);
    let mut orch = IpiOrchestrator::new(12);
    orch.register_vcpus(&mut kernel, 8, SimTime::ZERO);
    let msg = IpiMessage {
        src: CpuId(8),
        dst: CpuId(14),
        vector: IrqVector::RESCHEDULE,
    };
    c.bench_function("ipi_route", |b| {
        b.iter(|| orch.route(black_box(msg), |i| i % 2 == 0))
    });
}

fn bench_vcpu_pick(c: &mut Criterion) {
    let ids: Vec<CpuId> = (12..20).map(CpuId).collect();
    let mut sched = VcpuScheduler::new(&ids, 12);
    c.bench_function("vcpu_pick_runnable", |b| {
        b.iter(|| sched.pick_runnable(|i| black_box(i) >= 4))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            q.schedule(SimTime::from_nanos(t), t);
            black_box(q.pop())
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = Histogram::new();
    let mut rng = Rng::new(1);
    c.bench_function("histogram_record", |b| {
        b.iter(|| h.record(black_box(rng.next_below(1_000_000))))
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = Rng::new(42);
    c.bench_function("rng_next_u64", |b| b.iter(|| black_box(rng.next_u64())));
}

criterion_group!(
    benches,
    bench_hw_probe,
    bench_adaptive_controllers,
    bench_ipi_routing,
    bench_vcpu_pick,
    bench_event_queue,
    bench_histogram,
    bench_rng
);
criterion_main!(benches);
