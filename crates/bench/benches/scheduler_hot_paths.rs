//! Micro-benchmarks of the Tai Chi scheduler hot paths.
//!
//! These are the operations on the per-packet / per-yield fast paths;
//! the paper's "negligible scheduling overhead" claim rests on all of
//! them being nanosecond-scale. Uses the in-repo timing loop
//! ([`taichi_bench::bench`]) so the workspace builds offline.

use std::hint::black_box;

use taichi_bench::bench;
use taichi_core::machine::FaultHealth;
use taichi_core::orchestrator::IpiOrchestrator;
use taichi_core::probe_sw::AdaptiveYield;
use taichi_core::sched::{make_scheduler, KernelCtx};
use taichi_core::slice::AdaptiveSlice;
use taichi_core::vcpu_sched::VcpuScheduler;
use taichi_core::{MachineConfig, Mode};
use taichi_hw::{CpuId, HwWorkloadProbe, IpiMessage, IrqVector};
use taichi_os::{Kernel, KernelConfig, SoftirqKind};
use taichi_sim::{EventQueue, Histogram, Rng, SimDuration, SimTime};
use taichi_virt::VmExitReason;

fn main() {
    let mut probe = HwWorkloadProbe::new(12);
    probe.set_state(CpuId(3), taichi_hw::CpuExecState::VState);
    bench("hw_probe_check_on_packet", || {
        probe.check_on_packet(black_box(CpuId(3)))
    });

    let mut y = AdaptiveYield::new(12, 200, 25, 6400);
    bench("adaptive_yield_update", || {
        y.on_vm_exit(black_box(CpuId(2)), VmExitReason::SliceExpired);
        y.on_vm_exit(black_box(CpuId(2)), VmExitReason::HwProbe);
    });

    let mut s = AdaptiveSlice::new(
        12,
        SimDuration::from_micros(50),
        SimDuration::from_micros(1600),
    );
    bench("adaptive_slice_update", || {
        s.on_vm_exit(black_box(CpuId(2)), VmExitReason::SliceExpired);
        s.on_vm_exit(black_box(CpuId(2)), VmExitReason::HwProbe);
    });

    let cp: Vec<CpuId> = (8..12).map(CpuId).collect();
    let mut kernel = Kernel::new(KernelConfig::default(), &cp);
    let mut orch = IpiOrchestrator::new(12);
    orch.register_vcpus(&mut kernel, 8, SimTime::ZERO);
    let msg = IpiMessage {
        src: CpuId(8),
        dst: CpuId(14),
        vector: IrqVector::RESCHEDULE,
    };
    bench("ipi_route", || orch.route(black_box(msg), |i| i % 2 == 0));

    // The trait-dispatched vCPU pick, end to end: dyn call + ctx
    // helpers reading real kernel state (descheduled check + pending
    // softirq work on the back half of the pool).
    let mut pick_kernel = Kernel::new(KernelConfig::default(), &cp);
    let mut pick_orch = IpiOrchestrator::new(12);
    let vcpu_ids = pick_orch.register_vcpus(&mut pick_kernel, 8, SimTime::ZERO);
    for &v in &vcpu_ids[4..] {
        pick_kernel.softirqs().raise(v, SoftirqKind::TaiChiVcpu);
    }
    let vsched = VcpuScheduler::new(&vcpu_ids, 12);
    let hw = HwWorkloadProbe::new(12);
    let health = FaultHealth::default();
    let mut policy = make_scheduler(Mode::TaiChi, &MachineConfig::default());
    bench("policy_pick_vcpu", || {
        let ctx = KernelCtx {
            kernel: &pick_kernel,
            vsched: &vsched,
            orchestrator: &pick_orch,
            probe: &hw,
            health: &health,
            now: SimTime::ZERO,
        };
        policy.pick_vcpu(black_box(&ctx))
    });

    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    bench("event_queue_push_pop", || {
        t += 100;
        q.schedule(SimTime::from_nanos(t), t);
        black_box(q.pop())
    });

    let mut h = Histogram::new();
    let mut rng = Rng::new(1);
    bench("histogram_record", || {
        h.record(black_box(rng.next_below(1_000_000)))
    });

    let mut rng = Rng::new(42);
    bench("rng_next_u64", || black_box(rng.next_u64()));
}
