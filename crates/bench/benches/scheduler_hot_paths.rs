//! Micro-benchmarks of the Tai Chi scheduler hot paths.
//!
//! These are the operations on the per-packet / per-yield fast paths;
//! the paper's "negligible scheduling overhead" claim rests on all of
//! them being nanosecond-scale. Uses the in-repo timing loop
//! ([`taichi_bench::bench`]) so the workspace builds offline.

use std::hint::black_box;

use taichi_bench::bench;
use taichi_core::orchestrator::IpiOrchestrator;
use taichi_core::probe_sw::AdaptiveYield;
use taichi_core::slice::AdaptiveSlice;
use taichi_core::vcpu_sched::VcpuScheduler;
use taichi_hw::{CpuId, HwWorkloadProbe, IpiMessage, IrqVector};
use taichi_os::{Kernel, KernelConfig};
use taichi_sim::{EventQueue, Histogram, Rng, SimDuration, SimTime};
use taichi_virt::VmExitReason;

fn main() {
    let mut probe = HwWorkloadProbe::new(12);
    probe.set_state(CpuId(3), taichi_hw::CpuExecState::VState);
    bench("hw_probe_check_on_packet", || {
        probe.check_on_packet(black_box(CpuId(3)))
    });

    let mut y = AdaptiveYield::new(12, 200, 25, 6400);
    bench("adaptive_yield_update", || {
        y.on_vm_exit(black_box(CpuId(2)), VmExitReason::SliceExpired);
        y.on_vm_exit(black_box(CpuId(2)), VmExitReason::HwProbe);
    });

    let mut s = AdaptiveSlice::new(
        12,
        SimDuration::from_micros(50),
        SimDuration::from_micros(1600),
    );
    bench("adaptive_slice_update", || {
        s.on_vm_exit(black_box(CpuId(2)), VmExitReason::SliceExpired);
        s.on_vm_exit(black_box(CpuId(2)), VmExitReason::HwProbe);
    });

    let cp: Vec<CpuId> = (8..12).map(CpuId).collect();
    let mut kernel = Kernel::new(KernelConfig::default(), &cp);
    let mut orch = IpiOrchestrator::new(12);
    orch.register_vcpus(&mut kernel, 8, SimTime::ZERO);
    let msg = IpiMessage {
        src: CpuId(8),
        dst: CpuId(14),
        vector: IrqVector::RESCHEDULE,
    };
    bench("ipi_route", || orch.route(black_box(msg), |i| i % 2 == 0));

    let ids: Vec<CpuId> = (12..20).map(CpuId).collect();
    let mut sched = VcpuScheduler::new(&ids, 12);
    bench("vcpu_pick_runnable", || {
        sched.pick_runnable(|i| black_box(i) >= 4)
    });

    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    bench("event_queue_push_pop", || {
        t += 100;
        q.schedule(SimTime::from_nanos(t), t);
        black_box(q.pop())
    });

    let mut h = Histogram::new();
    let mut rng = Rng::new(1);
    bench("histogram_record", || {
        h.record(black_box(rng.next_below(1_000_000)))
    });

    let mut rng = Rng::new(42);
    bench("rng_next_u64", || black_box(rng.next_u64()));
}
