//! §9 future-work ablations: pipeline-aware yielding and cache/TLB
//! isolation.
//!
//! The paper's future-work section proposes (a) consulting accelerator
//! pipeline metadata before yielding, to avoid guaranteed
//! false-positive yields, and (b) cache/TLB isolation to remove the
//! residual DP overhead caused by vCPU cache pollution. Both are
//! implemented behind `TaiChiConfig` flags; this binary quantifies
//! each against stock Tai Chi.

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::{MachineConfig, TaiChiConfig};
use taichi_cp::{CpTaskKind, TaskFactory};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::{pct, Table};
use taichi_sim::{Dist, Rng, SimDuration, SimTime};

struct Outcome {
    dp_mean_ns: f64,
    dp_p999_ns: u64,
    false_yield_rate: f64,
    vetoes: u64,
    cp_ms: f64,
}

fn run(taichi: TaiChiConfig) -> Outcome {
    let label = format!(
        "ext_ablations_pipeline{}_cache{}",
        taichi.pipeline_aware_yield as u8, taichi.cache_isolation as u8
    );
    let cfg = MachineConfig {
        seed: seed(),
        taichi,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::TaiChi);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / 8.0),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(seed() ^ 0xE);
    let mut t = SimTime::from_millis(1);
    while t < SimTime::from_millis(800) {
        m.schedule_cp_batch(
            vec![
                factory.build(CpTaskKind::DeviceManagement, &mut rng),
                factory.build(CpTaskKind::Monitoring, &mut rng),
            ],
            t,
        );
        t += SimDuration::from_millis(2);
    }
    m.run_until(SimTime::from_millis(800));
    emit_trace(&label, &m);
    let r = RunReport::collect(&m);
    Outcome {
        dp_mean_ns: r.dp.total_latency().mean(),
        dp_p999_ns: r.dp.total_latency().percentile(99.9),
        false_yield_rate: if r.yields == 0 {
            0.0
        } else {
            r.hw_probe_exits as f64 / r.yields as f64
        },
        vetoes: m.yield_vetoes(),
        cp_ms: r.mean_cp_turnaround_ms(),
    }
}

fn main() {
    init_trace();
    taichi_bench::init_policy();
    // The four ablation configs are independent machine runs: fan
    // them out across workers, results in input order.
    let runs = taichi_bench::sweep(
        vec![
            TaiChiConfig::default(),
            TaiChiConfig {
                pipeline_aware_yield: true,
                ..TaiChiConfig::default()
            },
            TaiChiConfig {
                cache_isolation: true,
                ..TaiChiConfig::default()
            },
            TaiChiConfig {
                pipeline_aware_yield: true,
                cache_isolation: true,
                ..TaiChiConfig::default()
            },
        ],
        run,
    );
    let [stock, pipeline, isolation, both] = <[_; 4]>::try_from(runs).ok().unwrap();

    let mut t = Table::new(
        "Future-work ablations (§9): pipeline-aware yield + cache isolation",
        &[
            "config",
            "dp mean (us)",
            "dp p999 (us)",
            "false-yield rate",
            "vetoes",
            "cp mean (ms)",
        ],
    );
    for (name, o) in [
        ("stock taichi", &stock),
        ("+pipeline-aware", &pipeline),
        ("+cache-isolation", &isolation),
        ("+both", &both),
    ] {
        t.row(&[
            name.to_string(),
            format!("{:.2}", o.dp_mean_ns / 1e3),
            format!("{:.1}", o.dp_p999_ns as f64 / 1e3),
            format!("{:.3}", o.false_yield_rate),
            o.vetoes.to_string(),
            format!("{:.2}", o.cp_ms),
        ]);
    }
    emit("ext_ablations", &t);

    println!(
        "cache isolation removes {} of the DP mean-latency overhead; \
         pipeline awareness vetoed {} guaranteed-false yields",
        pct((stock.dp_mean_ns - isolation.dp_mean_ns) / stock.dp_mean_ns),
        pipeline.vetoes
    );
}
