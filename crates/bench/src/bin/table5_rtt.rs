//! Table 5: ping RTT across baseline, Tai Chi, and Tai Chi without
//! the hardware workload probe.
//!
//! Paper: baseline 26/30/38/5 µs (min/avg/max/mdev); Tai Chi
//! essentially identical; without the probe +23 % min, +23.3 % avg,
//! +203 % max, +80 % mdev — the un-hidden 50 µs-scale vCPU slices show
//! up directly in the tail.

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{pct, Table};
use taichi_workloads::ping;

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let modes = [
        ("Baseline", Mode::Baseline),
        ("Tai Chi", Mode::TaiChi),
        ("Tai Chi w/o HW probe", Mode::TaiChiNoHwProbe),
    ];
    let s = seed();
    let results = sweep(modes.to_vec(), |(name, m)| (name, ping::run(m, s)));

    let mut t = Table::new(
        "Table 5: RTT across three mechanisms",
        &["mechanism", "min (us)", "avg (us)", "max (us)", "mdev (us)"],
    );
    for (name, r) in &results {
        t.row(&[
            name.to_string(),
            format!("{:.0}", r.min_us),
            format!("{:.0}", r.avg_us),
            format!("{:.0}", r.max_us),
            format!("{:.0}", r.mdev_us),
        ]);
    }
    emit("table5_rtt", &t);

    let base = &results[0].1;
    let noprobe = &results[2].1;
    println!(
        "no-probe overheads vs baseline: min {}, avg {}, max {}, mdev {} (paper: +23%, +23.3%, +203%, +80%)",
        pct((noprobe.min_us - base.min_us) / base.min_us),
        pct((noprobe.avg_us - base.avg_us) / base.avg_us),
        pct((noprobe.max_us - base.max_us) / base.max_us),
        pct((noprobe.mdev_us - base.mdev_us) / base.mdev_us),
    );
}
