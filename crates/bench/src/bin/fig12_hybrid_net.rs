//! Figure 12: netperf tcp_crr under the four virtualization designs.
//!
//! Compares the static baseline, full Tai Chi, Tai Chi-vDP (type-1
//! emulation: DP inside vCPUs) and traditional type-2 (QEMU+KVM).
//! Paper results: Tai Chi −0.2 %, Tai Chi-vDP ≈ −8 %, type-2 ≈ −26 %.

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{grouped, pct, Table};
use taichi_workloads::netperf::{run, NetperfCase};

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let modes = [Mode::Baseline, Mode::TaiChi, Mode::TaiChiVdp, Mode::Type2];
    let s = seed();
    let results = sweep(modes.to_vec(), |m| (m, run(NetperfCase::TcpCrr, m, s)));
    let base_cps = results[0].1.cps;

    let mut t = Table::new(
        "Figure 12: netperf tcp_crr across virtualization designs",
        &["mode", "CPS", "avg_rx_pps", "avg_tx_pps", "vs baseline"],
    );
    for (m, r) in &results {
        t.row(&[
            m.to_string(),
            grouped(r.cps),
            grouped(r.avg_rx_pps),
            grouped(r.avg_tx_pps),
            pct((r.cps - base_cps) / base_cps),
        ]);
    }
    emit("fig12_hybrid_net", &t);

    let loss = |i: usize| (base_cps - results[i].1.cps) / base_cps * 100.0;
    println!(
        "paper: taichi -0.2%, vDP ~-8%, type2 ~-26% | measured: taichi {:.2}%, vDP {:.1}%, type2 {:.1}%",
        -loss(1),
        -loss(2),
        -loss(3)
    );
}
