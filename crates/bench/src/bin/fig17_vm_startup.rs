//! Figure 17: average VM startup time vs instance density, with and
//! without Tai Chi (the production result: 3.1× faster startups under
//! Tai Chi at high density).

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::{CpTaskKind, TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, SimDuration, SimTime};

fn run(mode: Mode, density: u32) -> f64 {
    let cfg = MachineConfig {
        seed: seed(),
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / 8.0),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    // Production CP stack running underneath (monitoring + device
    // churn), as on the paper's nodes.
    let factory = TaskFactory::default();
    let mut bg_rng = taichi_sim::Rng::new(seed() ^ 0xB6);
    let mut t = SimTime::from_millis(1);
    while t < SimTime::from_secs(10) {
        m.schedule_cp_batch(
            vec![
                factory.build(CpTaskKind::DeviceManagement, &mut bg_rng),
                factory.build(CpTaskKind::Monitoring, &mut bg_rng),
            ],
            t,
        );
        t += SimDuration::from_millis(3);
    }
    let vms = 4;
    for i in 0..vms {
        let at = SimTime::from_millis(i as u64 * 5);
        let mut req = VmCreateRequest::at_density(i as u64, density, at);
        req.qemu_boot = SimDuration::from_millis(10);
        m.schedule_vm_create(req, &factory);
    }
    let mut horizon = SimTime::from_secs(2);
    while (m.vm_startup_times().len() as u32) < vms && horizon < SimTime::from_secs(60) {
        m.run_until(horizon);
        horizon += SimDuration::from_secs(2);
    }
    emit_trace(&format!("fig17_{mode}_d{density}"), &m);
    let s = m.vm_startup_times();
    assert_eq!(s.len() as u32, vms, "all VMs must start ({mode})");
    s.iter().map(|d| d.as_millis_f64()).sum::<f64>() / s.len() as f64
}

fn main() {
    init_trace();
    taichi_bench::init_policy();
    let mut t = Table::new(
        "Figure 17: avg VM startup time vs density, with/without Tai Chi",
        &["density", "baseline (ms)", "taichi (ms)", "reduction"],
    );
    let mut last_ratio = 0.0;
    // 4 densities x 2 modes = 8 independent machine runs fanned out
    // across workers; pairs come back adjacent, in density order.
    let jobs: Vec<(Mode, u32)> = (1..=4u32)
        .flat_map(|d| [(Mode::Baseline, d), (Mode::TaiChi, d)])
        .collect();
    let mut results = taichi_bench::sweep(jobs, |(m, d)| run(m, d)).into_iter();
    for d in 1..=4u32 {
        let base = results.next().unwrap();
        let taichi = results.next().unwrap();
        last_ratio = base / taichi;
        t.row(&[
            format!("{d}x"),
            format!("{base:.1}"),
            format!("{taichi:.1}"),
            format!("{last_ratio:.2}x"),
        ]);
    }
    emit("fig17_vm_startup", &t);
    println!("paper: 3.1x reduction at high density | measured: {last_ratio:.2}x at 4x");
}
