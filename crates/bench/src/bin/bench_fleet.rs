//! Fleet-scale throughput and footprint benchmark: machine-epochs/sec,
//! wall time, allocation traffic, and resident memory per machine for
//! a 1024-machine rack run under the pooled epoch-parallel driver.
//!
//! This binary maintains the repo's committed fleet perf trajectory,
//! `BENCH_fleet.json` at the **repository root** (the fleet analogue of
//! `bench_engine`'s `BENCH_engine.json`):
//!
//! - the `"baseline"` block is the frozen before-numbers — the
//!   pre-pooling sequential driver (one channel message per
//!   machine-epoch, hot footprint profile, per-epoch plan allocation)
//!   at 1024 machines x 8 epochs — and is **preserved verbatim** when
//!   the file already exists, so the trajectory survives re-runs;
//! - the `"current"` block is rewritten on every run with fresh
//!   measurements plus the resulting speedup and footprint ratios.
//!
//! A copy also lands in `target/experiments/` so CI can upload it as an
//! artifact without touching the working tree.
//!
//! Flags:
//!
//! - `--quick`: a smaller rack (128 machines x 6 epochs) sized for a
//!   CI smoke job — machine-epochs/sec is per-machine-normalized, so
//!   the regression gate is meaningful at either scale;
//! - `--check`: exit non-zero when machine-epochs/sec falls below 70%
//!   of the committed baseline — generous (the pooled driver normally
//!   clears the sequential baseline even on one core) but still a real
//!   regression tripwire on shared CI runners;
//! - `--sequential`: measure the sequential reference driver instead.
//!
//! The allocation figures come from the counting global allocator
//! ([`taichi_sim::alloc::CountingAlloc`]) installed in this binary:
//! `alloc_bytes_per_machine` is cumulative allocator traffic over the
//! whole run divided by the machine count, and
//! `resident_bytes_per_machine` is the simulator's own accounting of
//! per-machine backing storage (event slab, wheel chunks, rings) at
//! the final epoch boundary. Peak RSS is read from `/proc/self/status`
//! where available. None of these memory numbers are identity-compared
//! — they vary by backend, profile, and run.

use std::fmt::Write as _;
use std::path::PathBuf;

use taichi_bench::{peak_rss_kb, results_dir};
use taichi_fleet::{run, FleetConfig, FleetDriver};
use taichi_sim::alloc::{self, CountingAlloc};
use taichi_sim::par::default_workers;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Extracts `"key": { ... }` (balanced braces) from `text`, including
/// the key itself — enough JSON awareness to carry the committed
/// baseline block forward without a parser dependency.
fn extract_block<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let start = text.find(key)?;
    let open = start + text[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[start..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls `"key": <number>` out of a JSON block.
fn number_of(block: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = block.find(&tag)?;
    let num = block[at + tag.len()..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .next()?;
    num.parse().ok()
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let sequential = args.iter().any(|a| a == "--sequential");

    // The acceptance configuration: a thousand-machine rack with
    // churn and a mid-run startup storm (so the post-storm compaction
    // path is always exercised and measured).
    let mut cfg = FleetConfig {
        machines: 1024,
        epochs: 8,
        churn_per_epoch: 2.0,
        storm_epoch: Some(4),
        storm_vms_per_machine: 2,
        ..FleetConfig::default()
    };
    if quick {
        cfg.machines = 128;
        cfg.epochs = 6;
    }
    let workers = default_workers();
    let driver = if sequential {
        FleetDriver::Sequential
    } else {
        FleetDriver::EpochParallel { workers }
    };

    println!(
        "bench_fleet: {} machines x {} epochs ({:?}, storm {:?})",
        cfg.machines, cfg.epochs, driver, cfg.storm_epoch
    );

    let before = alloc::snapshot();
    let start = std::time::Instant::now();
    let result = run(&cfg, driver);
    let wall = start.elapsed().as_secs_f64();
    let delta = alloc::snapshot().since(before);

    if result.violation_count > 0 {
        for v in &result.violations {
            eprintln!("invariant violated: {v}");
        }
        std::process::exit(1);
    }

    let machines = cfg.machines as u64;
    let machine_epochs = (cfg.machines * cfg.epochs) as f64;
    let meps = machine_epochs / wall.max(1e-9);
    let alloc_bytes_per_machine = delta.bytes / machines;
    let resident_per_machine = result.resident_bytes / machines;
    let rss_kb = peak_rss_kb();

    println!(
        "wall {wall:.2} s  {meps:.0} machine-epochs/s  ({} packets, {} events)",
        result.rack.packets(),
        result.epochs.iter().map(|r| r.events).sum::<u64>(),
    );
    println!(
        "alloc traffic: {} events, {} B/machine cumulative; resident {} B/machine \
         (slab hwm {} slots, ring hwm {} pkts)",
        delta.allocation_events(),
        alloc_bytes_per_machine,
        resident_per_machine,
        result.slab_high_watermark,
        result.ring_high_watermark,
    );
    if let Some(kb) = rss_kb {
        println!("peak rss: {kb} kB total, {} kB/machine", kb / machines);
    }

    // ---- Assemble the trajectory file. ----

    let root_path = repo_root().join("BENCH_fleet.json");
    let existing = std::fs::read_to_string(&root_path).unwrap_or_default();
    let baseline_block = match extract_block(&existing, "\"baseline\"") {
        Some(b) => b.to_string(),
        None => {
            // No committed baseline: freeze this run's numbers as the
            // trajectory start. (The committed file's baseline is the
            // pre-pooling sequential driver; this fallback only fires
            // if that file is deleted.)
            let mut b = String::from("\"baseline\": {\n    \"driver\": \"sequential\",\n");
            let _ = write!(
                b,
                "    \"note\": \"frozen from a fresh run ({} machines x {} epochs)\",\n    \
                 \"machines\": {},\n    \"epochs\": {},\n    \"wall_s\": {:.2},\n    \
                 \"machine_epochs_per_sec\": {:.0},\n    \"peak_rss_kb\": {},\n    \
                 \"peak_rss_kb_per_machine\": {}\n  }}",
                cfg.machines,
                cfg.epochs,
                cfg.machines,
                cfg.epochs,
                wall,
                meps,
                rss_kb.unwrap_or(0),
                rss_kb.unwrap_or(0) / machines,
            );
            b
        }
    };

    let baseline_meps = number_of(&baseline_block, "machine_epochs_per_sec");
    let baseline_rss_per_machine = number_of(&baseline_block, "peak_rss_kb_per_machine");
    let speedup = baseline_meps.map(|b| meps / b).unwrap_or(f64::NAN);
    let rss_ratio = match (baseline_rss_per_machine, rss_kb) {
        (Some(b), Some(kb)) if kb > 0 => b / (kb / machines) as f64,
        _ => f64::NAN,
    };

    let mut current = String::from("\"current\": {\n");
    let _ = write!(
        current,
        "    \"driver\": \"{}\",\n    \"workers\": {},\n    \"machines\": {},\n    \
         \"epochs\": {},\n    \"quick\": {},\n    \"wall_s\": {:.2},\n    \
         \"machine_epochs_per_sec\": {:.0},\n    \"alloc_events\": {},\n    \
         \"alloc_bytes_per_machine\": {},\n    \"resident_bytes_per_machine\": {},\n    \
         \"slab_high_watermark\": {},\n    \"ring_high_watermark\": {},\n    \
         \"peak_rss_kb\": {},\n    \"peak_rss_kb_per_machine\": {},\n    \
         \"speedup_vs_baseline\": {:.2},\n    \"rss_reduction_vs_baseline\": {:.2},\n    \
         \"note\": \"speedup scales with available cores; the parallel driver's \
         machines are fully independent within an epoch\"\n  }}",
        if sequential {
            "sequential"
        } else {
            "epoch_parallel"
        },
        if sequential { 1 } else { workers },
        cfg.machines,
        cfg.epochs,
        quick,
        wall,
        meps,
        delta.allocation_events(),
        alloc_bytes_per_machine,
        resident_per_machine,
        result.slab_high_watermark,
        result.ring_high_watermark,
        rss_kb.unwrap_or(0),
        rss_kb.map(|kb| kb / machines).unwrap_or(0),
        speedup,
        rss_ratio,
    );

    let json = format!("{{\n  {baseline_block},\n  {current}\n}}\n");
    for path in [root_path.clone(), results_dir().join("BENCH_fleet.json")] {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[json] {}", path.display());
        }
    }

    // ---- Regression gate. ----

    if check {
        let Some(base) = baseline_meps else {
            eprintln!("check: no machine_epochs_per_sec in the committed baseline");
            std::process::exit(1);
        };
        let ratio = meps / base;
        println!(
            "check: {meps:.0} machine-epochs/s vs committed baseline {base:.0} \
             ({ratio:.2}x, gate at 0.70x)"
        );
        if ratio < 0.70 {
            eprintln!("check FAILED: fleet throughput regressed below 70% of the baseline");
            std::process::exit(1);
        }
        println!("check passed");
    }
}
