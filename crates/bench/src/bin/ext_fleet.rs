//! Fleet-scale rack sweep: hundreds of machines advanced in
//! conservative time epochs with east-west traffic, diurnal/bursty
//! load, placement churn, and an optional rack-wide VM startup storm.
//!
//! Emits the rack-level per-epoch CSV (aggregate p50/p99, per-epoch
//! throughput) plus a one-row summary with the storm recovery time.
//! Everything is streamed: machines are drained and folded at every
//! epoch boundary, so peak memory is bounded by the worker count, not
//! the fleet size.
//!
//! Deterministic: same seed + same knobs produce a byte-identical CSV
//! for any `TAICHI_WORKERS` count, either fleet driver, and both
//! `TAICHI_QUEUE` backends (see the `fleet_identity` test).
//!
//! Knobs: `--machines N`, `--epochs N`, `--churn F`, `--storm E|off`,
//! `--sequential`, `--quick` (the CI smoke size: 64 machines x 8
//! epochs); the `TAICHI_FLEET_*` environment variables cover the same
//! settings (flags win).
//!
//! The emitted summary CSV carries memory diagnostics on top of the
//! identity-compared summary columns: slab/ring high-water marks,
//! resident bytes per machine, and the process peak RSS. Only the
//! per-epoch `ext_fleet.csv` is byte-compared across drivers/workers
//! in CI — RSS varies run to run by design.

use taichi_bench::{emit, peak_rss_kb, seed};
use taichi_fleet::{run, FleetConfig, FleetDriver};
use taichi_sim::par::default_workers;

fn usage() -> ! {
    eprintln!(
        "usage: ext_fleet [--machines N] [--epochs N] [--churn F] \
         [--storm E|off] [--sequential] [--quick]"
    );
    std::process::exit(2);
}

fn main() {
    taichi_bench::init_policy();
    let mut cfg = FleetConfig {
        machines: 64,
        epochs: 12,
        seed: seed(),
        churn_per_epoch: 2.0,
        storm_epoch: Some(4),
        storm_vms_per_machine: 2,
        ..FleetConfig::default()
    };
    cfg.apply_env();

    let mut driver = FleetDriver::EpochParallel {
        workers: default_workers(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--machines" => match taichi_fleet::parse_machines(&value("--machines")) {
                Ok(v) => cfg.machines = v,
                Err(e) => die(&e),
            },
            "--epochs" => match taichi_fleet::parse_epochs(&value("--epochs")) {
                Ok(v) => cfg.epochs = v,
                Err(e) => die(&e),
            },
            "--churn" => match taichi_fleet::parse_churn(&value("--churn")) {
                Ok(v) => cfg.churn_per_epoch = v,
                Err(e) => die(&e),
            },
            "--storm" => match taichi_fleet::parse_storm(&value("--storm")) {
                Ok(v) => cfg.storm_epoch = v,
                Err(e) => die(&e),
            },
            "--sequential" => driver = FleetDriver::Sequential,
            // CI smoke size: small enough for a PR gate, large enough
            // to exercise churn, the storm, and post-storm compaction.
            "--quick" => {
                cfg.machines = 64;
                cfg.epochs = 8;
                cfg.churn_per_epoch = 2.0;
                cfg.storm_epoch = Some(4);
            }
            _ => usage(),
        }
    }

    println!(
        "fleet: {} machines x {} epochs of {} us ({:?}, churn {}, storm {:?})",
        cfg.machines,
        cfg.epochs,
        cfg.epoch_len.as_nanos() / 1_000,
        driver,
        cfg.churn_per_epoch,
        cfg.storm_epoch,
    );
    let start = std::time::Instant::now();
    let result = run(&cfg, driver);
    let wall = start.elapsed();

    emit("ext_fleet", &result.epoch_table());
    let rss_kb = peak_rss_kb();
    emit("ext_fleet_summary", &result.summary_table_with_mem(rss_kb));

    let machine_epochs = (cfg.machines * cfg.epochs) as f64;
    println!(
        "wall {:.2} s, {:.0} machine-epochs/s; resident {} B/machine \
         (slab hwm {} slots, ring hwm {} pkts{})",
        wall.as_secs_f64(),
        machine_epochs / wall.as_secs_f64().max(1e-9),
        result.resident_bytes / cfg.machines.max(1) as u64,
        result.slab_high_watermark,
        result.ring_high_watermark,
        rss_kb
            .map(|kb| format!(
                ", peak rss {} kB = {} kB/machine",
                kb,
                kb / cfg.machines.max(1) as u64
            ))
            .unwrap_or_default(),
    );

    if let (Some(s), Some(rec)) = (result.storm_epoch, result.recovery_epochs) {
        println!(
            "storm at epoch {s}: rack throughput back to 90% of the \
             pre-storm mean after {rec} epoch(s)"
        );
    } else if result.storm_epoch.is_some() {
        println!("storm fired but rack throughput never recovered in-horizon");
    }

    for v in &result.violations {
        eprintln!("invariant violated: {v}");
    }
    if result.violation_count > 0 {
        eprintln!(
            "{} invariant violation(s) across the fleet",
            result.violation_count
        );
        std::process::exit(1);
    }
    println!(
        "all scheduler invariants held on every machine at every epoch \
         boundary ({} machine-epochs)",
        result.util_permille.count()
    );
}

fn usage_for(flag: &str) -> String {
    eprintln!("error: {flag} needs a value");
    usage()
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
