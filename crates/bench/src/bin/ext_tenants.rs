//! Multi-tenant noisy-neighbor isolation curve (DESIGN.md §3.11).
//!
//! One machine, two active tenants on a deliberately narrow ingest
//! port: a *victim* offering a steady ~70% of port bandwidth on its
//! own DP CPUs, and an *aggressor* swept from idle to 2× line rate on
//! the other DP CPUs. The only shared resource is the eNIC→accelerator
//! ingest port, which the DRR arbiter apportions. Three scenarios per
//! sweep point:
//!
//! - `fair`     — weight 1:1. Once the aggressor's demand pushes the
//!   victim below its offered load, victim p99 degrades monotonically
//!   (staging-ring queueing, then ring drops).
//! - `weighted` — victim-protecting weights (default 3:1). The
//!   victim's guaranteed share covers its demand, so degradation stays
//!   bounded no matter how hard the aggressor bursts.
//! - `storm`    — weight 1:1 plus a λ-NIC-style handler storm (the
//!   fault layer's periodic CP task bursts riding on the same
//!   machine), stacking compute interference on port contention.
//!
//! Emits the victim-p99-vs-aggressor-load curve as a deterministic
//! CSV: same seed + knobs give a byte-identical file for any
//! `TAICHI_WORKERS` count (the CI `tenant-smoke` job diffs 1 vs 4) and
//! both `TAICHI_QUEUE` backends. Exits non-zero if any scheduler or
//! packet-conservation invariant is violated in any cell.
//!
//! Knobs: `--tenants N`, `--weights A:B[:C...]`, `--aggressor I`,
//! `--horizon-ms N`; the `TAICHI_TENANTS_COUNT` / `TAICHI_TENANTS_WEIGHTS`
//! environment variables cover the first two (flags win).

use taichi_bench::{emit, seed, sweep_with};
use taichi_core::audit::check_invariants;
use taichi_core::machine::{Machine, Mode};
use taichi_core::{MachineConfig, TenantConfig};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind, TenantId};
use taichi_sim::par::default_workers;
use taichi_sim::report::Table;
use taichi_sim::{Dist, SimDuration, SimTime};

/// Aggressor load multipliers swept (×50% of port bandwidth).
const AGGRESSOR_MULTS: &[f64] = &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0];
/// Ingest-port pace for this experiment: 512 B ≈ 717 ns, so the port
/// (not the DP services) is the contended resource the arbiter guards.
const PORT_NS_PER_BYTE: f64 = 1.4;
/// Victim packet size (bytes).
const VICTIM_SIZE: f64 = 512.0;
/// Aggressor packet size (bytes) — MTU bursts.
const AGGRESSOR_SIZE: f64 = 1500.0;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Fair,
    Weighted,
    Storm,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Fair => "fair",
            Scenario::Weighted => "weighted",
            Scenario::Storm => "storm",
        }
    }
}

struct Knobs {
    tenants: u32,
    weights: Vec<u64>,
    aggressor: usize,
    horizon: SimDuration,
    seed: u64,
}

struct Cell {
    victim_pkts: u64,
    victim_p50: u64,
    victim_p99: u64,
    victim_lost: u64,
    aggr_pkts: u64,
    aggr_lost: u64,
    ingested: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: ext_tenants [--tenants N] [--weights A:B[:C...]] \
         [--aggressor I] [--horizon-ms N]"
    );
    std::process::exit(2);
}

fn run_cell(k: &Knobs, scenario: Scenario, mult: f64) -> Cell {
    let mut tenants = TenantConfig {
        count: k.tenants,
        weights: vec![1; k.tenants as usize],
        ..TenantConfig::default()
    };
    if scenario == Scenario::Weighted {
        // Victim-protecting weights: knob-supplied, padded with 1s.
        tenants.weights = k.weights.clone();
    }
    let mut cfg = MachineConfig {
        seed: k.seed,
        tenants,
        ..MachineConfig::default()
    };
    cfg.accel.ns_per_byte = PORT_NS_PER_BYTE;
    if scenario == Scenario::Storm {
        // λ-NIC-style handler storm: periodic CP task bursts contend
        // for the same cores the data plane harvests.
        cfg.faults.storm_period = SimDuration::from_millis(2);
        cfg.faults.storm_tasks = 6;
    }
    let mut m = Machine::new(cfg, Mode::TaiChi);

    // Victim on the first half of the DP CPUs, aggressor on the rest:
    // the service planes are disjoint, so the ingest port is the only
    // shared resource (except in the storm scenario, by design).
    let dp = m.services().len() as u32;
    let half = (dp / 2).max(1);
    let victim_cpus: Vec<CpuId> = (0..half).map(CpuId).collect();
    let aggr_cpus: Vec<CpuId> = (half..dp).map(CpuId).collect();

    // Victim: ~70% of port bandwidth (512 B / ~1 µs mean gap vs 717 ns
    // wire time), comfortably within its DP CPUs' service capacity.
    m.add_traffic(
        TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(1.0),
            },
            Dist::constant(VICTIM_SIZE),
            IoKind::Network,
            victim_cpus,
        )
        .with_tenant(TenantId(0)),
    );
    // Aggressor: `mult` × 50% of port bandwidth (1500 B / 4.2 µs base
    // gap vs 2.1 µs wire time). mult=0 keeps the generator (and its
    // RNG stream) but pushes the first arrival past the horizon, so
    // every sweep point consumes identical stream indices.
    let gap_us = if mult > 0.0 { 4.2 / mult } else { 1e9 };
    m.add_traffic(
        TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(gap_us),
            },
            Dist::constant(AGGRESSOR_SIZE),
            IoKind::Network,
            aggr_cpus,
        )
        .with_tenant(TenantId(k.aggressor as u32)),
    );

    m.run_until(SimTime::ZERO + k.horizon);

    let report = check_invariants(&m);
    if !report.ok() {
        eprintln!(
            "scenario {} mult {mult}: invariants violated:\n{report}",
            scenario.name()
        );
        std::process::exit(1);
    }

    let recorders = m.drain_tenant_recorders();
    let totals = m.tenant_totals();
    let victim = &recorders[0];
    let vt = totals[0];
    let at = totals[k.aggressor % totals.len()];
    Cell {
        victim_pkts: victim.packets(),
        victim_p50: victim.total_latency().percentile(50.0),
        victim_p99: victim.total_latency().percentile(99.0),
        victim_lost: vt.2 + vt.4,
        aggr_pkts: at.0,
        aggr_lost: at.2 + at.4,
        ingested: m.accel().packets_ingested(),
    }
}

fn main() {
    taichi_bench::init_policy();
    let mut tcfg = TenantConfig {
        count: 2,
        weights: vec![3, 1],
        ..TenantConfig::default()
    };
    tcfg.apply_env();
    let mut k = Knobs {
        tenants: tcfg.count.max(2),
        weights: tcfg.weights,
        aggressor: 0, // resolved below: default = last tenant
        horizon: SimDuration::from_millis(20),
        seed: seed(),
    };
    let mut aggressor: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--tenants" => match taichi_core::parse_tenant_count(&value("--tenants")) {
                Ok(v) => k.tenants = v.max(2),
                Err(e) => die(&e),
            },
            "--weights" => match taichi_core::parse_tenant_weights(&value("--weights")) {
                Ok(v) => k.weights = v,
                Err(e) => die(&e),
            },
            "--aggressor" => match value("--aggressor").trim().parse::<usize>() {
                Ok(v) => aggressor = Some(v),
                Err(_) => die("error: --aggressor needs a tenant index"),
            },
            "--horizon-ms" => match value("--horizon-ms").trim().parse::<u64>() {
                Ok(v) if v >= 1 => k.horizon = SimDuration::from_millis(v),
                _ => die("error: --horizon-ms needs an integer >= 1"),
            },
            _ => usage(),
        }
    }
    let aggr = aggressor.unwrap_or(k.tenants as usize - 1).max(1) % k.tenants as usize;
    k.aggressor = aggr.max(1); // tenant 0 is always the victim
    println!(
        "tenants: {} (victim 0 vs aggressor {}), weighted scenario {:?}, \
         horizon {} ms",
        k.tenants,
        k.aggressor,
        k.weights,
        k.horizon.as_nanos() / 1_000_000,
    );

    let cases: Vec<(Scenario, f64)> = [Scenario::Fair, Scenario::Weighted, Scenario::Storm]
        .iter()
        .flat_map(|&s| AGGRESSOR_MULTS.iter().map(move |&m| (s, m)))
        .collect();
    let results = sweep_with(default_workers(), cases.clone(), |(s, m)| {
        run_cell(&k, s, m)
    });

    let mut table = Table::new(
        "noisy-neighbor isolation curve (victim p99 vs aggressor load)",
        &[
            "scenario",
            "aggr_load",
            "victim_pkts",
            "victim_p50 (ns)",
            "victim_p99 (ns)",
            "victim_lost",
            "aggr_pkts",
            "aggr_lost",
            "ingested",
        ],
    );
    for ((s, mult), c) in cases.iter().zip(&results) {
        table.row(&[
            s.name().to_string(),
            format!("{mult:.2}"),
            c.victim_pkts.to_string(),
            c.victim_p50.to_string(),
            c.victim_p99.to_string(),
            c.victim_lost.to_string(),
            c.aggr_pkts.to_string(),
            c.aggr_lost.to_string(),
            c.ingested.to_string(),
        ]);
    }
    emit("ext_tenants", &table);

    // The acceptance shape, checked in-process so CI fails loudly:
    // fair-share degradation is monotone (non-decreasing p99 with
    // aggressor load), weighted-fair protection bounds it.
    let p99 = |s: Scenario, i: usize| {
        let idx = cases
            .iter()
            .position(|&(cs, cm)| cs == s && cm == AGGRESSOR_MULTS[i])
            .expect("cell exists");
        results[idx].victim_p99
    };
    let last = AGGRESSOR_MULTS.len() - 1;
    let fair_idle = p99(Scenario::Fair, 0);
    let fair_peak = p99(Scenario::Fair, last);
    let weighted_peak = p99(Scenario::Weighted, last);
    println!(
        "victim p99: idle {fair_idle} ns | fair@max {fair_peak} ns | \
         weighted@max {weighted_peak} ns"
    );
    if fair_peak <= fair_idle {
        eprintln!("error: fair-share victim p99 did not degrade under aggressor load");
        std::process::exit(1);
    }
    if weighted_peak * 2 >= fair_peak {
        eprintln!(
            "error: weighted-fair protection did not bound victim p99 \
             (weighted {weighted_peak} ns vs fair {fair_peak} ns)"
        );
        std::process::exit(1);
    }
    println!("isolation contract held: monotone fair-share degradation, bounded under weights");
}

fn usage_for(flag: &str) -> String {
    eprintln!("error: {flag} needs a value");
    usage()
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
