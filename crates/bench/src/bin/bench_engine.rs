//! Simulation-engine throughput benchmark: events/sec and ns/event
//! for the engine primitives and for full-machine runs, on both queue
//! backends.
//!
//! This binary maintains the repo's committed perf trajectory,
//! `BENCH_engine.json` at the **repository root**:
//!
//! - the `"baseline"` block is the frozen before-numbers (the heap
//!   backend, i.e. the pre-timing-wheel engine) and is **preserved
//!   verbatim** when the file already exists, so the trajectory
//!   survives re-runs;
//! - the `"current"` block is rewritten on every run with fresh wheel
//!   and heap measurements plus the resulting speedups.
//!
//! A copy also lands in `target/experiments/` so CI can upload it as an
//! artifact without touching the working tree.
//!
//! Flags:
//!
//! - `--quick`: fewer coarse iterations (CI smoke mode);
//! - `--check`: exit non-zero when the current TaiChi-mode events/s
//!   falls below 80% of the committed baseline — a generous gate (the
//!   baseline is the *heap* engine, so the wheel normally clears it
//!   severalfold) that still catches real regressions without flaking
//!   on slower CI runners.
//!
//! Event accounting: `events` is the *logical* count (dispatched
//! handlers plus skip-layer-elided stale timers — invariant across
//! backends and skip modes), `fast_forwarded` is the empty-poll
//! iterations the closed-form Fig. 9 ledger elided, and the headline
//! `events_per_sec` is effective throughput — `(events +
//! fast_forwarded) / wall` — i.e. the rate a poll-stepping engine
//! would need to match this one's simulated coverage.
//! `machine_events_per_sec` keeps the raw logical rate.
//!
//! Uses the in-repo timing loops ([`taichi_bench::bench_ns`] /
//! [`taichi_bench::bench_coarse_ms`]) so the workspace builds offline.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;

use taichi_bench::{bench_coarse_ms, bench_ns, results_dir};
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::SynthCp;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_os::{ActionBuf, CpuSet, Kernel, KernelConfig, Program};
use taichi_sim::{Dist, EventQueue, Rng, SimDuration, SimTime};

/// The same representative machine as the `machine_throughput` bench:
/// bursty 8-CPU network traffic plus an 8-task synth_cp batch.
fn build(mode: Mode) -> Machine {
    let mut m = Machine::new(MachineConfig::default(), mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(1);
    m.schedule_cp_batch(synth.workload(8, &mut rng), SimTime::ZERO);
    m
}

#[derive(Clone, Copy)]
struct MachineStats {
    ms: f64,
    /// Logical events: dispatched + skip-layer-elided (invariant
    /// across backends and skip modes).
    events: u64,
    /// Handlers physically dispatched (the wall-clock work).
    dispatched: u64,
    /// Empty-poll iterations elided in closed form by the Fig. 9
    /// fast-forward ledger.
    fast_forwarded: u64,
    /// `events + fast_forwarded` — the work a poll-stepping engine
    /// would have had to execute to cover the same simulated span.
    effective_events: u64,
    ns_per_event: f64,
    /// Effective throughput: `effective_events / wall`.
    events_per_sec: f64,
    /// Raw logical throughput: `events / wall`.
    machine_events_per_sec: f64,
}

/// Wall-clock per 20 ms of simulated time plus engine events/sec, for
/// one mode on the backend currently selected by `TAICHI_QUEUE`.
fn machine_stats(mode: Mode, iters: u32) -> MachineStats {
    let ms = bench_coarse_ms(iters, || {
        let mut m = build(mode);
        m.run_until(SimTime::from_millis(20));
        black_box(m.kernel().finished_count())
    });
    let mut m = build(mode);
    m.run_until(SimTime::from_millis(20));
    let events = m.events_processed();
    let dispatched = m.events_dispatched();
    let fast_forwarded = m.events_fast_forwarded();
    let effective_events = events + fast_forwarded;
    MachineStats {
        ms,
        events,
        dispatched,
        fast_forwarded,
        effective_events,
        ns_per_event: ms * 1e6 / effective_events as f64,
        events_per_sec: effective_events as f64 / (ms / 1e3),
        machine_events_per_sec: events as f64 / (ms / 1e3),
    }
}

fn mode_json(s: MachineStats) -> String {
    format!(
        "{{ \"ms_per_20ms_sim\": {:.2}, \"events\": {}, \"dispatched\": {}, \
         \"fast_forwarded\": {}, \"effective_events\": {}, \
         \"ns_per_event\": {:.1}, \"events_per_sec\": {:.0}, \
         \"machine_events_per_sec\": {:.0} }}",
        s.ms,
        s.events,
        s.dispatched,
        s.fast_forwarded,
        s.effective_events,
        s.ns_per_event,
        s.events_per_sec,
        s.machine_events_per_sec
    )
}

/// Extracts `"key": { ... }` (balanced braces) from `text`, including
/// the key itself — enough JSON awareness to carry the committed
/// baseline block forward without a parser dependency.
fn extract_block<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let start = text.find(key)?;
    let open = start + text[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[start..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls `"events_per_sec": <number>` for `mode` out of a JSON block.
fn events_per_sec_of(block: &str, mode: &str) -> Option<f64> {
    let at = block.find(&format!("\"{mode}\""))?;
    let rest = &block[at..];
    let k = rest.find("\"events_per_sec\":")?;
    let num = rest[k + "\"events_per_sec\":".len()..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .next()?;
    num.parse().ok()
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    taichi_bench::init_policy();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let iters: u32 = if quick { 3 } else { 10 };

    // ---- Primitive micro-benches (default = wheel backend). ----

    // Event-queue fast path: steady-state schedule+pop (the slab and
    // free list reach a fixed point, so this is allocation-free).
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    let push_pop = bench_ns(|| {
        t += 100;
        q.schedule(SimTime::from_nanos(t), t);
        black_box(q.pop())
    });
    println!("event_queue_push_pop            {push_pop:>12.1} ns/iter");

    // Cancellation path: schedule two, cancel one, pop the survivor —
    // exercises the generation stamp + eager/lazy discard machinery.
    let mut q2: EventQueue<u64> = EventQueue::new();
    let mut t2 = 0u64;
    let push_cancel_pop = bench_ns(|| {
        t2 += 100;
        let tok = q2.schedule(SimTime::from_nanos(t2), t2);
        q2.schedule(SimTime::from_nanos(t2 + 1), t2);
        q2.cancel(tok);
        black_box(q2.pop())
    });
    println!("event_queue_push_cancel_pop     {push_cancel_pop:>12.1} ns/iter");

    // Kernel decision hot loop with the out-parameter scratch buffer:
    // two effectively endless compute threads share one CPU, and every
    // iteration takes the next scheduling decision (a time-slice
    // rotation — dispatch + preempt through the ActionBuf, exactly the
    // path `Machine::on_kernel_decide` drives per decision event).
    let cp: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut kernel = Kernel::new(KernelConfig::default(), &cp);
    let mut buf = ActionBuf::new();
    for _ in 0..2 {
        let prog = Program::new().compute(SimDuration::from_secs(10_000_000));
        buf.clear();
        kernel.spawn(prog, CpuSet::single(CpuId(0)), SimTime::ZERO, &mut buf);
    }
    let mut now = SimTime::ZERO;
    let decide_rotate = bench_ns(|| {
        buf.clear();
        if let Some(t) = kernel.next_decision_time(CpuId(0), now) {
            now = t;
        }
        kernel.decide(CpuId(0), now, &mut buf);
        black_box(buf.len())
    });
    println!("kernel_decide_rotate            {decide_rotate:>12.1} ns/iter");

    // ---- Full-machine throughput, wheel vs. heap. ----

    let modes = [Mode::Baseline, Mode::TaiChi, Mode::Type2];
    std::env::set_var("TAICHI_QUEUE", "wheel");
    let wheel: Vec<MachineStats> = modes.iter().map(|&m| machine_stats(m, iters)).collect();
    std::env::set_var("TAICHI_QUEUE", "heap");
    let heap: Vec<MachineStats> = modes.iter().map(|&m| machine_stats(m, iters)).collect();
    std::env::remove_var("TAICHI_QUEUE");

    for ((mode, w), h) in modes.iter().zip(&wheel).zip(&heap) {
        println!(
            "simulate_20ms/{mode:<18} {:>9.2} ms/iter  {} events (+{} fast-forwarded)  \
             {:.0} ns/event  {:.0} events/sec effective  ({:.2}x vs heap {:.0} ev/s)",
            w.ms,
            w.events,
            w.fast_forwarded,
            w.ns_per_event,
            w.events_per_sec,
            w.events_per_sec / h.events_per_sec,
            h.events_per_sec,
        );
    }

    // ---- Assemble the trajectory file. ----

    let root_path = repo_root().join("BENCH_engine.json");
    let existing = std::fs::read_to_string(&root_path).unwrap_or_default();
    let baseline_block = match extract_block(&existing, "\"baseline\"") {
        Some(b) => b.to_string(),
        None => {
            // First run: freeze this machine's heap numbers as the
            // before-trajectory.
            let mut b = String::from(
                "\"baseline\": {\n    \"backend\": \"heap\",\n    \
                 \"note\": \"pre-timing-wheel engine (binary-heap event queue)\",\n    \
                 \"modes\": {\n",
            );
            for (i, (mode, h)) in modes.iter().zip(&heap).enumerate() {
                let _ = writeln!(
                    b,
                    "      \"{mode}\": {}{}",
                    mode_json(*h),
                    if i + 1 == modes.len() { "" } else { "," }
                );
            }
            b.push_str("    }\n  }");
            b
        }
    };

    let mut current =
        String::from("\"current\": {\n    \"backend\": \"wheel\",\n    \"primitives\": {\n");
    let _ = write!(
        current,
        "      \"event_queue_push_pop_ns\": {push_pop:.1},\n      \
         \"event_queue_push_cancel_pop_ns\": {push_cancel_pop:.1},\n      \
         \"kernel_decide_rotate_ns\": {decide_rotate:.1}\n    }},\n    \"modes\": {{\n"
    );
    for (i, (mode, w)) in modes.iter().zip(&wheel).enumerate() {
        let _ = writeln!(
            current,
            "      \"{mode}\": {}{}",
            mode_json(*w),
            if i + 1 == modes.len() { "" } else { "," }
        );
    }
    current.push_str("    },\n    \"heap_modes\": {\n");
    for (i, (mode, h)) in modes.iter().zip(&heap).enumerate() {
        let _ = writeln!(
            current,
            "      \"{mode}\": {}{}",
            mode_json(*h),
            if i + 1 == modes.len() { "" } else { "," }
        );
    }
    // The gate (and both speedup lines) pin the TaiChi mode
    // specifically — a Baseline- or Type2-mode improvement must never
    // mask a TaiChi-mode regression.
    let taichi_idx = 1usize;
    assert!(matches!(modes[taichi_idx], Mode::TaiChi));
    let wheel_vs_heap = wheel[taichi_idx].events_per_sec / heap[taichi_idx].events_per_sec;
    let taichi_key = modes[taichi_idx].to_string();
    let baseline_eps = events_per_sec_of(&baseline_block, &taichi_key);
    let vs_baseline = baseline_eps
        .map(|b| wheel[taichi_idx].events_per_sec / b)
        .unwrap_or(f64::NAN);
    let _ = write!(
        current,
        "    }},\n    \"speedup_TaiChi_wheel_vs_heap\": {wheel_vs_heap:.2},\n    \
         \"speedup_TaiChi_vs_baseline\": {vs_baseline:.2}\n  }}"
    );

    let json = format!("{{\n  {baseline_block},\n  {current}\n}}\n");
    for path in [root_path.clone(), results_dir().join("BENCH_engine.json")] {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[json] {}", path.display());
        }
    }

    // ---- Regression gate. ----

    if check {
        let Some(base) = baseline_eps else {
            eprintln!("check: no TaiChi events_per_sec in the committed baseline");
            std::process::exit(1);
        };
        let cur = wheel[taichi_idx].events_per_sec;
        let ratio = cur / base;
        println!(
            "check: TaiChi {cur:.0} events/s vs committed baseline {base:.0} \
             ({ratio:.2}x, gate at 0.80x)"
        );
        if ratio < 0.80 {
            eprintln!("check FAILED: TaiChi-mode throughput regressed below 80% of the baseline");
            std::process::exit(1);
        }
        println!("check passed");
    }
}
