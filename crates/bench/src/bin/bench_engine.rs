//! Simulation-engine throughput benchmark: events/sec and ns/event
//! for the engine primitives and for full-machine runs.
//!
//! Complements the `scheduler_hot_paths` micro-bench (which prints to
//! stdout only) by persisting a machine-readable report as
//! `target/experiments/BENCH_engine.json`, so CI and before/after
//! comparisons can diff engine throughput across commits. Uses the
//! in-repo timing loops ([`taichi_bench::bench_ns`] /
//! [`taichi_bench::bench_coarse_ms`]) so the workspace builds offline.

use std::fmt::Write as _;
use std::hint::black_box;

use taichi_bench::{bench_coarse_ms, bench_ns, results_dir};
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::SynthCp;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_os::{ActionBuf, CpuSet, Kernel, KernelConfig, Program};
use taichi_sim::{Dist, EventQueue, Rng, SimDuration, SimTime};

/// The same representative machine as the `machine_throughput` bench:
/// bursty 8-CPU network traffic plus an 8-task synth_cp batch.
fn build(mode: Mode) -> Machine {
    let mut m = Machine::new(MachineConfig::default(), mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let synth = SynthCp::default();
    let mut rng = Rng::new(1);
    m.schedule_cp_batch(synth.workload(8, &mut rng), SimTime::ZERO);
    m
}

fn main() {
    let mut json = String::from("{\n  \"primitives\": {\n");

    // Event-queue fast path: steady-state schedule+pop (the slab and
    // free list reach a fixed point, so this is allocation-free).
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    let push_pop = bench_ns(|| {
        t += 100;
        q.schedule(SimTime::from_nanos(t), t);
        black_box(q.pop())
    });
    println!("event_queue_push_pop            {push_pop:>12.1} ns/iter");

    // Cancellation path: schedule two, cancel one, pop the survivor —
    // exercises the generation stamp + lazy discard machinery.
    let mut q2: EventQueue<u64> = EventQueue::new();
    let mut t2 = 0u64;
    let push_cancel_pop = bench_ns(|| {
        t2 += 100;
        let tok = q2.schedule(SimTime::from_nanos(t2), t2);
        q2.schedule(SimTime::from_nanos(t2 + 1), t2);
        q2.cancel(tok);
        black_box(q2.pop())
    });
    println!("event_queue_push_cancel_pop     {push_cancel_pop:>12.1} ns/iter");

    // Kernel decision hot loop with the out-parameter scratch buffer:
    // two effectively endless compute threads share one CPU, and every
    // iteration takes the next scheduling decision (a time-slice
    // rotation — dispatch + preempt through the ActionBuf, exactly the
    // path `Machine::on_kernel_decide` drives per decision event).
    let cp: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut kernel = Kernel::new(KernelConfig::default(), &cp);
    let mut buf = ActionBuf::new();
    for _ in 0..2 {
        let prog = Program::new().compute(SimDuration::from_secs(10_000_000));
        buf.clear();
        kernel.spawn(prog, CpuSet::single(CpuId(0)), SimTime::ZERO, &mut buf);
    }
    let mut now = SimTime::ZERO;
    let decide_rotate = bench_ns(|| {
        buf.clear();
        if let Some(t) = kernel.next_decision_time(CpuId(0), now) {
            now = t;
        }
        kernel.decide(CpuId(0), now, &mut buf);
        black_box(buf.len())
    });
    println!("kernel_decide_rotate            {decide_rotate:>12.1} ns/iter");

    let _ = write!(
        json,
        "    \"event_queue_push_pop_ns\": {push_pop:.1},\n    \
         \"event_queue_push_cancel_pop_ns\": {push_cancel_pop:.1},\n    \
         \"kernel_decide_rotate_ns\": {decide_rotate:.1}\n  }},\n  \"machine\": {{\n"
    );

    // Full-machine throughput per scheduling mode: wall-clock per 20 ms
    // of simulated time, and engine events/sec from the machine's own
    // processed-event counter.
    let modes = [Mode::Baseline, Mode::TaiChi, Mode::Type2];
    for (i, mode) in modes.into_iter().enumerate() {
        let ms = bench_coarse_ms(10, || {
            let mut m = build(mode);
            m.run_until(SimTime::from_millis(20));
            black_box(m.kernel().finished_count())
        });
        let mut m = build(mode);
        m.run_until(SimTime::from_millis(20));
        let events = m.events_processed();
        let ns_per_event = ms * 1e6 / events as f64;
        let events_per_sec = events as f64 / (ms / 1e3);
        println!(
            "simulate_20ms/{mode:<18} {ms:>12.2} ms/iter  {events} events  \
             {ns_per_event:.0} ns/event  {events_per_sec:.0} events/sec"
        );
        let _ = writeln!(
            json,
            "    \"{mode}\": {{ \"ms_per_20ms_sim\": {ms:.2}, \"events\": {events}, \
             \"ns_per_event\": {ns_per_event:.1}, \"events_per_sec\": {events_per_sec:.0} }}{}",
            if i + 1 == modes.len() { "" } else { "," }
        );
    }
    json.push_str("  }\n}\n");

    let path = results_dir().join("BENCH_engine.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[json] {}", path.display());
    }
}
