//! Figure 13: fio IOPS under the four virtualization designs.
//!
//! Paper results: Tai Chi −0.06 %, Tai Chi-vDP ≈ −6 %, type-2 ≈ −25.7 %.

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{grouped, pct, Table};
use taichi_workloads::fio::FioRw;

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let fio = FioRw::default();
    let modes = [Mode::Baseline, Mode::TaiChi, Mode::TaiChiVdp, Mode::Type2];
    let s = seed();
    let results = sweep(modes.to_vec(), |m| (m, fio.run(m, s)));
    let base = results[0].1.iops;

    let mut t = Table::new(
        "Figure 13: fio (fio_rw, 4 KiB) across virtualization designs",
        &["mode", "IOPS", "bw (MiB/s)", "p99 lat (us)", "vs baseline"],
    );
    for (m, r) in &results {
        t.row(&[
            m.to_string(),
            grouped(r.iops),
            format!("{:.0}", r.bw_mib_s),
            format!("{:.1}", r.p99_lat_us),
            pct((r.iops - base) / base),
        ]);
    }
    emit("fig13_hybrid_storage", &t);

    let loss = |i: usize| (results[i].1.iops - base) / base * 100.0;
    println!(
        "paper: taichi -0.06%, vDP ~-6%, type2 ~-25.7% | measured: taichi {:.2}%, vDP {:.1}%, type2 {:.1}%",
        loss(1),
        loss(2),
        loss(3)
    );
}
