//! Figure 15: MySQL (192 sysbench threads) under baseline vs Tai Chi.
//!
//! Paper: 1.56 % average overhead, peaking at 1.63 % on average query
//! throughput.

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{grouped, pct, Table};
use taichi_workloads::mysql;

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let s = seed();
    let runs = sweep(vec![Mode::Baseline, Mode::TaiChi], |m| mysql::run(m, s));
    let [base, taichi] = <[_; 2]>::try_from(runs).ok().unwrap();

    let mut t = Table::new(
        "Figure 15: MySQL throughput (192 sysbench threads)",
        &["metric", "baseline", "taichi", "overhead"],
    );
    let mut overheads = Vec::new();
    for (name, b, x) in [
        ("max_query (qps)", base.max_query, taichi.max_query),
        ("avg_query (qps)", base.avg_query, taichi.avg_query),
        ("max_trans (tps)", base.max_trans, taichi.max_trans),
        ("avg_trans (tps)", base.avg_trans, taichi.avg_trans),
    ] {
        let over = (b - x) / b;
        overheads.push(over);
        t.row(&[name.to_string(), grouped(b), grouped(x), pct(over)]);
    }
    emit("fig15_mysql", &t);

    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    let peak = overheads.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "paper: 1.56% avg overhead (peak 1.63%) | measured: {} avg (peak {})",
        pct(avg),
        pct(peak)
    );
}
