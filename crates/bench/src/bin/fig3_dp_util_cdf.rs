//! Figure 3: CDF of data-plane CPU utilization.
//!
//! The paper samples per-second DP utilization across hundreds of
//! nodes for 12 hours (~1.2 M records) and finds 99.68 % of samples
//! below 32.5 % — i.e. 67.5 % of each reserved DP CPU is idle at the
//! p99. We reproduce the distribution with a diurnally modulated
//! bursty arrival process calibrated to the same CDF shape, sampling
//! per-50 ms windows over a 20 s run (the simulation equivalent of the
//! fleet-wide per-second sweep).

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, SimDuration, SimTime};

fn main() {
    init_trace();
    taichi_bench::init_policy();
    let cfg = MachineConfig {
        seed: seed(),
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::Baseline);
    // Diurnal profile: a slow daily swing at low load plus one rare
    // provisioning spike per cycle — rates chosen so the p99 of
    // per-window utilization lands near the paper's 32.5 % while the
    // mean stays far lower (the over-provisioning story of §3.1).
    let mut profile: Vec<f64> = (0..100)
        .map(|i| 1.0 + 0.6 * (i as f64 / 100.0 * std::f64::consts::TAU).sin())
        .collect();
    profile[84] = 3.7; // nightly re-provisioning burst
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::Modulated {
            base_gap_us: Dist::exponential(1.5 / 0.10 / 8.0),
            profile,
            slot: SimDuration::from_millis(200),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    m.enable_util_sampling(SimDuration::from_millis(50));
    m.run_until(SimTime::from_secs(20));
    emit_trace("fig3_dp_util_cdf", &m);

    let mut samples: Vec<f64> = m.util_samples().to_vec();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("utilization is finite"));
    let n = samples.len();
    let frac_below = |x: f64| samples.iter().filter(|&&s| s < x).count() as f64 / n as f64;

    let mut t = Table::new(
        "Figure 3: CDF of data-plane CPU utilization",
        &["utilization <", "fraction of samples"],
    );
    for x in [0.05, 0.10, 0.15, 0.20, 0.25, 0.325, 0.40, 0.50, 0.75, 1.0] {
        t.row(&[
            format!("{:.1}%", x * 100.0),
            format!("{:.4}", frac_below(x)),
        ]);
    }
    emit("fig3_dp_util_cdf", &t);

    println!(
        "paper: 99.68% of samples < 32.5% | measured: {:.2}% of {} samples < 32.5%",
        frac_below(0.325) * 100.0,
        n
    );
    let mean = samples.iter().sum::<f64>() / n as f64;
    println!(
        "mean DP utilization {:.1}% (idle {:.1}%)",
        mean * 100.0,
        (1.0 - mean) * 100.0
    );
}
