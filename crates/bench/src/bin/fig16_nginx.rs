//! Figure 16: Nginx requests/second (wrk, 10 000 connections), HTTP
//! and HTTPS, under baseline vs Tai Chi.
//!
//! Paper: 0.51 % average overhead, up to 1 % for short connections.

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{grouped, pct, Table};
use taichi_workloads::nginx;

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let s = seed();
    let runs = sweep(vec![Mode::Baseline, Mode::TaiChi], |m| nginx::run(m, s));
    let [base, taichi] = <[_; 2]>::try_from(runs).ok().unwrap();

    let mut t = Table::new(
        "Figure 16: Nginx avg requests/second (10k connections)",
        &["protocol", "baseline", "taichi", "overhead"],
    );
    let http_over = (base.http_rps - taichi.http_rps) / base.http_rps;
    let https_over = (base.https_rps - taichi.https_rps) / base.https_rps;
    t.row(&[
        "HTTP".into(),
        grouped(base.http_rps),
        grouped(taichi.http_rps),
        pct(http_over),
    ]);
    t.row(&[
        "HTTPS".into(),
        grouped(base.https_rps),
        grouped(taichi.https_rps),
        pct(https_over),
    ]);
    emit("fig16_nginx", &t);

    println!(
        "paper: 0.51% avg overhead (<=1% short-connection) | measured: avg {}, http {}",
        pct((http_over + https_over) / 2.0),
        pct(http_over)
    );
}
