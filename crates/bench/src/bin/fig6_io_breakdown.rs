//! Figure 6: breakdown of I/O packet processing in DP services.
//!
//! Stage ② (accelerator preprocessing, 2.7 µs) plus stage ③ (transfer
//! to shared memory, 0.5 µs) form the 3.2 µs window in which the
//! hardware workload probe hides the 2 µs vCPU context switch
//! (Observation 4). This binary pushes packets through the modelled
//! pipeline and reports the measured stage times.

use taichi_bench::{emit, seed};
use taichi_core::TaiChiConfig;
use taichi_hw::{Accelerator, AcceleratorConfig, CpuId, HwWorkloadProbe, IoKind, Packet, PacketId};
use taichi_sim::report::Table;
use taichi_sim::{OnlineStats, Rng, SimTime};

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let mut accel = Accelerator::new(AcceleratorConfig::default());
    let mut probe = HwWorkloadProbe::new(12);
    let mut rng = Rng::new(seed());

    let mut preprocess = OnlineStats::new();
    let mut transfer = OnlineStats::new();
    for i in 0..100_000u64 {
        let at = SimTime::from_nanos(i * 10_000 + rng.next_below(1000));
        let mut p = Packet::new(
            PacketId(i),
            IoKind::Network,
            64 + rng.next_below(1400) as u32,
            CpuId((i % 8) as u32),
            0,
            at,
        );
        let out = accel.ingest(&mut p, at, &mut probe);
        preprocess.push((out.preprocess_done - out.irq_at).as_micros_f64());
        transfer.push((out.delivered_at - out.preprocess_done).as_micros_f64());
    }

    let switch = TaiChiConfig::default().costs.switch_latency();
    let window = preprocess.mean() + transfer.mean();

    let mut t = Table::new(
        "Figure 6: I/O packet processing breakdown",
        &["stage", "mean (us)", "paper (us)"],
    );
    t.row(&[
        "(2) accelerator preprocess".into(),
        format!("{:.2}", preprocess.mean()),
        "2.70".into(),
    ]);
    t.row(&[
        "(3) transfer to shared memory".into(),
        format!("{:.2}", transfer.mean()),
        "0.50".into(),
    ]);
    t.row(&[
        "window (2)+(3)".into(),
        format!("{window:.2}"),
        "3.20".into(),
    ]);
    t.row(&[
        "vCPU switch to hide".into(),
        format!("{:.2}", switch.as_micros_f64()),
        "2.00".into(),
    ]);
    emit("fig6_io_breakdown", &t);

    println!(
        "window {:.2} us > switch {:.2} us: the probe can hide the vCPU switch ({})",
        window,
        switch.as_micros_f64(),
        if window > switch.as_micros_f64() {
            "OK"
        } else {
            "VIOLATED"
        }
    );
}
