//! Figure 14: data-plane overhead of Tai Chi across netperf and
//! sockperf cases, normalized to the baseline.
//!
//! Paper: 0.6 % average overhead, worst 1.92 % (tcp_stream avg_tx_pps).

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{pct, Table};
use taichi_workloads::netperf::{self, NetperfCase};
use taichi_workloads::sockperf;

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let mut t = Table::new(
        "Figure 14: Tai Chi DP performance normalized to baseline",
        &["case", "metric", "baseline", "taichi", "normalized"],
    );
    let mut overheads: Vec<f64> = Vec::new();
    let push = |t: &mut Table, case: &str, metric: &str, base: f64, taichi: f64| {
        let norm = taichi / base;
        t.row(&[
            case.to_string(),
            metric.to_string(),
            format!("{base:.0}"),
            format!("{taichi:.0}"),
            format!("{norm:.4}"),
        ]);
        norm
    };

    let s = seed();
    let cases = [
        (NetperfCase::UdpStream, "udp_stream"),
        (NetperfCase::TcpStream, "tcp_stream"),
        (NetperfCase::TcpRr, "tcp_rr"),
    ];
    // All (case, mode) machine runs are independent: fan the six out
    // across workers; results come back in input order (baseline and
    // taichi adjacent per case) so rows render exactly as serially.
    let jobs: Vec<(NetperfCase, Mode)> = cases
        .iter()
        .flat_map(|&(c, _)| [(c, Mode::Baseline), (c, Mode::TaiChi)])
        .collect();
    let mut net = sweep(jobs, |(c, m)| netperf::run(c, m, s)).into_iter();

    for (case, name) in cases {
        let b = net.next().unwrap();
        let x = net.next().unwrap();
        if case == NetperfCase::UdpStream {
            let n = push(
                &mut t,
                name,
                "avg_rx_bw (Mb/s)",
                b.avg_rx_bw_gbps * 1e3,
                x.avg_rx_bw_gbps * 1e3,
            );
            overheads.push(1.0 - n);
        } else {
            let n1 = push(&mut t, name, "avg_rx_pps", b.avg_rx_pps, x.avg_rx_pps);
            let n2 = push(&mut t, name, "avg_tx_pps", b.avg_tx_pps, x.avg_tx_pps);
            overheads.push(1.0 - n1);
            overheads.push(1.0 - n2);
        }
    }

    let tcp = sweep(vec![Mode::Baseline, Mode::TaiChi], |m| {
        sockperf::run_tcp(m, s)
    });
    let [bt, xt] = <[_; 2]>::try_from(tcp).ok().unwrap();
    let n = push(&mut t, "sockperf_tcp", "CPS", bt.cps, xt.cps);
    overheads.push(1.0 - n);
    let n = push(
        &mut t,
        "sockperf_tcp",
        "avg_rx_pps",
        bt.avg_rx_pps,
        xt.avg_rx_pps,
    );
    overheads.push(1.0 - n);

    let udp = sweep(vec![Mode::Baseline, Mode::TaiChi], |m| {
        sockperf::run_udp(m, s)
    });
    let [bu, xu] = <[_; 2]>::try_from(udp).ok().unwrap();
    // Latency metrics are inverted (lower is better): normalize as
    // baseline/taichi so <1.0 still means overhead.
    for (metric, b, x) in [
        ("udp_avg_lat (us)", bu.avg_lat_us, xu.avg_lat_us),
        ("udp_p99_lat (us)", bu.p99_lat_us, xu.p99_lat_us),
        ("udp_p999_lat (us)", bu.p999_lat_us, xu.p999_lat_us),
    ] {
        let norm = b / x;
        t.row(&[
            "sockperf_udp".into(),
            metric.into(),
            format!("{b:.1}"),
            format!("{x:.1}"),
            format!("{norm:.4}"),
        ]);
        overheads.push(1.0 - norm);
    }

    emit("fig14_dp_overhead", &t);

    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    let worst = overheads.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "paper: avg 0.6% overhead, worst 1.92% | measured: avg {}, worst {}",
        pct(avg),
        pct(worst)
    );
}
