//! Table 2: type-1 vs type-2 vs Tai Chi (hybrid virtualization).
//!
//! Structural properties plus measured DP performance: the type-1
//! column uses the Tai Chi-vDP configuration (DP inside vCPUs — the
//! virtualization tax the paper attributes to type-1), the type-2
//! column the QEMU+KVM model, and the last the full hybrid design.

use taichi_bench::{emit, seed, sweep};
use taichi_core::machine::Mode;
use taichi_sim::report::{pct, Table};
use taichi_workloads::fio::FioRw;

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let fio = FioRw::default();
    let s = seed();
    // Independent (mode, seed) machine runs fan out across workers;
    // results come back in input order, so the table is byte-identical
    // to a serial run (TAICHI_WORKERS=1 forces the reference path).
    let runs = sweep(
        vec![Mode::Baseline, Mode::TaiChiVdp, Mode::Type2, Mode::TaiChi],
        |m| fio.run(m, s),
    );
    let [base, t1, t2, tc] = <[_; 4]>::try_from(runs).ok().unwrap();
    let loss = |x: f64| pct((x - base.iops) / base.iops);

    let mut t = Table::new(
        "Table 2: type-1 vs type-2 vs Tai Chi",
        &[
            "property",
            "Type-1 (Xen-like)",
            "Type-2 (QEMU+KVM)",
            "Tai Chi",
        ],
    );
    t.row(&[
        "DP residency".into(),
        "guest OS (vCPU)".into(),
        "SmartNIC OS".into(),
        "SmartNIC OS".into(),
    ]);
    t.row(&[
        "DP performance (fio IOPS)".into(),
        loss(t1.iops),
        loss(t2.iops),
        loss(tc.iops),
    ]);
    t.row(&[
        "CP residency".into(),
        "guest OS".into(),
        "guest OS".into(),
        "SmartNIC OS (vCPU)".into(),
    ]);
    t.row(&["OS count".into(), "1".into(), "2".into(), "1".into()]);
    t.row(&[
        "DP-CP IPC".into(),
        "native".into(),
        "broken (IPC->RPC, +15 us/msg)".into(),
        "native".into(),
    ]);
    t.row(&[
        "dedicated CPU tax".into(),
        "0".into(),
        "1 (emulation + guest OS)".into(),
        "0".into(),
    ]);
    emit("table2_virt_compare", &t);
}
