//! Fault-matrix sweep: graceful degradation under injected faults.
//!
//! Runs the Tai Chi machine (and the static-partitioning baseline for
//! contrast) across a ladder of uniform fault rates — accelerator
//! stalls, IPI drops/delays, lost wakeups, lost softirqs, eNIC
//! rejections, timer jitter, and periodic CP task storms — and reports
//! how throughput, latency and the scheduler's recovery counters
//! degrade. Every row also sweeps the machine-wide invariant checker:
//! whatever the fault plan does, the scheduler must not lose a vCPU,
//! wedge a softirq, strand a sleeper, exceed its IPI retry budget, or
//! run time backwards.
//!
//! The sweep is deterministic: same seed + same plan produce a
//! byte-identical CSV regardless of the worker count (see the
//! `fault_matrix` integration test).

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::{check_invariants, MachineConfig};
use taichi_cp::{CpTaskKind, TaskFactory};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, FaultPlan, Rng, SimDuration, SimTime};

/// Uniform fault-rate ladder (0 is the fault-free control row).
const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

/// Simulated horizon per cell. Short enough that the full matrix runs
/// in CI, long enough to fire every fault class and several storms.
const HORIZON_MS: u64 = 200;

struct Outcome {
    pps: f64,
    dp_p99_us: f64,
    dp_dropped: u64,
    faults_fired: u64,
    ipi_resends: u64,
    ipi_lost: u64,
    wakeup_rearms: u64,
    softirq_rearms: u64,
    grant_rollbacks: u64,
    yield_clamps: u64,
    invariant_violations: Vec<String>,
}

fn run((mode, rate): (Mode, f64)) -> Outcome {
    let cfg = MachineConfig {
        seed: seed(),
        faults: FaultPlan::uniform(rate),
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, mode);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / 8.0),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(seed() ^ 0xFA);
    let mut t = SimTime::from_millis(1);
    while t < SimTime::from_millis(HORIZON_MS) {
        m.schedule_cp_batch(
            vec![
                factory.build(CpTaskKind::DeviceManagement, &mut rng),
                factory.build(CpTaskKind::Monitoring, &mut rng),
            ],
            t,
        );
        t += SimDuration::from_millis(2);
    }
    m.run_until(SimTime::from_millis(HORIZON_MS));
    emit_trace(&format!("ext_faults_{mode}_{rate}"), &m);
    let r = RunReport::collect(&m);
    let health = m.fault_health();
    Outcome {
        pps: r.dp_pps(),
        dp_p99_us: r.dp.total_latency().percentile(99.0) as f64 / 1e3,
        dp_dropped: r.dp_dropped,
        faults_fired: m.fault().map(|f| f.stats().total()).unwrap_or(0),
        ipi_resends: health.ipi_resends,
        ipi_lost: health.ipi_lost,
        wakeup_rearms: health.wakeup_rearms,
        softirq_rearms: health.softirq_rearms,
        grant_rollbacks: health.softirq_lost_grants,
        yield_clamps: health.yield_clamps,
        invariant_violations: check_invariants(&m).violations,
    }
}

fn main() {
    init_trace();
    taichi_bench::init_policy();
    let mut cases = Vec::new();
    for mode in [Mode::Baseline, Mode::TaiChi] {
        for rate in RATES {
            cases.push((mode, rate));
        }
    }
    let results = taichi_bench::sweep(cases.clone(), run);

    let mut t = Table::new(
        "Fault-matrix degradation sweep (uniform rate per fault class)",
        &[
            "mode",
            "rate",
            "pps",
            "dp p99 (us)",
            "drops",
            "faults",
            "ipi resend/lost",
            "wake rearm",
            "sirq rearm/rb",
            "clamps",
            "invariants",
        ],
    );
    let mut broken = 0usize;
    for ((mode, rate), o) in cases.iter().zip(&results) {
        t.row(&[
            mode.to_string(),
            format!("{rate:.2}"),
            format!("{:.0}", o.pps),
            format!("{:.1}", o.dp_p99_us),
            o.dp_dropped.to_string(),
            o.faults_fired.to_string(),
            format!("{}/{}", o.ipi_resends, o.ipi_lost),
            o.wakeup_rearms.to_string(),
            format!("{}/{}", o.softirq_rearms, o.grant_rollbacks),
            o.yield_clamps.to_string(),
            if o.invariant_violations.is_empty() {
                "ok".to_string()
            } else {
                format!("{} VIOLATED", o.invariant_violations.len())
            },
        ]);
        broken += o.invariant_violations.len();
    }
    emit("ext_faults", &t);

    for ((mode, rate), o) in cases.iter().zip(&results) {
        for v in &o.invariant_violations {
            eprintln!("invariant violated ({mode}, rate {rate}): {v}");
        }
    }
    if broken > 0 {
        eprintln!("{broken} invariant violation(s) across the fault matrix");
        std::process::exit(1);
    }
    println!("all scheduler invariants held across the fault matrix");
}
