//! Figure 5: distribution of non-preemptible routine durations.
//!
//! The paper traced >456 000 routines exceeding 1 ms over 12 hours,
//! 94.5 % lasting 1–5 ms, maximum 67 ms. This binary draws the same
//! population size from the production-calibrated distribution and
//! prints the per-bucket counts the figure plots.

use taichi_bench::{emit, seed};
use taichi_cp::routines::fig5_routine_ms;
use taichi_sim::report::{grouped, Table};
use taichi_sim::{Histogram, Rng};

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    const SAMPLES: u64 = 456_000;
    let dist = fig5_routine_ms();
    let mut rng = Rng::new(seed());
    let mut hist = Histogram::new();
    let mut max_ms = 0.0f64;
    for _ in 0..SAMPLES {
        let ms = dist.sample(&mut rng);
        hist.record((ms * 1_000.0) as u64); // µs resolution
        max_ms = max_ms.max(ms);
    }

    let buckets: &[(f64, f64)] = &[
        (1.0, 5.0),
        (5.0, 10.0),
        (10.0, 20.0),
        (20.0, 40.0),
        (40.0, 67.5),
    ];
    let mut t = Table::new(
        "Figure 5: non-preemptible routines by duration (456k routines > 1 ms)",
        &["duration (ms)", "count", "share"],
    );
    for &(lo, hi) in buckets {
        let n = hist.count_between((lo * 1_000.0) as u64, (hi * 1_000.0) as u64);
        t.row(&[
            format!("{lo:.0}-{hi:.0}"),
            grouped(n as f64),
            format!("{:.2}%", n as f64 / SAMPLES as f64 * 100.0),
        ]);
    }
    t.row(&["max observed".into(), format!("{max_ms:.1} ms"), "-".into()]);
    emit("fig5_nonpreempt_hist", &t);

    let share_1_5 = hist.count_between(1_000, 5_000) as f64 / SAMPLES as f64;
    println!(
        "paper: 94.5% in 1-5 ms, max 67 ms | measured: {:.1}% in 1-5 ms, max {max_ms:.1} ms",
        share_1_5 * 100.0
    );
}
