//! Figure 11: synth_cp average execution time vs concurrency.
//!
//! The paper runs the synth_cp stressor (50 ms tasks touching
//! non-preemptible kernel routines) at concurrency 1–32 with DP
//! utilization held at ~30 % (the production p99 case) and reports the
//! average task execution time; Tai Chi reaches ~4× better than the
//! static baseline at 32 tasks by harvesting the idle 70 % of the DP
//! CPUs.

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::MachineConfig;
use taichi_cp::{CpTaskKind, SynthCp, TaskFactory};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, Rng, SimDuration, SimTime};

fn dp_traffic_30pct() -> TrafficGen {
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / 8.0),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    )
}

fn run(mode: Mode, concurrency: u32) -> f64 {
    let cfg = MachineConfig {
        seed: seed(),
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, mode);
    m.add_traffic(dp_traffic_30pct());
    // The production CP stack (device churn, monitoring, orchestration)
    // keeps running underneath the benchmark, exactly as on the paper's
    // IaaS nodes — synth_cp competes with it for CP CPUs.
    let factory = TaskFactory::default();
    let mut bg_rng = Rng::new(seed() ^ 0xB6);
    let mut t = SimTime::from_millis(1);
    while t < SimTime::from_secs(10) {
        m.schedule_cp_batch(
            vec![
                factory.build(CpTaskKind::DeviceManagement, &mut bg_rng),
                factory.build(CpTaskKind::Monitoring, &mut bg_rng),
            ],
            t,
        );
        t += SimDuration::from_millis(3);
    }
    let synth = SynthCp::default();
    let mut rng = Rng::new(seed() ^ 0x11);
    let batch = m.schedule_cp_batch(synth.workload(concurrency, &mut rng), SimTime::ZERO);
    let mut horizon = SimTime::from_secs(1);
    loop {
        m.run_until(horizon);
        let done = m
            .batch_threads(batch)
            .iter()
            .filter(|&&tid| m.kernel().thread_info(tid).turnaround().is_some())
            .count();
        if done >= concurrency as usize || horizon >= SimTime::from_secs(30) {
            break;
        }
        horizon += SimDuration::from_secs(1);
    }
    let _ = RunReport::collect(&m);
    emit_trace(&format!("fig11_{mode}_c{concurrency}"), &m);
    let k = m.kernel();
    let mut sum = 0.0;
    for &tid in m.batch_threads(batch) {
        sum += k
            .thread_info(tid)
            .turnaround()
            .expect("synth task must finish")
            .as_millis_f64();
    }
    sum / concurrency as f64
}

fn main() {
    init_trace();
    taichi_bench::init_policy();
    let mut t = Table::new(
        "Figure 11: synth_cp avg execution time vs concurrency (DP at ~30%)",
        &["concurrency", "baseline (ms)", "taichi (ms)", "speedup"],
    );
    let mut last_speedup = 0.0;
    // 6 concurrencies x 2 modes = 12 independent machine runs; fan
    // them all out and pair baseline/taichi back up per concurrency.
    let concurrencies = [1u32, 2, 4, 8, 16, 32];
    let jobs: Vec<(Mode, u32)> = concurrencies
        .iter()
        .flat_map(|&n| [(Mode::Baseline, n), (Mode::TaiChi, n)])
        .collect();
    let mut results = taichi_bench::sweep(jobs, |(m, n)| run(m, n)).into_iter();
    for n in concurrencies {
        let base = results.next().unwrap();
        let taichi = results.next().unwrap();
        last_speedup = base / taichi;
        t.row(&[
            n.to_string(),
            format!("{base:.1}"),
            format!("{taichi:.1}"),
            format!("{last_speedup:.2}x"),
        ]);
    }
    emit("fig11_cp_concurrency", &t);
    println!("paper: 4x at 32 concurrent tasks | measured: {last_speedup:.2}x");
}
