//! §8 discussion: inverse adaptation — boosting the data plane in
//! low-CP-intensity deployments.
//!
//! The paper reallocates 50 % of the CP's physical CPUs to the data
//! plane (8+4 → 10+2) through Tai Chi's dynamic partitioning and
//! measures +39 % peak IOPS and +43 % connections/second, while CP
//! performance stays consistent with baseline by harvesting idle DP
//! cycles.

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::TaskFactory;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind, SmartNicSpec};
use taichi_os::ThreadState;
use taichi_sim::report::{grouped, pct, Table};
use taichi_sim::{Dist, Rng, SimDuration, SimTime};
use taichi_workloads::netperf::TCP_CRR_PKTS;
use taichi_workloads::{measure_cfg, BenchTraffic};

fn boosted_cfg() -> MachineConfig {
    MachineConfig {
        spec: SmartNicSpec::with_split(12, 10),
        seed: seed(),
        ..MachineConfig::default()
    }
}

fn default_cfg() -> MachineConfig {
    MachineConfig {
        seed: seed(),
        ..MachineConfig::default()
    }
}

/// Peak throughput (saturating offered load) for a given config.
fn peak(cfg: MachineConfig, mode: Mode, kind: IoKind, size: f64) -> f64 {
    let traffic = BenchTraffic {
        kind,
        size_bytes: size,
        utilization: 1.6, // saturate even the 10-CPU pool
        bursty: false,
        burst_intensity: 0.9,
    };
    measure_cfg(cfg, mode, &traffic, SimDuration::from_millis(250)).pps
}

/// Mean CP turnaround under light CP load and moderate DP load.
fn cp_turnaround(cfg: MachineConfig, mode: Mode) -> f64 {
    let mut m = Machine::new(cfg, mode);
    let dp_cpus = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp_cpus as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp_cpus).map(CpuId).collect(),
    ));
    let factory = TaskFactory::default();
    let mut rng = Rng::new(seed() ^ 0x8);
    let mut t = SimTime::from_millis(1);
    while t < SimTime::from_millis(400) {
        m.schedule_cp_batch(
            vec![factory.device_init(taichi_cp::task::locks::NIC_DRIVER, 2, &mut rng)],
            t,
        );
        t += SimDuration::from_millis(20);
    }
    m.run_until(SimTime::from_secs(3));
    emit_trace(&format!("disc8_cp_{mode}"), &m);
    let k = m.kernel();
    let mut sum = 0.0;
    let mut n = 0u32;
    for tid in k.all_threads() {
        let ti = k.thread_info(tid);
        if ti.state == ThreadState::Finished {
            if let Some(d) = ti.turnaround() {
                sum += d.as_millis_f64();
                n += 1;
            }
        }
    }
    sum / n.max(1) as f64
}

fn main() {
    init_trace();
    taichi_bench::init_policy();
    // The four peak-throughput machine runs are independent: fan them
    // out across workers (baseline 8 DP CPUs vs boosted 10 under
    // Tai Chi, storage IOPS then network CPS).
    let peaks = taichi_bench::sweep(
        vec![
            (default_cfg(), Mode::Baseline, IoKind::Storage, 4096.0),
            (boosted_cfg(), Mode::TaiChi, IoKind::Storage, 4096.0),
            (default_cfg(), Mode::Baseline, IoKind::Network, 256.0),
            (boosted_cfg(), Mode::TaiChi, IoKind::Network, 256.0),
        ],
        |(cfg, mode, kind, size)| peak(cfg, mode, kind, size),
    );
    let [iops_base, iops_boost, pps_base, pps_boost] = <[_; 4]>::try_from(peaks).unwrap();
    let cps_base = pps_base / TCP_CRR_PKTS;
    let cps_boost = pps_boost / TCP_CRR_PKTS;
    // CP consistency under light load.
    let cps = taichi_bench::sweep(
        vec![
            (default_cfg(), Mode::Baseline),
            (boosted_cfg(), Mode::TaiChi),
        ],
        |(cfg, mode)| cp_turnaround(cfg, mode),
    );
    let [cp_base, cp_boost] = <[_; 2]>::try_from(cps).unwrap();

    let mut t = Table::new(
        "Discussion (8): reallocating 50% of CP pCPUs to the data plane",
        &["metric", "baseline 8+4", "taichi 10+2", "delta"],
    );
    t.row(&[
        "peak IOPS".into(),
        grouped(iops_base),
        grouped(iops_boost),
        pct((iops_boost - iops_base) / iops_base),
    ]);
    t.row(&[
        "peak CPS (tcp_crr)".into(),
        grouped(cps_base),
        grouped(cps_boost),
        pct((cps_boost - cps_base) / cps_base),
    ]);
    t.row(&[
        "CP task turnaround (ms)".into(),
        format!("{cp_base:.2}"),
        format!("{cp_boost:.2}"),
        pct((cp_boost - cp_base) / cp_base),
    ]);
    emit("disc8_dp_boost", &t);

    println!(
        "paper: +39% peak IOPS, +43% CPS, CP consistent | measured: {} IOPS, {} CPS, CP {}",
        pct((iops_boost - iops_base) / iops_base),
        pct((cps_boost - cps_base) / cps_base),
        pct((cp_boost - cp_base) / cp_base)
    );
}
