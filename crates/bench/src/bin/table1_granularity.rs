//! Table 1: scheduling granularity, framework overhead, transparency.
//!
//! The paper's Table 1 contrasts prior bare-metal schedulers
//! (ms-scale granularity because OS-internal mechanisms cannot bypass
//! non-preemptible routines) with Tai Chi's µs-scale vCPU preemption.
//! We reproduce the *mechanism measurement* behind that row:
//!
//! - **OS-scheduler co-scheduling** (what Shenango/Caladan/Concord/
//!   Skyloft/Vessel fundamentally inherit when a CP task is inside a
//!   non-preemptible routine): preemption latency sampled by asking
//!   the kernel model to reschedule a CP task at a uniformly random
//!   instant of its execution — the request waits for the enclosing
//!   routine to finish.
//! - **Tai Chi**: the same preemption delivered as a vCPU VM-exit —
//!   the probe IRQ plus the 2 µs switch, regardless of what the guest
//!   is executing.
//!
//! Prior systems' absolute rows are not re-implemented (they are
//! whole systems of their own); the table reports the published
//! qualitative values for context, marked "reported".

use taichi_bench::{emit, seed};
use taichi_core::TaiChiConfig;
use taichi_cp::routines::fig5_routine_ms;
use taichi_sim::report::Table;
use taichi_sim::{Histogram, Rng, SimDuration};

fn main() {
    taichi_bench::init_trace();
    taichi_bench::init_policy();
    let mut rng = Rng::new(seed());
    let routine_ms = fig5_routine_ms();

    // OS-scheduler preemption latency: a preemption request lands at a
    // uniformly random point inside a CP task whose kernel section is
    // one Fig. 5 routine; the scheduler must wait for the rest of it.
    // (Preemptible stretches between routines are short in device
    // management paths, so the routine residual dominates.)
    let mut os_lat = Histogram::new();
    for _ in 0..200_000 {
        let routine = routine_ms.sample(&mut rng); // ms
        let at = rng.next_f64() * routine;
        let residual_ns = ((routine - at) * 1e6) as u64;
        os_lat.record(residual_ns);
    }

    // Tai Chi preemption latency: IRQ fabric + VM-exit + pCPU restore.
    let cfg = TaiChiConfig::default();
    let irq = SimDuration::from_nanos(300);
    let taichi_ns = (irq + cfg.costs.switch_latency()).as_nanos();

    let mut t = Table::new(
        "Table 1: coordinating DP and CP on SmartNICs",
        &[
            "approach",
            "granularity p50",
            "granularity p99",
            "max",
            "overhead",
            "CP transparency",
        ],
    );
    for name in ["Shenango", "Caladan"] {
        t.row(&[
            format!("{name} (reported)"),
            "ms-scale".into(),
            "ms-scale".into(),
            "-".into(),
            "high (dedicated core)".into(),
            "partial".into(),
        ]);
    }
    for name in ["Concord", "Skyloft", "Vessel"] {
        t.row(&[
            format!("{name} (reported)"),
            "ms-scale".into(),
            "ms-scale".into(),
            "-".into(),
            "low".into(),
            "partial".into(),
        ]);
    }
    t.row(&[
        "OS co-schedule (measured)".into(),
        format!("{:.2} ms", os_lat.percentile(50.0) as f64 / 1e6),
        format!("{:.2} ms", os_lat.percentile(99.0) as f64 / 1e6),
        format!("{:.1} ms", os_lat.max() as f64 / 1e6),
        "low".into(),
        "full".into(),
    ]);
    t.row(&[
        "Tai Chi (measured)".into(),
        format!("{:.1} us", taichi_ns as f64 / 1e3),
        format!("{:.1} us", taichi_ns as f64 / 1e3),
        format!("{:.1} us", taichi_ns as f64 / 1e3),
        "low".into(),
        "full".into(),
    ]);
    emit("table1_granularity", &t);

    println!(
        "granularity gap: OS co-scheduling p99 {:.2} ms vs Tai Chi {:.1} us ({}x)",
        os_lat.percentile(99.0) as f64 / 1e6,
        taichi_ns as f64 / 1e3,
        (os_lat.percentile(99.0) / taichi_ns.max(1))
    );
}
