//! Figure 2: VM startup time and CP task execution time vs instance
//! density, under the production static partitioning (baseline only —
//! this is the motivation figure showing the problem Tai Chi solves).
//!
//! Density `d` multiplies both the devices per VM (1 NIC + 4 blk at
//! d = 1) and the concurrent creation churn, so the CP load grows
//! roughly quadratically — the paper measures 8× CP-task degradation
//! and a 3.1× SLO excess for VM startup at 4× density.

use taichi_bench::{emit, emit_trace, init_trace, seed};
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_cp::{TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_os::ThreadState;
use taichi_sim::report::Table;
use taichi_sim::{Dist, SimDuration, SimTime};

fn run_density(density: u32) -> (f64, f64) {
    let cfg = MachineConfig {
        seed: seed(),
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, Mode::Baseline);
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));
    let factory = TaskFactory::default();
    // Creation storm: a fixed re-provisioning wave of VMs whose device
    // count scales with density (§3.1: the number of devices managed
    // by CP tasks is 4x the low-density baseline at 4x density). QEMU's
    // host-side boot is a small constant; device initialisation on the
    // SmartNIC dominates, as in the paper's high-density regime.
    let vms = 4;
    for i in 0..vms {
        let at = SimTime::from_millis(i as u64 * 5);
        let mut req = VmCreateRequest::at_density(i as u64, density, at);
        req.qemu_boot = SimDuration::from_millis(10);
        m.schedule_vm_create(req, &factory);
    }
    let mut horizon = SimTime::from_secs(2);
    while (m.vm_startup_times().len() as u32) < vms && horizon < SimTime::from_secs(60) {
        m.run_until(horizon);
        horizon += SimDuration::from_secs(2);
    }

    emit_trace(&format!("fig2_motivation_d{density}"), &m);

    let startups = m.vm_startup_times();
    assert_eq!(startups.len() as u32, vms, "all VMs must start");
    let mean_startup_ms =
        startups.iter().map(|d| d.as_millis_f64()).sum::<f64>() / startups.len() as f64;

    // CP task execution time: mean device-init turnaround.
    let k = m.kernel();
    let mut sum = 0.0;
    let mut n = 0u32;
    for tid in k.all_threads() {
        let t = k.thread_info(tid);
        if t.state == ThreadState::Finished {
            if let Some(d) = t.turnaround() {
                sum += d.as_millis_f64();
                n += 1;
            }
        }
    }
    (mean_startup_ms, sum / n.max(1) as f64)
}

fn main() {
    init_trace();
    taichi_bench::init_policy();
    // Each density is an independent machine run: fan the four out
    // across workers; results return in density order.
    let rows = taichi_bench::sweep((1..=4u32).collect(), |d| (d, run_density(d)));
    let (base_vm, base_cp) = rows[0].1;
    // The paper normalizes VM startup to its SLO target; production
    // SLOs leave ~25 % headroom at normal density (Fig. 2 shows the
    // 1x point just under its SLO line).
    let slo_ms = base_vm * 1.25;

    let mut t = Table::new(
        "Figure 2: VM startup and CP task execution vs instance density (baseline)",
        &[
            "density",
            "vm_startup (ms)",
            "vs SLO",
            "cp_task_exec (ms)",
            "vs 1x",
        ],
    );
    for (d, (vm, cp)) in &rows {
        t.row(&[
            format!("{d}x"),
            format!("{vm:.1}"),
            format!("{:.2}x", vm / slo_ms),
            format!("{cp:.2}"),
            format!("{:.2}x", cp / base_cp),
        ]);
    }
    emit("fig2_motivation", &t);

    let (vm4, cp4) = rows[3].1;
    println!(
        "paper: 8x CP degradation, 3.1x SLO excess at 4x density | measured: {:.1}x CP, {:.2}x SLO",
        cp4 / base_cp,
        vm4 / slo_ms
    );
}
