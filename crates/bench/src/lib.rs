//! Shared helpers for the experiment binaries.
//!
//! Every `figN`/`tableN` binary prints an aligned table to stdout and
//! writes the same rows as CSV under `target/experiments/`, so the
//! paper's figures can be regenerated from a single
//! `cargo run -p taichi-bench --bin <id>`.

use std::fs;
use std::path::PathBuf;

use taichi_sim::report::Table;

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints `table` and persists its CSV as `<name>.csv`.
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv] {}", path.display());
    }
}

/// Standard seed used by all experiment binaries (override with the
/// `TAICHI_SEED` environment variable).
pub fn seed() -> u64 {
    std::env::var("TAICHI_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1CE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_default() {
        // Test environments do not set TAICHI_SEED.
        if std::env::var("TAICHI_SEED").is_err() {
            assert_eq!(seed(), 0xD1CE);
        }
    }

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into()]);
        emit("selftest", &t);
        let p = results_dir().join("selftest.csv");
        assert!(p.exists());
        let _ = std::fs::remove_file(p);
    }
}
