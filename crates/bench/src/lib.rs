//! Shared helpers for the experiment binaries.
//!
//! Every `figN`/`tableN` binary prints an aligned table to stdout and
//! writes the same rows as CSV under `target/experiments/`, so the
//! paper's figures can be regenerated from a single
//! `cargo run -p taichi-bench --bin <id>`.

use std::fs;
use std::path::PathBuf;

use taichi_sim::report::Table;

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints `table` and persists its CSV as `<name>.csv`.
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv] {}", path.display());
    }
}

/// Standard seed used by all experiment binaries (override with the
/// `TAICHI_SEED` environment variable).
///
/// A `TAICHI_SEED` value that fails to parse falls back to the default
/// with a one-shot warning to stderr — silently ignoring a typoed seed
/// would make a "reproduction" run un-reproducible.
pub fn seed() -> u64 {
    taichi_sim::env::env_parse_or_warn("TAICHI_SEED", |s| {
        s.trim().parse().map_err(|_| {
            format!(
                "warning: TAICHI_SEED={s:?} is not a valid u64 seed; \
                 using default 0xD1CE"
            )
        })
    })
    .unwrap_or(0xD1CE)
}

/// Re-exported deterministic parallel sweep primitives (see
/// [`taichi_sim::par`]): experiment binaries fan independent
/// `(mode, seed)` machine runs across workers with [`sweep`] and get
/// results back in input order, so their tables and CSVs are
/// byte-identical to a serial run. `TAICHI_WORKERS` overrides the
/// worker count (`TAICHI_WORKERS=1` forces the serial reference path).
pub use taichi_sim::par::{default_workers, sweep, sweep_with};

/// True when `--trace` was passed to the experiment binary (or the
/// `TAICHI_TRACE` environment variable is set): binaries then enable
/// the scheduler trace layer and dump a TSV next to their CSV output.
pub fn trace_requested() -> bool {
    std::env::args().any(|a| a == "--trace") || std::env::var("TAICHI_TRACE").is_ok()
}

/// Call first in an experiment `main`: when `--trace` was passed, arms
/// the `TAICHI_TRACE` override so every machine the binary builds
/// (directly or through the workload helpers) records a scheduler
/// trace. Returns whether tracing is armed. A non-empty `TAICHI_TRACE`
/// value names the dump path; the empty value armed here keeps the
/// per-experiment default destinations.
pub fn init_trace() -> bool {
    let on = trace_requested();
    if on && std::env::var_os("TAICHI_TRACE").is_none() {
        std::env::set_var("TAICHI_TRACE", "");
    }
    on
}

/// Call first in an experiment `main`: when `--policy <p>` (or
/// `--policy=<p>`) was passed, validates `p` and arms the
/// `TAICHI_POLICY` override so every machine the binary builds runs
/// that scheduling policy regardless of the mode it was built for
/// (see `taichi_core::sched::PolicyKind`). Returns the selected
/// policy, `None` when the flag is absent.
///
/// An unknown policy name is a hard usage error (exit 2): unlike the
/// environment variable — where a typo degrades a background knob and
/// a one-shot warning suffices — an explicit flag that is silently
/// ignored would render a whole experiment under the wrong scheduler.
pub fn init_policy() -> Option<taichi_core::PolicyKind> {
    let mut args = std::env::args().skip(1);
    let raw = loop {
        let a = args.next()?;
        if a == "--policy" {
            break args.next().unwrap_or_else(|| {
                eprintln!("error: --policy requires a value (taichi, baseline, or type2)");
                std::process::exit(2);
            });
        }
        if let Some(v) = a.strip_prefix("--policy=") {
            break v.to_string();
        }
    };
    match raw.parse::<taichi_core::PolicyKind>() {
        Ok(kind) => {
            std::env::set_var("TAICHI_POLICY", kind.to_string());
            Some(kind)
        }
        Err(e) => {
            eprintln!("error: --policy: {e} (expected taichi, baseline, or type2)");
            std::process::exit(2);
        }
    }
}

/// Dumps a machine's scheduler trace as `<name>.trace.tsv` under the
/// results directory (no-op when the machine was built without
/// tracing). `TAICHI_TRACE=<path>` overrides the destination; when
/// several machines export under the same explicit path in one
/// process, later exports are written to `<path>.<n>` (with a
/// warning) instead of clobbering the earlier rings' schedules.
pub fn emit_trace(name: &str, machine: &taichi_core::machine::Machine) {
    let Some(tsv) = machine.trace_tsv() else {
        return;
    };
    let path = match std::env::var("TAICHI_TRACE") {
        Ok(p) if !p.is_empty() => {
            let (path, clash) = taichi_sim::trace::claim_export_path(&p);
            if let Some(w) = clash {
                eprintln!("warning: {name}: {w}");
            }
            path
        }
        _ => results_dir().join(format!("{name}.trace.tsv")),
    };
    if let Err(e) = fs::write(&path, tsv) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[trace] {}", path.display());
        // A silently truncated trace reads as a complete schedule;
        // surface ring evictions so nobody diffs a partial TSV
        // believing it whole. The warning is this machine's ring
        // accounting, never another export's.
        if let Some(w) = machine.tracer().and_then(|t| t.eviction_warning()) {
            eprintln!("warning: {}: {w}", path.display());
        }
    }
}

/// Peak resident set size of this process in kB, read from
/// `/proc/self/status` (`VmHWM`). Linux-only; answers `None` elsewhere
/// or if the field is missing, so callers must treat it as a
/// best-effort diagnostic, never an identity-compared value.
pub fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Minimal micro-benchmark loop (the workspace builds without network
/// access, so Criterion is not available): runs `f` for a warmup, then
/// measures batches until ~0.2 s elapses and prints ns/iter.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    const WARMUP: u32 = 1_000;
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let mut iters = 0u64;
    let mut batch = 1_000u64;
    let start = std::time::Instant::now();
    loop {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<32} {per:>12.1} ns/iter ({iters} iters)");
            return;
        }
        batch = batch.saturating_mul(2);
    }
}

/// Like [`bench`] but for coarse operations (whole-machine runs):
/// measures a fixed number of iterations and prints ms/iter.
pub fn bench_coarse<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f()); // warmup
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<32} {per:>12.2} ms/iter ({iters} iters)");
}

/// [`bench`]'s measurement loop without the printing: returns ns/iter
/// (used by `bench_engine` to assemble its JSON report).
pub fn bench_ns<T>(mut f: impl FnMut() -> T) -> f64 {
    const WARMUP: u32 = 1_000;
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let mut iters = 0u64;
    let mut batch = 1_000u64;
    let start = std::time::Instant::now();
    loop {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        batch = batch.saturating_mul(2);
    }
}

/// [`bench_coarse`]'s measurement loop without the printing: returns
/// ms/iter over a fixed iteration count.
pub fn bench_coarse_ms<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f()); // warmup
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_default() {
        // Test environments do not set TAICHI_SEED.
        if std::env::var("TAICHI_SEED").is_err() {
            assert_eq!(seed(), 0xD1CE);
        }
    }

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into()]);
        emit("selftest", &t);
        let p = results_dir().join("selftest.csv");
        assert!(p.exists());
        let _ = std::fs::remove_file(p);
    }
}
