//! Backend-equivalence contract: the timing-wheel event queue must be
//! observationally indistinguishable from the binary-heap reference.
//!
//! The `TAICHI_QUEUE` selector swaps the scheduling core under every
//! machine a process builds, and `TAICHI_SKIP` toggles the idle-gap
//! skip layer (cancelling superseded timers instead of dispatching
//! them as stale no-ops); this test runs the same seeded workloads
//! under the full `{wheel, heap} × {skip on, skip off}` matrix and
//! asserts that everything a user can export — the scheduler trace
//! TSV, the run-report statistics (including the logical event count
//! and the fast-forwarded poll ledger), and an `ext_*`-style
//! experiment CSV — is **byte-identical** across all four cells, and
//! that the CSV is additionally invariant to the sweep worker count
//! (1 vs. 4).
//!
//! Kept as a single `#[test]` on purpose: the backend and skip
//! selectors are process-global environment variables, and sibling
//! tests running concurrently in this binary would race on them.

use taichi_bench::sweep_with;
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::MachineConfig;
use taichi_cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, FaultPlan, QueueBackend, Rng, SimTime};

const SEED: u64 = 0x0E77;

fn add_bench_traffic(m: &mut Machine) {
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
}

/// One full-featured machine run (traffic + CP batch + VM create),
/// optionally traced, returning the report fingerprint and the trace
/// TSV. Mirrors the determinism-suite fingerprint so a backend
/// divergence shows up in the same observables the reproduction
/// contract is stated in.
fn run_machine(trace: bool) -> (Vec<u64>, Option<String>) {
    let mut cfg = MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    };
    cfg.trace.enabled = trace;
    let mut m = Machine::new(cfg, Mode::TaiChi);
    add_bench_traffic(&mut m);
    let synth = SynthCp::default();
    let mut rng = Rng::new(SEED ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    let factory = TaskFactory::default();
    m.schedule_vm_create(
        VmCreateRequest::at_density(0, 2, SimTime::from_millis(10)),
        &factory,
    );
    m.run_until(SimTime::from_millis(60));
    let r = RunReport::collect(&m);
    let fp = vec![
        m.events_processed(),
        m.events_fast_forwarded(),
        r.dp.packets(),
        r.dp.total_latency().mean().to_bits(),
        r.dp.total_latency().percentile(99.9),
        r.cp_finished,
        r.cp_turnaround.mean().to_bits(),
        r.cp_spin_time_ns,
        r.yields,
        r.hw_probe_exits,
        r.slice_exits,
        r.lock_reschedules,
        r.vm_startups.first().map(|d| d.as_nanos()).unwrap_or(0),
        m.orchestrator().woken_count(),
        m.posted_interrupts(),
    ];
    (fp, m.trace_tsv())
}

/// A reduced `ext_faults`-style matrix rendered to CSV exactly as the
/// experiment binary would (same Table machinery, same cell
/// formatting), fanned out over `workers` threads.
fn ext_style_csv(workers: usize) -> String {
    let cases = vec![(Mode::Baseline, 0.0f64), (Mode::TaiChi, 0.05)];
    let results = sweep_with(workers, cases.clone(), |(mode, rate)| {
        let cfg = MachineConfig {
            seed: SEED,
            faults: FaultPlan::uniform(rate),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        add_bench_traffic(&mut m);
        let mut rng = Rng::new(SEED ^ 0xFA);
        m.schedule_cp_batch(SynthCp::default().workload(12, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_millis(20));
        let r = RunReport::collect(&m);
        let h = m.fault_health();
        (
            m.events_processed(),
            r.dp_pps(),
            r.dp.total_latency().percentile(99.0),
            h.ipi_resends + h.wakeup_rearms + h.softirq_rearms + h.yield_clamps,
        )
    });
    let mut table = Table::new(
        "queue backend equivalence matrix",
        &["mode", "rate", "events", "pps", "dp p99 (ns)", "recoveries"],
    );
    for ((mode, rate), (events, pps, p99, recoveries)) in cases.iter().zip(&results) {
        table.row(&[
            mode.to_string(),
            format!("{rate:.2}"),
            events.to_string(),
            format!("{pps:.3}"),
            p99.to_string(),
            recoveries.to_string(),
        ]);
    }
    table.to_csv()
}

struct Artifacts {
    stats: Vec<u64>,
    trace: String,
    csv_serial: String,
    csv_parallel: String,
}

fn collect(backend: QueueBackend, skip: &str) -> Artifacts {
    // Point every EventQueue::new() in this process at the backend
    // under test, and every Machine::new() at the skip mode — the
    // exact switches an operator would flip.
    std::env::set_var(
        "TAICHI_QUEUE",
        match backend {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        },
    );
    std::env::set_var("TAICHI_SKIP", skip);
    assert_eq!(QueueBackend::from_env(), backend, "selector must resolve");
    let (stats, _) = run_machine(false);
    let (traced_stats, trace) = run_machine(true);
    assert_eq!(
        stats, traced_stats,
        "{backend:?}/skip={skip}: tracing must not perturb the run"
    );
    let artifacts = Artifacts {
        stats,
        trace: trace.expect("trace was enabled"),
        csv_serial: ext_style_csv(1),
        csv_parallel: ext_style_csv(4),
    };
    std::env::remove_var("TAICHI_QUEUE");
    std::env::remove_var("TAICHI_SKIP");
    artifacts
}

#[test]
fn wheel_and_heap_artifacts_are_byte_identical() {
    // The wheel × skip-on cell is the production configuration; the
    // heap × skip-off cell is the oracle every optimization must
    // reproduce byte for byte. The off-diagonal cells isolate which
    // layer (queue backend vs. skip layer) broke identity.
    let cells = [
        (QueueBackend::Wheel, "on"),
        (QueueBackend::Wheel, "off"),
        (QueueBackend::Heap, "on"),
        (QueueBackend::Heap, "off"),
    ];
    let baseline = collect(cells[0].0, cells[0].1);

    // Trace TSV: the full scheduler timeline, byte for byte.
    assert!(
        baseline.trace.lines().count() > 100,
        "trace suspiciously short — workload drifted?"
    );
    // Experiment CSV: identical across cells AND worker counts.
    assert!(baseline.csv_serial.lines().count() > 2);

    for &(backend, skip) in &cells[1..] {
        let other = collect(backend, skip);
        assert_eq!(
            baseline.trace, other.trace,
            "trace TSV differs: wheel/skip=on vs {backend:?}/skip={skip}"
        );
        // Stats fingerprint (leads with the logical event count —
        // dispatched + skipped — so the batch drain cannot silently
        // skip or duplicate dispatches, and the skip layer cannot
        // elide an event that was not a stale no-op; second entry is
        // the fast-forward ledger, so the closed-form poll accounting
        // is pinned across backends and skip modes too).
        assert_eq!(
            baseline.stats, other.stats,
            "run-report statistics differ: wheel/skip=on vs {backend:?}/skip={skip}"
        );
        assert_eq!(
            other.csv_serial, other.csv_parallel,
            "{backend:?}/skip={skip}: CSV must be worker-count invariant"
        );
        assert_eq!(
            baseline.csv_serial, other.csv_serial,
            "experiment CSV differs: wheel/skip=on vs {backend:?}/skip={skip}"
        );
    }
}
