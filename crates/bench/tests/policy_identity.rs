//! Byte-identity harness for the pluggable scheduler-policy migration.
//!
//! The `trait Scheduler` refactor must be provably behavior-preserving:
//! for every existing [`Mode`], a trait-dispatched run has to produce
//! the same trace TSV, the same stats fingerprint, and the same
//! experiment CSV as the hardwired pre-refactor code — across both
//! queue backends (`TAICHI_QUEUE=wheel|heap`) and 1-vs-4 sweep workers.
//!
//! The harness renders one fingerprint line per (mode, backend) run
//! into `target/experiments/policy_fingerprints.tsv` (uploaded as a CI
//! artifact by the `policy-smoke` job) and, when `TAICHI_GOLDEN_OUT`
//! is set, to that path as well — diffing two such files across a
//! refactor is the byte-identity proof.
//!
//! Kept as a single `#[test]` on purpose: the backend selector is a
//! process-global environment variable (same constraint as
//! `queue_backends.rs`).

use taichi_bench::sweep_with;
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::{MachineConfig, PolicyKind};
use taichi_cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, FaultPlan, QueueBackend, Rng, SimTime};

const SEED: u64 = 0x0E77;

/// FNV-1a over a byte string: cheap, stable content fingerprint for
/// the multi-megabyte trace TSVs (the full text never needs keeping).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn add_bench_traffic(m: &mut Machine) {
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
}

/// One traced full-featured run (traffic + CP batch + VM create) of a
/// pre-built machine; returns the stats fingerprint and the trace-TSV
/// content hash. The fingerprint mirrors `queue_backends.rs` so any
/// divergence shows up in the observables the reproduction contract is
/// stated in.
fn run_built(mut m: Machine) -> (Vec<u64>, u64) {
    add_bench_traffic(&mut m);
    let synth = SynthCp::default();
    let mut rng = Rng::new(SEED ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    let factory = TaskFactory::default();
    m.schedule_vm_create(
        VmCreateRequest::at_density(0, 2, SimTime::from_millis(10)),
        &factory,
    );
    m.run_until(SimTime::from_millis(30));
    let r = RunReport::collect(&m);
    let fp = vec![
        m.events_processed(),
        r.dp.packets(),
        r.dp.total_latency().mean().to_bits(),
        r.dp.total_latency().percentile(99.9),
        r.cp_finished,
        r.cp_turnaround.mean().to_bits(),
        r.cp_spin_time_ns,
        r.yields,
        r.hw_probe_exits,
        r.slice_exits,
        r.lock_reschedules,
        r.vm_startups.first().map(|d| d.as_nanos()).unwrap_or(0),
        m.orchestrator().woken_count(),
        m.posted_interrupts(),
    ];
    let trace = m.trace_tsv().expect("trace was enabled");
    assert!(
        trace.lines().count() > 100,
        "trace suspiciously short — workload drifted?"
    );
    (fp, fnv64(trace.as_bytes()))
}

fn traced_config() -> MachineConfig {
    let mut cfg = MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    };
    cfg.trace.enabled = true;
    cfg
}

/// A hardwired `Mode`-selected run — the pre-refactor construction
/// path, byte-compared against the policy-selected runs.
fn run_mode(mode: Mode) -> (Vec<u64>, u64) {
    run_built(Machine::new(traced_config(), mode))
}

/// A reduced `ext_faults`-style matrix rendered to CSV exactly as the
/// experiment binaries would, fanned out over `workers` threads.
fn ext_style_csv(workers: usize) -> String {
    let cases = vec![
        (Mode::Baseline, 0.0f64),
        (Mode::TaiChi, 0.05),
        (Mode::Type2, 0.05),
    ];
    let results = sweep_with(workers, cases.clone(), |(mode, rate)| {
        let cfg = MachineConfig {
            seed: SEED,
            faults: FaultPlan::uniform(rate),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        add_bench_traffic(&mut m);
        let mut rng = Rng::new(SEED ^ 0xFA);
        m.schedule_cp_batch(SynthCp::default().workload(12, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_millis(20));
        let r = RunReport::collect(&m);
        let h = m.fault_health();
        (
            m.events_processed(),
            r.dp_pps(),
            r.dp.total_latency().percentile(99.0),
            h.ipi_resends + h.wakeup_rearms + h.softirq_rearms + h.yield_clamps,
        )
    });
    let mut table = Table::new(
        "policy identity matrix",
        &["mode", "rate", "events", "pps", "dp p99 (ns)", "recoveries"],
    );
    for ((mode, rate), (events, pps, p99, recoveries)) in cases.iter().zip(&results) {
        table.row(&[
            mode.to_string(),
            format!("{rate:.2}"),
            events.to_string(),
            format!("{pps:.3}"),
            p99.to_string(),
            recoveries.to_string(),
        ]);
    }
    table.to_csv()
}

fn fingerprint_line(backend: &str, label: &str, fp: &[u64], trace_fnv: u64) -> String {
    let cells: Vec<String> = fp.iter().map(|v| v.to_string()).collect();
    format!(
        "{backend}\t{label}\t{}\ttrace_fnv={trace_fnv:016x}",
        cells.join("\t")
    )
}

#[test]
fn policy_dispatch_is_byte_identical_to_hardwired_modes() {
    let mut lines: Vec<String> = Vec::new();

    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let be = match backend {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        };
        std::env::set_var("TAICHI_QUEUE", be);
        assert_eq!(QueueBackend::from_env(), backend, "selector must resolve");

        // Every existing mode, trace + stats fingerprinted.
        for mode in Mode::all() {
            let (fp, trace_fnv) = run_mode(mode);
            lines.push(fingerprint_line(be, &mode.to_string(), &fp, trace_fnv));
        }

        // Experiment CSV: identical across worker counts, recorded per
        // backend so cross-backend identity is visible in the artifact.
        let csv_serial = ext_style_csv(1);
        let csv_parallel = ext_style_csv(4);
        assert!(csv_serial.lines().count() > 2);
        assert_eq!(
            csv_serial, csv_parallel,
            "{be}: experiment CSV must be worker-count invariant"
        );
        lines.push(format!(
            "{be}\text-csv\tcsv_fnv={:016x}",
            fnv64(csv_serial.as_bytes())
        ));

        std::env::remove_var("TAICHI_QUEUE");
    }

    // Cross-backend identity: the per-mode fingerprint lines must agree
    // modulo the backend column.
    let strip = |l: &String| l.split_once('\t').map(|(_, rest)| rest.to_string());
    let wheel: Vec<_> = lines
        .iter()
        .filter(|l| l.starts_with("wheel\t"))
        .filter_map(strip)
        .collect();
    let heap: Vec<_> = lines
        .iter()
        .filter(|l| l.starts_with("heap\t"))
        .filter_map(strip)
        .collect();
    assert_eq!(wheel, heap, "wheel and heap artifacts diverged");

    // ----------------------------------------------------------------
    // Policy selection equality (default backend: wheel). Selecting a
    // policy — through `MachineConfig::policy` or `TAICHI_POLICY` —
    // must reproduce the canonical mode's run byte-for-byte, from any
    // starting mode.
    // ----------------------------------------------------------------
    assert!(
        std::env::var_os("TAICHI_POLICY").is_none(),
        "harness owns TAICHI_POLICY"
    );
    for kind in PolicyKind::all() {
        let reference = run_mode(kind.canonical_mode());

        // Explicit config selection: from the canonical mode (kept
        // as-is) and from every mode whose own policy disagrees (all
        // re-resolve to the selected policy's canonical mode). Modes
        // whose policy already matches keep their richer shape — the
        // vdp check below pins that case.
        let froms = Mode::all()
            .into_iter()
            .filter(|&m| m == kind.canonical_mode() || PolicyKind::for_mode(m) != kind);
        for from in froms {
            let cfg = MachineConfig {
                policy: Some(kind),
                ..traced_config()
            };
            assert_eq!(
                run_built(Machine::new(cfg, from)),
                reference,
                "cfg.policy={kind} from mode {from} must match {}",
                kind.canonical_mode()
            );
        }

        // Environment selection with the config left at `None`.
        std::env::set_var("TAICHI_POLICY", kind.to_string());
        let via_env = run_built(Machine::new(traced_config(), Mode::Baseline));
        std::env::remove_var("TAICHI_POLICY");
        assert_eq!(
            via_env,
            reference,
            "TAICHI_POLICY={kind} must match mode {}",
            kind.canonical_mode()
        );
    }

    // Selecting a policy that already matches the mode's own keeps the
    // richer mode: `--policy taichi` on a vDP run stays taichi-vdp.
    let vdp_ref = run_mode(Mode::TaiChiVdp);
    let cfg = MachineConfig {
        policy: Some(PolicyKind::TaiChi),
        ..traced_config()
    };
    assert_eq!(
        run_built(Machine::new(cfg, Mode::TaiChiVdp)),
        vdp_ref,
        "matching policy selection must not flatten taichi-vdp"
    );
    lines.push("wheel\tpolicy-selection\tok".to_string());

    // Persist the fingerprints for the CI artifact and for manual
    // before/after diffs across refactors.
    let body = lines.join("\n") + "\n";
    let out = taichi_bench::results_dir().join("policy_fingerprints.tsv");
    std::fs::write(&out, &body).expect("write fingerprint artifact");
    if let Ok(extra) = std::env::var("TAICHI_GOLDEN_OUT") {
        std::fs::write(&extra, &body).expect("write golden copy");
    }
}
