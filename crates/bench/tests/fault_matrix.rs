//! The fault-injection layer must not break sweep determinism: an
//! ACTIVE fault plan draws from its own seeded RNG stream, so a
//! multi-worker fan-out of faulted machine runs still produces the
//! byte-identical CSV a serial loop would.

use taichi_bench::sweep_with;
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::{check_invariants, MachineConfig};
use taichi_cp::SynthCp;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::report::Table;
use taichi_sim::{Dist, FaultPlan, SimTime};

/// Renders a faulted sweep's results exactly as `ext_faults` would.
fn matrix_csv(workers: usize) -> String {
    let cases = vec![
        (Mode::Baseline, 0.05f64),
        (Mode::TaiChi, 0.05),
        (Mode::TaiChi, 0.20),
    ];
    // Short horizon: the point is cross-worker determinism under an
    // active plan, not statistics.
    let horizon = SimTime::from_millis(20);
    let results = sweep_with(workers, cases.clone(), move |(mode, rate)| {
        let cfg = MachineConfig {
            seed: 0xFA_17,
            faults: FaultPlan::uniform(rate),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, mode);
        let dp = m.services().len() as u32;
        m.add_traffic(TrafficGen::new(
            ArrivalPattern::OnOff {
                on_us: Dist::constant(200.0),
                off_us: Dist::exponential(400.0),
                burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
            },
            Dist::constant(512.0),
            IoKind::Network,
            (0..dp).map(CpuId).collect(),
        ));
        // Saturate the CP pCPUs so spill-over work lands on vCPUs and
        // the grant/softirq/IPI fault paths are exercised.
        let mut rng = taichi_sim::Rng::new(0xFA_17);
        m.schedule_cp_batch(SynthCp::default().workload(12, &mut rng), SimTime::ZERO);
        m.run_until(horizon);
        let r = RunReport::collect(&m);
        let h = m.fault_health();
        (
            r.dp_pps(),
            m.fault().map(|f| f.stats().total()).unwrap_or(0),
            h.ipi_resends + h.wakeup_rearms + h.softirq_rearms + h.yield_clamps,
            check_invariants(&m).violations.len(),
        )
    });

    let mut table = Table::new(
        "fault matrix determinism check",
        &["mode", "rate", "pps", "faults", "recoveries", "violations"],
    );
    for ((mode, rate), (pps, faults, recoveries, violations)) in cases.iter().zip(&results) {
        table.row(&[
            mode.to_string(),
            format!("{rate:.2}"),
            format!("{pps:.3}"),
            faults.to_string(),
            recoveries.to_string(),
            violations.to_string(),
        ]);
    }
    table.to_csv()
}

#[test]
fn faulted_sweep_is_worker_count_invariant() {
    let serial = matrix_csv(1);
    let parallel = matrix_csv(4);
    assert!(
        serial.lines().count() > 3,
        "csv must contain a header and three data rows"
    );
    assert!(
        serial.lines().skip(1).all(|l| l.ends_with(",0")),
        "no invariant may be violated in any cell:\n{serial}"
    );
    assert_eq!(
        serial, parallel,
        "4-worker faulted sweep CSV must be byte-identical to the serial run"
    );
}

/// The fault-free control row of the matrix must behave exactly like a
/// machine built before the fault layer existed: an inactive plan means
/// no injector, no recovery counters, no RNG draws.
#[test]
fn zero_rate_row_is_fault_free() {
    let cfg = MachineConfig {
        seed: 0xFA_17,
        faults: FaultPlan::uniform(0.0),
        ..MachineConfig::default()
    };
    assert!(!cfg.faults.is_active());
    let mut m = Machine::new(cfg, Mode::TaiChi);
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
    m.run_until(SimTime::from_millis(20));
    assert!(m.fault().is_none());
    assert_eq!(m.fault_health(), taichi_core::FaultHealth::default());
    assert!(check_invariants(&m).ok());
}
