//! Regression test for trace-ring eviction accounting under
//! multi-machine export (one process, many machines, one explicit
//! `TAICHI_TRACE` destination).
//!
//! Before the fix, every `emit_trace` call with a non-empty
//! `TAICHI_TRACE` wrote the *same* path, so a process exporting two
//! machines silently clobbered the first ring's schedule with the
//! second's — and any eviction warning printed along the way described
//! a different ring than the surviving file held. The export path is
//! now claimed per ring (`taichi_sim::trace::claim_export_path`), and
//! the eviction warning comes from `Tracer::eviction_warning`, which
//! is strictly per-ring state.
//!
//! Kept as a single `#[test]`: `TAICHI_TRACE` is process-global, and
//! sibling tests in this binary would race on it.

use taichi_bench::emit_trace;
use taichi_core::machine::{Machine, Mode};
use taichi_core::MachineConfig;
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::{Dist, SimTime};

fn traced_machine(seed: u64, capacity: usize) -> Machine {
    let mut cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    cfg.trace.enabled = true;
    cfg.trace.capacity = capacity;
    let mut m = Machine::new(cfg, Mode::TaiChi);
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(150.0),
            off_us: Dist::exponential(300.0),
            burst_gap_us: Dist::exponential(2.0 / dp as f64),
        },
        Dist::constant(256.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
    m.run_until(SimTime::from_millis(5));
    m
}

#[test]
fn two_machine_export_keeps_both_rings_and_their_accounting() {
    let dir = std::path::PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    let dest = dir.join("trace_export_regression.tsv");
    let dest_str = dest.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(format!("{dest_str}.1"));

    // Two machines in one process: different seeds (different
    // schedules) and wildly different ring capacities (only the tiny
    // ring evicts).
    let m1 = traced_machine(0xAAAA, 65_536);
    let m2 = traced_machine(0xBBBB, 64);
    let tsv1 = m1.trace_tsv().expect("m1 traced");
    let tsv2 = m2.trace_tsv().expect("m2 traced");
    assert_ne!(tsv1, tsv2, "distinct seeds must give distinct schedules");

    // Eviction accounting is per-ring: the big ring never warns, the
    // tiny ring reports its own counts.
    let t1 = m1.tracer().expect("m1 tracer");
    let t2 = m2.tracer().expect("m2 tracer");
    assert_eq!(t1.dropped(), 0, "65536-slot ring must not evict in 5 ms");
    assert!(t2.dropped() > 0, "64-slot ring must evict");
    assert!(t1.eviction_warning().is_none());
    let w = t2.eviction_warning().expect("tiny ring warns");
    assert!(
        w.contains(&format!("{} event(s)", t2.dropped())),
        "warning must carry this ring's own drop count: {w}"
    );

    // Export both under one explicit TAICHI_TRACE destination.
    taichi_sim::trace::reset_export_paths();
    std::env::set_var("TAICHI_TRACE", &dest_str);
    emit_trace("m1", &m1);
    emit_trace("m2", &m2);
    std::env::remove_var("TAICHI_TRACE");

    // The first export owns the named path; the second lands at the
    // disambiguated sibling instead of clobbering it.
    let on_disk_1 = std::fs::read_to_string(&dest).expect("first export exists");
    let on_disk_2 =
        std::fs::read_to_string(format!("{dest_str}.1")).expect("second export disambiguated");
    assert_eq!(on_disk_1, tsv1, "first ring's schedule must survive");
    assert_eq!(on_disk_2, tsv2, "second ring exported in full");
    // The evicting ring's TSV footer carries its own drop count.
    assert!(on_disk_2.contains(&format!("# dropped\t{}", t2.dropped())));
    assert!(on_disk_1.contains("# dropped\t0"));

    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(format!("{dest_str}.1"));
}
