//! Regression fence for the `skipped_deadlines` × fault timer-jitter
//! interaction.
//!
//! The skip layer cancels superseded kernel timers and remembers their
//! deadlines in `skipped_deadlines`, settling them later so the
//! logical event count (`dispatched + skipped`) stays backend- and
//! skip-mode-invariant. Timer jitter (`TAICHI_FAULTS` `jitter_ns`)
//! perturbs the deadline *before* the timer is programmed, which is
//! exactly the path the skip layer intercepts — so the hazard is a
//! divergence where the jitter RNG draw happens under one skip mode
//! but not the other (a cancelled timer that still consumed a draw, or
//! a skipped deadline recorded pre-jitter while the dispatched twin
//! fires post-jitter). Either desync would show up here as a trace or
//! fingerprint mismatch between `TAICHI_SKIP=on` and `off`.
//!
//! Jitter is drawn once per kernel-timer *programming* (rearm), and
//! the skip layer cancels timers strictly after they were programmed,
//! so rearm counts — and therefore RNG consumption — must match across
//! skip modes. This test pins that equivalence under both queue
//! backends with every fault class active.
//!
//! Kept as a single `#[test]`: `TAICHI_QUEUE`, `TAICHI_SKIP`, and
//! `TAICHI_FAULTS` are process-global environment variables, and
//! sibling tests in this binary would race on them.

use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::MachineConfig;
use taichi_cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind};
use taichi_sim::{Dist, QueueBackend, Rng, SimTime};

const SEED: u64 = 0x5C1F;

fn run_cell() -> (u64, Vec<u64>, String) {
    let mut cfg = MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    };
    cfg.trace.enabled = true;
    let mut m = Machine::new(cfg, Mode::TaiChi);
    assert!(
        m.fault_health().ipi_resends == 0,
        "fresh machine starts clean"
    );
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
    let mut rng = Rng::new(SEED ^ 0x17);
    m.schedule_cp_batch(SynthCp::default().workload(12, &mut rng), SimTime::ZERO);
    let factory = TaskFactory::default();
    m.schedule_vm_create(
        VmCreateRequest::at_density(0, 2, SimTime::from_millis(8)),
        &factory,
    );
    m.run_until(SimTime::from_millis(50));

    let r = RunReport::collect(&m);
    let h = m.fault_health();
    let faults = m.fault().expect("fault layer active under TAICHI_FAULTS");
    // Within one run the skip ledger must balance: the logical event
    // count is dispatched + skipped, whatever the skip mode. (The two
    // legs individually are *supposed* to differ across skip modes —
    // skip=off dispatches the stale timers skip=on cancels — so only
    // the sum goes into the cross-mode fingerprint.)
    assert_eq!(
        m.events_processed(),
        m.events_dispatched() + m.events_skipped(),
        "skip ledger out of balance"
    );
    let fp = vec![
        m.events_processed(),
        m.events_fast_forwarded(),
        // The jitter interaction: every class's fire count, and the
        // jitter count specifically — if skip mode changed how often
        // the jitter RNG is consumed, these diverge first.
        faults.stats().timer_jitters,
        faults.stats().total(),
        h.ipi_resends,
        h.wakeup_rearms,
        h.softirq_rearms,
        h.yield_clamps,
        // Downstream observables: if the RNG streams desynced, the
        // packet timeline diverges too.
        r.dp.packets(),
        r.dp.total_latency().mean().to_bits(),
        r.dp.total_latency().percentile(99.9),
        r.cp_finished,
        r.cp_turnaround.mean().to_bits(),
        m.posted_interrupts(),
    ];
    (
        m.events_skipped(),
        fp,
        m.trace_tsv().expect("trace enabled"),
    )
}

#[test]
fn skip_layer_is_identity_under_timer_jitter_faults() {
    // Every fault class active, with a deliberately large timer jitter
    // so virtually every kernel rearm takes a perturbed deadline.
    std::env::set_var(
        "TAICHI_FAULTS",
        "all=0.05, jitter_ns=1500, storm_us=4000, storm_tasks=4",
    );

    let cells = [
        (QueueBackend::Wheel, "on"),
        (QueueBackend::Wheel, "off"),
        (QueueBackend::Heap, "on"),
        (QueueBackend::Heap, "off"),
    ];
    let mut baseline: Option<(Vec<u64>, String)> = None;
    for (backend, skip) in cells {
        std::env::set_var(
            "TAICHI_QUEUE",
            match backend {
                QueueBackend::Wheel => "wheel",
                QueueBackend::Heap => "heap",
            },
        );
        std::env::set_var("TAICHI_SKIP", skip);
        let (skipped, fp, trace) = run_cell();
        assert!(fp[2] > 0, "timer jitter must actually fire in this run");
        if skip == "on" {
            // Make sure the skip layer is actually exercised: without
            // cancelled timers this whole matrix tests nothing.
            assert!(skipped > 0, "skip layer must cancel some timers");
        } else {
            assert_eq!(skipped, 0, "skip=off must dispatch everything");
        }
        match &baseline {
            None => {
                baseline = Some((fp, trace));
            }
            Some((bfp, btrace)) => {
                assert_eq!(
                    *bfp, fp,
                    "skip/fault fingerprint diverged at {backend:?}/skip={skip}"
                );
                assert_eq!(
                    *btrace, trace,
                    "trace TSV diverged at {backend:?}/skip={skip}"
                );
            }
        }
    }

    std::env::remove_var("TAICHI_FAULTS");
    std::env::remove_var("TAICHI_QUEUE");
    std::env::remove_var("TAICHI_SKIP");
}
