//! Tenant-identity contract (DESIGN.md §3.11): a machine configured
//! with `tenants.count == 1` must be **byte-identical** to the default
//! (pre-tenant) engine — no arbiter, no per-tenant recorders, zero
//! extra RNG draws — no matter what the other tenant knobs say, across
//! the full `{wheel, heap} × {skip on, skip off}` matrix, for every
//! exportable artifact: the scheduler trace TSV, the run-report stats
//! fingerprint, and an `ext_*`-style experiment CSV (which must also
//! be invariant to the sweep worker count, 1 vs. 4).
//!
//! Kept as a single `#[test]` for the same reason as `queue_backends`:
//! the backend/skip selectors are process-global environment variables
//! and sibling tests would race on them.
//!
//! A second test pins the DRR fairness property at machine level:
//! equal weights + equal demand ⇒ equal service, within one quantum.

use taichi_bench::sweep_with;
use taichi_core::machine::{Machine, Mode};
use taichi_core::metrics::RunReport;
use taichi_core::{MachineConfig, TenantConfig};
use taichi_cp::{SynthCp, TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, TrafficGen};
use taichi_hw::{CpuId, IoKind, TenantId};
use taichi_sim::report::Table;
use taichi_sim::{Dist, QueueBackend, Rng, SimTime};

const SEED: u64 = 0x7E4A;

/// Single-tenant config under test: `count == 1`, but every other
/// tenant knob deliberately off-default — none of them may matter.
fn single_tenant_cfg() -> TenantConfig {
    TenantConfig {
        count: 1,
        weights: vec![7, 3, 1],
        quantum: 9_000,
        ring_capacity: 8,
    }
}

fn add_bench_traffic(m: &mut Machine) {
    let dp = m.services().len() as u32;
    m.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(1.5 / 0.9 / dp as f64),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..dp).map(CpuId).collect(),
    ));
}

/// One full-featured run (traffic + CP batch + VM create), with or
/// without the explicit single-tenant config, returning the stats
/// fingerprint and trace TSV — the same observables the queue-backend
/// identity contract is stated in.
fn run_machine(tenant_cfg: bool, trace: bool) -> (Vec<u64>, Option<String>) {
    let mut cfg = MachineConfig {
        seed: SEED,
        ..MachineConfig::default()
    };
    if tenant_cfg {
        cfg.tenants = single_tenant_cfg();
    }
    cfg.trace.enabled = trace;
    let mut m = Machine::new(cfg, Mode::TaiChi);
    assert_eq!(m.tenant_count(), 1);
    add_bench_traffic(&mut m);
    let synth = SynthCp::default();
    let mut rng = Rng::new(SEED ^ 0x51);
    m.schedule_cp_batch(synth.workload(10, &mut rng), SimTime::ZERO);
    let factory = TaskFactory::default();
    m.schedule_vm_create(
        VmCreateRequest::at_density(0, 2, SimTime::from_millis(10)),
        &factory,
    );
    m.run_until(SimTime::from_millis(60));
    // Single-tenant machines expose no tenant artifacts at all.
    assert!(m.tenant_totals().is_empty());
    assert!(m.drain_tenant_recorders().is_empty());
    let r = RunReport::collect(&m);
    let fp = vec![
        m.events_processed(),
        m.events_fast_forwarded(),
        r.dp.packets(),
        r.dp.total_latency().mean().to_bits(),
        r.dp.total_latency().percentile(99.9),
        r.cp_finished,
        r.cp_turnaround.mean().to_bits(),
        r.cp_spin_time_ns,
        r.yields,
        r.hw_probe_exits,
        r.slice_exits,
        r.lock_reschedules,
        r.vm_startups.first().map(|d| d.as_nanos()).unwrap_or(0),
        m.orchestrator().woken_count(),
        m.posted_interrupts(),
    ];
    (fp, m.trace_tsv())
}

/// An `ext_*`-style sweep rendered to CSV, fanned over `workers`
/// threads, with the explicit single-tenant config applied or not.
fn ext_style_csv(tenant_cfg: bool, workers: usize) -> String {
    let cases = vec![(Mode::Baseline, 0u64), (Mode::TaiChi, 1)];
    let results = sweep_with(workers, cases.clone(), |(mode, salt)| {
        let mut cfg = MachineConfig {
            seed: SEED ^ salt,
            ..MachineConfig::default()
        };
        if tenant_cfg {
            cfg.tenants = single_tenant_cfg();
        }
        let mut m = Machine::new(cfg, mode);
        add_bench_traffic(&mut m);
        let mut rng = Rng::new(SEED ^ 0xFA);
        m.schedule_cp_batch(SynthCp::default().workload(12, &mut rng), SimTime::ZERO);
        m.run_until(SimTime::from_millis(20));
        let r = RunReport::collect(&m);
        (
            m.events_processed(),
            r.dp_pps(),
            r.dp.total_latency().percentile(99.0),
        )
    });
    let mut table = Table::new(
        "tenant identity matrix",
        &["mode", "events", "pps", "dp p99 (ns)"],
    );
    for ((mode, _), (events, pps, p99)) in cases.iter().zip(&results) {
        table.row(&[
            mode.to_string(),
            events.to_string(),
            format!("{pps:.3}"),
            p99.to_string(),
        ]);
    }
    table.to_csv()
}

struct Artifacts {
    stats: Vec<u64>,
    trace: String,
    csv_serial: String,
    csv_parallel: String,
}

fn collect(backend: QueueBackend, skip: &str, tenant_cfg: bool) -> Artifacts {
    std::env::set_var(
        "TAICHI_QUEUE",
        match backend {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        },
    );
    std::env::set_var("TAICHI_SKIP", skip);
    let (stats, _) = run_machine(tenant_cfg, false);
    let (traced_stats, trace) = run_machine(tenant_cfg, true);
    assert_eq!(
        stats, traced_stats,
        "tenant_cfg={tenant_cfg} {backend:?}/skip={skip}: tracing must not perturb the run"
    );
    let artifacts = Artifacts {
        stats,
        trace: trace.expect("trace was enabled"),
        csv_serial: ext_style_csv(tenant_cfg, 1),
        csv_parallel: ext_style_csv(tenant_cfg, 4),
    };
    std::env::remove_var("TAICHI_QUEUE");
    std::env::remove_var("TAICHI_SKIP");
    artifacts
}

#[test]
fn single_tenant_config_is_byte_identical_to_default() {
    let cells = [
        (QueueBackend::Wheel, "on"),
        (QueueBackend::Wheel, "off"),
        (QueueBackend::Heap, "on"),
        (QueueBackend::Heap, "off"),
    ];
    // Canonical: default config (no tenant knobs touched) on the
    // production wheel/skip=on cell.
    let canonical = collect(cells[0].0, cells[0].1, false);
    assert!(
        canonical.trace.lines().count() > 100,
        "trace suspiciously short — workload drifted?"
    );
    assert!(canonical.csv_serial.lines().count() > 2);

    for &(backend, skip) in &cells {
        let tenants = collect(backend, skip, true);
        assert_eq!(
            canonical.trace, tenants.trace,
            "trace TSV differs: default vs tenants=1 on {backend:?}/skip={skip}"
        );
        assert_eq!(
            canonical.stats, tenants.stats,
            "stats fingerprint differs: default vs tenants=1 on {backend:?}/skip={skip}"
        );
        assert_eq!(
            tenants.csv_serial, tenants.csv_parallel,
            "tenants=1 {backend:?}/skip={skip}: CSV must be worker-count invariant"
        );
        assert_eq!(
            canonical.csv_serial, tenants.csv_serial,
            "experiment CSV differs: default vs tenants=1 on {backend:?}/skip={skip}"
        );
    }
}

/// Machine-level DRR fairness: two tenants with equal weights and
/// equal (saturating) demand on disjoint DP CPUs split the shared
/// ingest port evenly — issued byte totals match within one quantum's
/// worth of bytes.
#[test]
fn equal_weight_tenants_split_the_port_within_one_quantum() {
    let quantum = 1_500u64;
    let mut cfg = MachineConfig {
        seed: SEED,
        tenants: TenantConfig {
            count: 2,
            weights: vec![1, 1],
            quantum,
            ring_capacity: 1_024,
        },
        ..MachineConfig::default()
    };
    // Narrow the port so it saturates: 512 B ≈ 717 ns of port time per
    // packet while each tenant offers one packet per ~350 ns.
    cfg.accel.ns_per_byte = 1.4;
    let mut m = Machine::new(cfg, Mode::TaiChi);
    let dp = m.services().len() as u32;
    let half = (dp / 2).max(1);
    for (t, cpus) in [
        (0u32, (0..half).map(CpuId).collect::<Vec<_>>()),
        (1u32, (half..dp).map(CpuId).collect::<Vec<_>>()),
    ] {
        m.add_traffic(
            TrafficGen::new(
                ArrivalPattern::OpenLoop {
                    gap_us: Dist::constant(0.35),
                },
                Dist::constant(512.0),
                IoKind::Network,
                cpus,
            )
            .with_tenant(TenantId(t)),
        );
    }
    m.run_until(SimTime::from_millis(10));
    taichi_core::audit::assert_invariants(&m, "equal_weight_split");
    let stats = m.accel().tenant_ingress_stats();
    assert_eq!(stats.len(), 2);
    let (b0, b1) = (stats[0].1, stats[1].1);
    assert!(b0 > 0 && b1 > 0, "both tenants must be served");
    assert!(
        b0.abs_diff(b1) <= quantum,
        "equal-weight equal-demand tenants diverged by more than one \
         quantum: {b0} vs {b1} bytes"
    );
}
