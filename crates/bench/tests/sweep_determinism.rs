//! The parallel sweep runner must be invisible in the output: a
//! multi-worker fan-out of independent `(mode, seed)` machine runs has
//! to produce the byte-identical CSV a serial loop would.

use taichi_bench::sweep_with;
use taichi_core::machine::Mode;
use taichi_sim::report::Table;
use taichi_sim::SimDuration;
use taichi_workloads::{measure, BenchTraffic};

fn traffic() -> BenchTraffic {
    BenchTraffic {
        kind: taichi_hw::IoKind::Network,
        size_bytes: 512.0,
        utilization: 0.3,
        bursty: false,
        burst_intensity: 0.9,
    }
}

/// Renders a sweep's results exactly as an experiment binary would.
fn sweep_csv(workers: usize) -> String {
    let cases = vec![
        (Mode::Baseline, 7u64),
        (Mode::Baseline, 8),
        (Mode::TaiChi, 7),
        (Mode::TaiChi, 8),
    ];
    let t = traffic();
    // Short horizon: the point is cross-worker determinism, not
    // statistics.
    let horizon = SimDuration::from_millis(5);
    let results = sweep_with(workers, cases.clone(), |(mode, seed)| {
        measure(mode, &t, horizon, seed)
    });

    let mut table = Table::new(
        "sweep determinism check",
        &["mode", "seed", "pps", "p99 (ns)", "mean (ns)", "yields"],
    );
    for ((mode, seed), r) in cases.iter().zip(&results) {
        table.row(&[
            mode.to_string(),
            seed.to_string(),
            format!("{:.3}", r.pps),
            r.lat_p99_ns.to_string(),
            format!("{:.3}", r.lat_mean_ns),
            r.yields.to_string(),
        ]);
    }
    table.to_csv()
}

#[test]
fn four_workers_match_serial_byte_for_byte() {
    let serial = sweep_csv(1);
    let parallel = sweep_csv(4);
    assert!(
        serial.lines().count() > 4,
        "csv must contain a header and four data rows"
    );
    assert_eq!(
        serial, parallel,
        "4-worker sweep CSV must be byte-identical to the serial run"
    );
}
