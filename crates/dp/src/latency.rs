//! Latency and throughput recording for data-plane work.

use taichi_hw::Packet;
use taichi_sim::{Histogram, SimDuration, SimTime};

/// Records per-stage latencies and throughput for one service or one
/// benchmark run.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    total: Histogram,
    hardware: Histogram,
    software: Histogram,
    packets: u64,
    bytes: u64,
    first_completion: Option<SimTime>,
    last_completion: Option<SimTime>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records a completed packet (all stage timestamps stamped).
    pub fn record(&mut self, packet: &Packet) {
        let Some(total) = packet.total_latency() else {
            return;
        };
        self.total.record(total.as_nanos());
        if let Some(hw) = packet.hardware_latency() {
            self.hardware.record(hw.as_nanos());
        }
        if let Some(sw) = packet.software_latency() {
            self.software.record(sw.as_nanos());
        }
        self.packets += 1;
        self.bytes += packet.size_bytes as u64;
        let done = packet
            .completed_at
            .expect("total_latency implies completed");
        if self.first_completion.is_none() {
            self.first_completion = Some(done);
        }
        self.last_completion = Some(done);
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.total.merge(&other.total);
        self.hardware.merge(&other.hardware);
        self.software.merge(&other.software);
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.first_completion = match (self.first_completion, other.first_completion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_completion = match (self.last_completion, other.last_completion) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Clears every record while keeping the histograms' bucket
    /// capacity. Observably identical to a fresh recorder — the basis
    /// of the allocation-free epoch drain ([`LatencyRecorder::drain_into`]).
    pub fn reset(&mut self) {
        self.total.reset();
        self.hardware.reset();
        self.software.reset();
        self.packets = 0;
        self.bytes = 0;
        self.first_completion = None;
        self.last_completion = None;
    }

    /// Merges this recorder's records into `dest` and clears this one
    /// in place. Equivalent to `dest.merge(&take(self))` but without
    /// surrendering the histograms' bucket capacity, so an epoch drain
    /// performed every epoch on every machine allocates nothing once
    /// the buckets reach their working set.
    pub fn drain_into(&mut self, dest: &mut LatencyRecorder) {
        dest.merge(self);
        self.reset();
    }

    /// End-to-end latency histogram.
    pub fn total_latency(&self) -> &Histogram {
        &self.total
    }

    /// Hardware-stage latency histogram.
    pub fn hardware_latency(&self) -> &Histogram {
        &self.hardware
    }

    /// Software-stage (queue wait + processing) latency histogram.
    pub fn software_latency(&self) -> &Histogram {
        &self.software
    }

    /// Completed packet count.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Completed payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean packets per second over a measurement window.
    pub fn pps(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.packets as f64 / window.as_secs_f64()
    }

    /// Mean payload bandwidth in Gb/s over a measurement window.
    pub fn gbps(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / window.as_secs_f64() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_hw::{CpuId, IoKind, PacketId};

    fn done_packet(id: u64, submit_us: u64, complete_us: u64) -> Packet {
        let mut p = Packet::new(
            PacketId(id),
            IoKind::Network,
            1000,
            CpuId(0),
            0,
            SimTime::from_micros(submit_us),
        );
        p.preprocessed_at = Some(SimTime::from_micros(submit_us + 2));
        p.delivered_at = Some(SimTime::from_micros(submit_us + 3));
        p.completed_at = Some(SimTime::from_micros(complete_us));
        p
    }

    #[test]
    fn records_all_stages() {
        let mut r = LatencyRecorder::new();
        r.record(&done_packet(1, 10, 20));
        assert_eq!(r.packets(), 1);
        assert_eq!(r.bytes(), 1000);
        assert_eq!(r.total_latency().mean(), 10_000.0);
        assert_eq!(r.hardware_latency().mean(), 3_000.0);
        assert_eq!(r.software_latency().mean(), 7_000.0);
    }

    #[test]
    fn incomplete_packet_ignored() {
        let mut r = LatencyRecorder::new();
        let p = Packet::new(PacketId(1), IoKind::Storage, 64, CpuId(0), 0, SimTime::ZERO);
        r.record(&p);
        assert_eq!(r.packets(), 0);
    }

    #[test]
    fn throughput_math() {
        let mut r = LatencyRecorder::new();
        for i in 0..1000 {
            r.record(&done_packet(i, i, i + 5));
        }
        let window = SimDuration::from_millis(1);
        assert!((r.pps(window) - 1_000_000.0).abs() < 1.0);
        // 1000 packets * 1000 B * 8 bits / 1 ms = 8 Gb/s.
        assert!((r.gbps(window) - 8.0).abs() < 0.01);
        assert_eq!(r.pps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(&done_packet(1, 0, 10));
        b.record(&done_packet(2, 5, 25));
        a.merge(&b);
        assert_eq!(a.packets(), 2);
        assert_eq!(a.bytes(), 2000);
        assert_eq!(a.total_latency().count(), 2);
    }
}
