//! Packet-trace capture and replay.
//!
//! The paper's evaluation runs against production traffic; the closest
//! reproducible equivalent is trace-driven replay. A [`Trace`] is an
//! ordered list of packet records that can be captured from any
//! generator, serialized to CSV (one line per packet), loaded back,
//! and replayed through a [`TrafficGen`](crate::TrafficGen) — giving
//! experiments a fixed, inspectable workload that is independent of
//! distribution parameters.

use taichi_hw::IoKind;
use taichi_sim::{Rng, SimDuration};

use crate::generator::TrafficGen;

/// One packet arrival in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Submission time, nanoseconds from trace start.
    pub at_ns: u64,
    /// Destination DP CPU index.
    pub dest_cpu: u32,
    /// Payload size in bytes.
    pub size_bytes: u32,
}

/// An ordered packet trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

/// Errors from parsing a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not have exactly three comma-separated fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as an integer.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// Timestamps were not non-decreasing.
    OutOfOrder {
        /// 1-based line number of the regressing record.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadFieldCount { line } => {
                write!(f, "line {line}: expected `at_ns,dest_cpu,size_bytes`")
            }
            TraceError::BadNumber { line, field } => {
                write!(f, "line {line}: `{field}` is not a non-negative integer")
            }
            TraceError::OutOfOrder { line } => {
                write!(f, "line {line}: timestamps must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Creates a trace from records.
    ///
    /// # Panics
    ///
    /// Panics when timestamps are not non-decreasing — build traces
    /// through [`Trace::parse_csv`] for fallible construction.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "trace records must be time-ordered"
        );
        Trace { records }
    }

    /// Captures a trace by running `generator` until `horizon`.
    pub fn capture(generator: &mut TrafficGen, rng: &mut Rng, horizon: SimDuration) -> Self {
        let mut records = Vec::new();
        loop {
            let p = generator.next_packet(rng);
            if p.submitted_at.as_nanos() > horizon.as_nanos() {
                break;
            }
            records.push(TraceRecord {
                at_ns: p.submitted_at.as_nanos(),
                dest_cpu: p.dest_cpu.0,
                size_bytes: p.size_bytes,
            });
        }
        Trace { records }
    }

    /// Parses the CSV form: one `at_ns,dest_cpu,size_bytes` line per
    /// packet; blank lines and `#` comments are skipped.
    pub fn parse_csv(text: &str) -> Result<Self, TraceError> {
        let mut records = Vec::new();
        let mut last = 0u64;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = t.split(',').map(str::trim).collect();
            if fields.len() != 3 {
                return Err(TraceError::BadFieldCount { line });
            }
            let num = |s: &str| -> Result<u64, TraceError> {
                s.parse().map_err(|_| TraceError::BadNumber {
                    line,
                    field: s.to_string(),
                })
            };
            let at_ns = num(fields[0])?;
            let dest_cpu = num(fields[1])? as u32;
            let size_bytes = num(fields[2])?.max(1) as u32;
            if at_ns < last {
                return Err(TraceError::OutOfOrder { line });
            }
            last = at_ns;
            records.push(TraceRecord {
                at_ns,
                dest_cpu,
                size_bytes,
            });
        }
        Ok(Trace { records })
    }

    /// Serializes to the CSV form accepted by [`Trace::parse_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# at_ns,dest_cpu,size_bytes\n");
        for r in &self.records {
            out.push_str(&format!("{},{},{}\n", r.at_ns, r.dest_cpu, r.size_bytes));
        }
        out
    }

    /// The records, time-ordered.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Trace length in time (timestamp of the last record).
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.records.last().map(|r| r.at_ns).unwrap_or(0))
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size_bytes as u64).sum()
    }

    /// Mean offered packet rate over the trace duration (pps).
    pub fn mean_pps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            self.len() as f64 / d
        }
    }

    /// Builds a replaying generator for this trace.
    ///
    /// The replay loops: when the trace is exhausted it restarts with a
    /// cumulative time offset, producing a continuous workload whose
    /// period is [`Trace::duration`] (plus one mean gap between
    /// iterations). Replay ignores the RNG entirely, so it is
    /// bit-identical under any seed.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace — there is nothing to replay.
    pub fn replayer(&self, kind: IoKind) -> TrafficGen {
        assert!(!self.is_empty(), "cannot replay an empty trace");
        TrafficGen::replay(self.records.clone(), kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ArrivalPattern;
    use taichi_hw::CpuId;
    use taichi_sim::Dist;

    fn sample_trace() -> Trace {
        Trace::new(vec![
            TraceRecord {
                at_ns: 100,
                dest_cpu: 0,
                size_bytes: 64,
            },
            TraceRecord {
                at_ns: 250,
                dest_cpu: 3,
                size_bytes: 1500,
            },
            TraceRecord {
                at_ns: 250,
                dest_cpu: 1,
                size_bytes: 512,
            },
        ])
    }

    #[test]
    fn csv_round_trip() {
        let t = sample_trace();
        let csv = t.to_csv();
        let back = Trace::parse_csv(&csv).expect("round trip parses");
        assert_eq!(t, back);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let t = Trace::parse_csv("# header\n\n10,0,64\n\n20,1,128\n").expect("parses");
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].dest_cpu, 1);
    }

    #[test]
    fn parse_errors_are_precise() {
        assert_eq!(
            Trace::parse_csv("10,0\n"),
            Err(TraceError::BadFieldCount { line: 1 })
        );
        assert_eq!(
            Trace::parse_csv("10,zero,64\n"),
            Err(TraceError::BadNumber {
                line: 1,
                field: "zero".into()
            })
        );
        assert_eq!(
            Trace::parse_csv("20,0,64\n10,0,64\n"),
            Err(TraceError::OutOfOrder { line: 2 })
        );
        // Display is human-readable.
        let e = TraceError::OutOfOrder { line: 2 };
        assert!(e.to_string().contains("non-decreasing"));
    }

    #[test]
    fn capture_from_generator() {
        let mut g = TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::constant(10.0),
            },
            Dist::constant(256.0),
            IoKind::Network,
            (0..4).map(CpuId).collect(),
        );
        let mut rng = taichi_sim::Rng::new(1);
        let t = Trace::capture(&mut g, &mut rng, SimDuration::from_millis(1));
        // 10 µs gaps over 1 ms → ~100 packets.
        assert!((95..=100).contains(&t.len()), "len {}", t.len());
        assert!(t.duration() <= SimDuration::from_millis(1));
        assert_eq!(t.total_bytes(), 256 * t.len() as u64);
        assert!((t.mean_pps() - 100_000.0).abs() / 100_000.0 < 0.1);
    }

    #[test]
    fn summary_stats() {
        let t = sample_trace();
        assert_eq!(t.duration(), SimDuration::from_nanos(250));
        assert_eq!(t.total_bytes(), 64 + 1500 + 512);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_records_panic() {
        Trace::new(vec![
            TraceRecord {
                at_ns: 20,
                dest_cpu: 0,
                size_bytes: 1,
            },
            TraceRecord {
                at_ns: 10,
                dest_cpu: 0,
                size_bytes: 1,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_panics() {
        Trace::default().replayer(IoKind::Network);
    }
}
