//! Packet/request arrival generators.
//!
//! Three arrival shapes cover the evaluation:
//!
//! - [`ArrivalPattern::OpenLoop`]: independent inter-arrival gaps (use
//!   an exponential for Poisson traffic) — netperf/sockperf streams.
//! - [`ArrivalPattern::OnOff`]: alternating bursts and silences —
//!   the bursty pattern that forces over-provisioning (§3.1).
//! - [`ArrivalPattern::Modulated`]: a base gap scaled by a repeating
//!   profile (e.g. a 24-point diurnal curve) — used to reproduce the
//!   Fig. 3 production utilization CDF.
//!
//! A [`TrafficGen`] combines a pattern with a size distribution and a
//! destination-CPU spraying policy (round-robin over the DP CPUs,
//! matching RSS across queues).

use taichi_hw::{CpuId, IoKind, Packet, PacketId, TenantId};
use taichi_sim::{Dist, Rng, SimDuration, SimTime};

/// When packets arrive.
#[derive(Clone, Debug)]
pub enum ArrivalPattern {
    /// Independent inter-arrival gaps (µs).
    OpenLoop {
        /// Gap distribution in microseconds.
        gap_us: Dist,
    },
    /// Bursts of `on_us` with gaps `burst_gap_us`, separated by
    /// silences of `off_us`.
    OnOff {
        /// Burst duration (µs).
        on_us: Dist,
        /// Silence duration (µs).
        off_us: Dist,
        /// Inter-arrival gap inside a burst (µs).
        burst_gap_us: Dist,
    },
    /// Open-loop gaps scaled by a repeating profile: slot `i` of the
    /// profile divides the arrival rate (multiplies the gap).
    Modulated {
        /// Base gap distribution (µs).
        base_gap_us: Dist,
        /// Rate multipliers per slot (>= 0; 1.0 = base rate).
        profile: Vec<f64>,
        /// Duration of one profile slot.
        slot: SimDuration,
    },
}

/// How packets are distributed across destination CPUs.
///
/// Hardware RSS hashes flows, so per-CPU arrivals look Poisson
/// ([`Spray::Random`], the default); [`Spray::RoundRobin`] produces
/// unrealistically smooth per-CPU gaps (Erlang-k) and is kept for
/// tests that need deterministic destinations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Spray {
    /// Uniformly random destination per packet (RSS-like).
    #[default]
    Random,
    /// Strict rotation over the target list.
    RoundRobin,
}

/// Internal on/off phase tracking.
#[derive(Clone, Debug)]
struct OnOffState {
    in_burst: bool,
    phase_ends: SimTime,
}

/// How the generator decides the next packet.
#[derive(Clone, Debug)]
enum Source {
    /// Synthetic arrivals from a pattern + size distribution.
    Synthetic {
        pattern: ArrivalPattern,
        size_bytes: Dist,
        targets: Vec<CpuId>,
        spray: Spray,
        next_target: usize,
        onoff: Option<OnOffState>,
    },
    /// Replay of a captured trace, looping with a cumulative offset.
    Replay {
        records: Vec<crate::trace::TraceRecord>,
        pos: usize,
        /// Time offset added on each loop iteration.
        offset_ns: u64,
        /// Gap inserted between iterations (one mean inter-arrival).
        wrap_gap_ns: u64,
    },
}

/// A packet source.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    source: Source,
    kind: IoKind,
    queue: u32,
    tenant: TenantId,
    next_id: u64,
    clock: SimTime,
}

impl TrafficGen {
    /// Creates a generator spraying packets round-robin over `targets`.
    ///
    /// # Panics
    ///
    /// Panics when `targets` is empty.
    pub fn new(
        pattern: ArrivalPattern,
        size_bytes: Dist,
        kind: IoKind,
        targets: Vec<CpuId>,
    ) -> Self {
        assert!(!targets.is_empty(), "traffic generator needs target CPUs");
        TrafficGen {
            source: Source::Synthetic {
                pattern,
                size_bytes,
                targets,
                spray: Spray::Random,
                next_target: 0,
                onoff: None,
            },
            kind,
            queue: 0,
            tenant: TenantId::HOST,
            next_id: 0,
            clock: SimTime::ZERO,
        }
    }

    /// Creates a generator replaying a captured trace (see
    /// [`crate::trace::Trace::replayer`]). The replay loops with a
    /// cumulative offset so it provides a continuous workload.
    ///
    /// # Panics
    ///
    /// Panics when `records` is empty.
    pub fn replay(records: Vec<crate::trace::TraceRecord>, kind: IoKind) -> Self {
        assert!(!records.is_empty(), "cannot replay an empty trace");
        let duration = records.last().expect("non-empty").at_ns;
        let wrap_gap_ns = (duration / records.len() as u64).max(1);
        TrafficGen {
            source: Source::Replay {
                records,
                pos: 0,
                offset_ns: 0,
                wrap_gap_ns,
            },
            kind,
            queue: 0,
            tenant: TenantId::HOST,
            next_id: 0,
            clock: SimTime::ZERO,
        }
    }

    /// Sets the destination spraying policy (default [`Spray::Random`]).
    /// No effect on trace replay (destinations come from the trace).
    pub fn with_spray(mut self, spray: Spray) -> Self {
        if let Source::Synthetic { spray: s, .. } = &mut self.source {
            *s = spray;
        }
        self
    }

    /// Tags generated packets with a destination queue index. Queue 0
    /// is bulk traffic; services record non-zero queues separately,
    /// which latency-probe benchmarks (ping, sockperf) use to sample
    /// the data path sparsely and uniformly in time.
    pub fn with_queue(mut self, queue: u32) -> Self {
        self.queue = queue;
        self
    }

    /// Tags generated packets with an owning tenant (default: the
    /// implicit single-operator tenant 0). Pure relabelling — no RNG
    /// draw — so a tenant-0 generator is byte-identical to a
    /// pre-tenant one.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Fixes the generator's clock origin (arrivals are generated
    /// forward from here).
    pub fn start_at(&mut self, t: SimTime) {
        self.clock = t;
    }

    /// Current generator clock (submission time of the next packet is
    /// strictly after this).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Generates the next packet, advancing the internal clock.
    pub fn next_packet(&mut self, rng: &mut Rng) -> Packet {
        let (at, size, dest) = match &mut self.source {
            Source::Replay {
                records,
                pos,
                offset_ns,
                wrap_gap_ns,
            } => {
                if *pos >= records.len() {
                    // Loop: shift the whole trace past the last packet.
                    let last = records.last().expect("non-empty").at_ns;
                    *offset_ns += last + *wrap_gap_ns;
                    *pos = 0;
                }
                let r = records[*pos];
                *pos += 1;
                (
                    SimTime::from_nanos(r.at_ns + *offset_ns),
                    r.size_bytes,
                    CpuId(r.dest_cpu),
                )
            }
            Source::Synthetic { .. } => {
                let gap = self.next_gap(rng);
                let at = self.clock + gap;
                let Source::Synthetic {
                    size_bytes,
                    targets,
                    spray,
                    next_target,
                    ..
                } = &mut self.source
                else {
                    unreachable!("matched Synthetic above");
                };
                let size = size_bytes.sample(rng).round().max(1.0) as u32;
                let dest = match spray {
                    Spray::Random => targets[rng.next_below(targets.len() as u64) as usize],
                    Spray::RoundRobin => {
                        let d = targets[*next_target % targets.len()];
                        *next_target += 1;
                        d
                    }
                };
                (at, size, dest)
            }
        };
        self.clock = at;
        let id = PacketId(self.next_id);
        self.next_id += 1;
        Packet::new(id, self.kind, size, dest, self.queue, self.clock).with_tenant(self.tenant)
    }

    fn next_gap(&mut self, rng: &mut Rng) -> SimDuration {
        let clock = self.clock;
        let Source::Synthetic { pattern, onoff, .. } = &mut self.source else {
            return SimDuration::ZERO;
        };
        match &*pattern {
            ArrivalPattern::OpenLoop { gap_us } => gap_us.sample_micros(rng),
            ArrivalPattern::OnOff {
                on_us,
                off_us,
                burst_gap_us,
            } => {
                // Initialise the first burst lazily.
                if onoff.is_none() {
                    let on = on_us.sample_micros(rng);
                    *onoff = Some(OnOffState {
                        in_burst: true,
                        phase_ends: clock + on,
                    });
                }
                let gap = burst_gap_us.sample_micros(rng);
                let st = onoff.as_mut().expect("initialised above");
                if clock + gap <= st.phase_ends {
                    gap
                } else {
                    // Burst exhausted: jump over the off period and
                    // start a new burst.
                    let off = off_us.sample_micros(rng);
                    let next_start = st.phase_ends + off;
                    let on = on_us.sample_micros(rng);
                    let silent = next_start.saturating_since(clock);
                    st.in_burst = true;
                    st.phase_ends = next_start + on;
                    silent + burst_gap_us.sample_micros(rng)
                }
            }
            ArrivalPattern::Modulated {
                base_gap_us,
                profile,
                slot,
            } => {
                let base = base_gap_us.sample_micros(rng);
                if profile.is_empty() || slot.is_zero() {
                    return base;
                }
                let idx = (clock.as_nanos() / slot.as_nanos().max(1)) as usize % profile.len();
                let rate = profile[idx].max(1e-6);
                SimDuration::from_nanos((base.as_nanos() as f64 / rate).round() as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_rate_matches() {
        let mut g = TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(10.0),
            },
            Dist::constant(512.0),
            IoKind::Network,
            vec![CpuId(0), CpuId(1)],
        );
        let mut rng = Rng::new(42);
        let n = 50_000;
        for _ in 0..n {
            g.next_packet(&mut rng);
        }
        // Mean gap 10 µs ⇒ 50k packets ≈ 500 ms.
        let elapsed_ms = g.clock().as_millis_f64();
        assert!((elapsed_ms - 500.0).abs() / 500.0 < 0.03, "{elapsed_ms} ms");
    }

    #[test]
    fn round_robin_spraying() {
        let mut g = TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::constant(1.0),
            },
            Dist::constant(64.0),
            IoKind::Network,
            vec![CpuId(0), CpuId(1), CpuId(2)],
        )
        .with_spray(Spray::RoundRobin);
        let mut rng = Rng::new(1);
        let dests: Vec<u32> = (0..6).map(|_| g.next_packet(&mut rng).dest_cpu.0).collect();
        assert_eq!(dests, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_spray_covers_all_targets() {
        let mut g = TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::constant(1.0),
            },
            Dist::constant(64.0),
            IoKind::Network,
            (0..8).map(CpuId).collect(),
        );
        let mut rng = Rng::new(2);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[g.next_packet(&mut rng).dest_cpu.0 as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "cpu{i} got {c}");
        }
    }

    #[test]
    fn ids_and_times_monotone() {
        let mut g = TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(5.0),
            },
            Dist::uniform(64.0, 1500.0),
            IoKind::Storage,
            vec![CpuId(0)],
        );
        let mut rng = Rng::new(2);
        let mut last_t = SimTime::ZERO;
        for i in 0..1000 {
            let p = g.next_packet(&mut rng);
            assert_eq!(p.id.0, i);
            assert!(p.submitted_at >= last_t);
            assert!((64..=1500).contains(&p.size_bytes));
            last_t = p.submitted_at;
        }
    }

    #[test]
    fn onoff_produces_bursts_and_silences() {
        let mut g = TrafficGen::new(
            ArrivalPattern::OnOff {
                on_us: Dist::constant(100.0),
                off_us: Dist::constant(900.0),
                burst_gap_us: Dist::constant(2.0),
            },
            Dist::constant(64.0),
            IoKind::Network,
            vec![CpuId(0)],
        );
        let mut rng = Rng::new(3);
        let mut gaps = Vec::new();
        let mut last = SimTime::ZERO;
        for _ in 0..2000 {
            let p = g.next_packet(&mut rng);
            gaps.push(p.submitted_at.saturating_since(last).as_nanos());
            last = p.submitted_at;
        }
        let big = gaps.iter().filter(|&&g| g > 500_000).count();
        let small = gaps.iter().filter(|&&g| g <= 5_000).count();
        // ~50 packets per 100 µs burst, ~1 silence per burst.
        assert!(big >= 20, "expected silences, got {big}");
        assert!(small > 1500, "expected dense bursts, got {small}");
    }

    #[test]
    fn modulated_changes_rate_by_slot() {
        let mut g = TrafficGen::new(
            ArrivalPattern::Modulated {
                base_gap_us: Dist::constant(10.0),
                profile: vec![1.0, 4.0],
                slot: SimDuration::from_millis(10),
            },
            Dist::constant(64.0),
            IoKind::Network,
            vec![CpuId(0)],
        );
        let mut rng = Rng::new(4);
        // Count arrivals in the first 10 ms (rate 1×) vs second (4×).
        let mut counts = [0u32; 2];
        loop {
            let p = g.next_packet(&mut rng);
            let t = p.submitted_at.as_nanos();
            if t >= 20_000_000 {
                break;
            }
            counts[(t / 10_000_000) as usize] += 1;
        }
        assert!(counts[1] > counts[0] * 3, "modulation missing: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "needs target CPUs")]
    fn empty_targets_panics() {
        TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::constant(1.0),
            },
            Dist::constant(64.0),
            IoKind::Network,
            vec![],
        );
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::trace::{Trace, TraceRecord};

    fn trace() -> Trace {
        Trace::new(vec![
            TraceRecord {
                at_ns: 100,
                dest_cpu: 2,
                size_bytes: 64,
            },
            TraceRecord {
                at_ns: 300,
                dest_cpu: 5,
                size_bytes: 1500,
            },
        ])
    }

    #[test]
    fn replay_reproduces_records_exactly() {
        let mut g = trace().replayer(IoKind::Storage);
        let mut rng = Rng::new(123);
        let p1 = g.next_packet(&mut rng);
        let p2 = g.next_packet(&mut rng);
        assert_eq!(p1.submitted_at.as_nanos(), 100);
        assert_eq!(p1.dest_cpu, CpuId(2));
        assert_eq!(p1.size_bytes, 64);
        assert_eq!(p2.submitted_at.as_nanos(), 300);
        assert_eq!(p2.dest_cpu, CpuId(5));
        assert_eq!(p2.kind, IoKind::Storage);
    }

    #[test]
    fn replay_loops_with_offset() {
        let mut g = trace().replayer(IoKind::Network);
        let mut rng = Rng::new(1);
        let times: Vec<u64> = (0..6)
            .map(|_| g.next_packet(&mut rng).submitted_at.as_nanos())
            .collect();
        // wrap gap = 300/2 = 150; second loop offset 450, third 900.
        assert_eq!(times, vec![100, 300, 550, 750, 1000, 1200]);
    }

    #[test]
    fn replay_ignores_rng_seed() {
        let mut a = trace().replayer(IoKind::Network);
        let mut b = trace().replayer(IoKind::Network);
        let mut r1 = Rng::new(1);
        let mut r2 = Rng::new(999);
        for _ in 0..10 {
            let pa = a.next_packet(&mut r1);
            let pb = b.next_packet(&mut r2);
            assert_eq!(pa.submitted_at, pb.submitted_at);
            assert_eq!(pa.dest_cpu, pb.dest_cpu);
            assert_eq!(pa.size_bytes, pb.size_bytes);
        }
    }

    #[test]
    fn captured_trace_replays_through_a_machine_shape() {
        // Capture a synthetic trace, then verify the replayer emits the
        // identical packet sequence the capture saw.
        let mut synth = TrafficGen::new(
            ArrivalPattern::OpenLoop {
                gap_us: Dist::exponential(5.0),
            },
            Dist::uniform(64.0, 1500.0),
            IoKind::Network,
            (0..8).map(CpuId).collect(),
        );
        let mut rng = Rng::new(77);
        let t = Trace::capture(
            &mut synth,
            &mut rng,
            taichi_sim::SimDuration::from_millis(1),
        );
        assert!(t.len() > 100);
        let mut replay = t.replayer(IoKind::Network);
        let mut dummy = Rng::new(0);
        for r in t.records() {
            let p = replay.next_packet(&mut dummy);
            assert_eq!(p.submitted_at.as_nanos(), r.at_ns);
            assert_eq!(p.dest_cpu.0, r.dest_cpu);
            assert_eq!(p.size_bytes, r.size_bytes);
        }
    }
}
