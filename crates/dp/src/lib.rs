//! Data-plane services (DPDK/SPDK analogues).
//!
//! A data-plane service is a poll-mode driver pinned to one SmartNIC
//! CPU: it spins on its receive queues, processes packets in bursts,
//! and — under Tai Chi — counts consecutive empty polls to detect
//! idleness (the Fig. 9 loop). This crate provides:
//!
//! - [`service::DpService`]: the per-CPU service state machine with
//!   burst processing, analytic empty-poll accounting, busy metering,
//!   and the post-resume cache/TLB-pollution surcharge that produces
//!   the paper's residual ≤1.92 % DP overhead.
//! - [`generator`]: packet/request arrival generators — open-loop
//!   Poisson, on/off bursty, and diurnally modulated streams (the last
//!   calibrated to reproduce the Fig. 3 utilization CDF).
//! - [`latency`]: per-stage latency recording and throughput metrics
//!   (pps, IOPS, bandwidth) shared by every benchmark analogue.

pub mod generator;
pub mod latency;
pub mod service;
pub mod trace;

pub use generator::{ArrivalPattern, Spray, TrafficGen};
pub use latency::LatencyRecorder;
pub use service::{DpService, DpServiceConfig};
pub use trace::{Trace, TraceRecord};
