//! The poll-mode data-plane service.
//!
//! One [`DpService`] is pinned to one SmartNIC CPU and owns that CPU's
//! receive queue. The real service runs the Fig. 9 loop:
//!
//! ```c
//! while (true) {
//!     n = rte_eth_rx_burst(qid);
//!     if (n == 0) empty_polling_num++;
//!     else { empty_polling_num = 0; /* process */ }
//!     if (empty_polling_num > threshold) notify_idle_DP_CPU_cycles();
//! }
//! ```
//!
//! Simulating every ~100 ns poll iteration would melt the event queue,
//! so the loop is modelled *analytically*: while the queue is empty the
//! threshold-crossing instant is `last_activity + threshold ×
//! poll_iteration`; a packet arrival before that instant resets the
//! counter. The observable behaviour (when the yield notification
//! fires) is identical to iterating the loop.
//!
//! The service also models the cache/TLB pollution left behind by a
//! vCPU that borrowed the core (§6.5 attributes Tai Chi's residual
//! ≤1.92 % DP overhead to exactly this): for a short window after
//! [`DpService::mark_polluted`], per-packet processing pays a
//! multiplicative surcharge.

use std::sync::Arc;

use crate::latency::LatencyRecorder;
use taichi_hw::{CpuId, Packet, RxQueue};
use taichi_sim::{Dist, FaultInjector, PreparedDist, Rng, SimDuration, SimTime, UtilizationMeter};

/// Tuning constants for one data-plane service.
#[derive(Clone, Debug)]
pub struct DpServiceConfig {
    /// Cost of one empty poll iteration (queue probe + loop overhead).
    pub poll_iteration: SimDuration,
    /// Per-packet software processing cost (ns).
    pub proc_cost_ns: Dist,
    /// Max packets drained per burst.
    pub burst: usize,
    /// Receive ring capacity.
    pub ring_capacity: usize,
    /// Cache/TLB pollution window after a vCPU vacates the core.
    pub pollution_window: SimDuration,
    /// Multiplicative processing surcharge inside the window.
    pub pollution_tax: f64,
    /// Whether the rx ring reserves `ring_capacity` descriptors up
    /// front (the hot-machine default) or lets the backing store grow
    /// to the observed occupancy (fleet footprint profiles). The drop
    /// bound is `ring_capacity` either way.
    pub eager_ring: bool,
}

impl Default for DpServiceConfig {
    fn default() -> Self {
        DpServiceConfig {
            poll_iteration: SimDuration::from_nanos(120),
            proc_cost_ns: Dist::LogNormal {
                mean: 1_500.0,
                sigma: 0.4,
            },
            burst: 32,
            ring_capacity: 1024,
            pollution_window: SimDuration::from_micros(8),
            pollution_tax: 1.18,
            eager_ring: true,
        }
    }
}

/// A poll-mode service pinned to `cpu`.
#[derive(Clone, Debug)]
pub struct DpService {
    cpu: CpuId,
    /// Shared, read-only after construction: a machine builds one
    /// config and hands every service the same `Arc`, so constructing
    /// N services costs one deep clone instead of N.
    config: Arc<DpServiceConfig>,
    queue: RxQueue,
    /// The service is software-processing packets until this instant.
    busy_until: SimTime,
    /// Start of the current empty-poll run (None while packets flow).
    empty_since: Option<SimTime>,
    /// Empty-poll iterations from *closed* runs, accumulated in closed
    /// form (`gap / poll_iteration`) instead of one event per
    /// iteration — the engine's fast-forward ledger.
    ff_polls: u64,
    /// Cache pollution expires at this instant.
    polluted_until: SimTime,
    meter: UtilizationMeter,
    /// `config.proc_cost_ns` with sampling constants hoisted (drawn
    /// once per processed packet — the hottest sampler in the machine).
    proc_cost: PreparedDist,
    recorder: LatencyRecorder,
    tagged: LatencyRecorder,
    /// Per-tenant latency/throughput recorders, indexed by `TenantId`.
    /// Empty in the single-tenant configuration — the pre-tenant hot
    /// path does not touch them (DESIGN.md §3.11).
    tenant_recorders: Vec<LatencyRecorder>,
    /// Per-tenant processed-packet counts (empty when single-tenant).
    tenant_processed: Vec<u64>,
    /// Per-tenant ring-overflow drops (empty when single-tenant).
    tenant_drops: Vec<u64>,
    processed: u64,
    /// Extra execution tax applied to all processing (used by the
    /// Tai Chi-vDP mode, where the service itself runs in a vCPU).
    exec_tax: f64,
}

impl DpService {
    /// Creates an idle service pinned to `cpu`.
    pub fn new(cpu: CpuId, config: DpServiceConfig) -> Self {
        Self::with_shared_config(cpu, Arc::new(config))
    }

    /// Creates an idle service sharing an already-built config (the
    /// bulk-construction path: one `Arc` clone per service instead of
    /// a deep config clone).
    pub fn with_shared_config(cpu: CpuId, config: Arc<DpServiceConfig>) -> Self {
        let ring = RxQueue::with_eagerness(config.ring_capacity, config.eager_ring);
        let proc_cost = config.proc_cost_ns.prepared();
        DpService {
            cpu,
            config,
            proc_cost,
            queue: ring,
            busy_until: SimTime::ZERO,
            empty_since: Some(SimTime::ZERO),
            ff_polls: 0,
            polluted_until: SimTime::ZERO,
            meter: UtilizationMeter::new(SimTime::ZERO),
            recorder: LatencyRecorder::new(),
            tagged: LatencyRecorder::new(),
            tenant_recorders: Vec::new(),
            tenant_processed: Vec::new(),
            tenant_drops: Vec::new(),
            processed: 0,
            exec_tax: 1.0,
        }
    }

    /// The CPU this service is pinned to.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Applies a multiplicative execution tax to all software
    /// processing (nested-page-table cost when the service runs inside
    /// a vCPU — the Tai Chi-vDP / type-1 configuration).
    pub fn set_exec_tax(&mut self, tax: f64) {
        self.exec_tax = tax.max(1.0);
    }

    /// Switches the service to multi-tenant accounting: per-tenant
    /// latency recorders plus per-tenant processed/drop counters for
    /// `tenants` tenants. A no-op (and free) when never called — the
    /// single-tenant path stays byte-identical to the pre-tenant
    /// engine.
    pub fn set_tenants(&mut self, tenants: usize) {
        if tenants > 1 {
            self.tenant_recorders = (0..tenants).map(|_| LatencyRecorder::new()).collect();
            self.tenant_processed = vec![0; tenants];
            self.tenant_drops = vec![0; tenants];
        }
    }

    /// Deposits a delivered packet into the service's ring.
    ///
    /// Returns `false` when the ring overflowed (packet dropped).
    pub fn enqueue(&mut self, packet: Packet, now: SimTime) -> bool {
        let was_empty = self.queue.is_empty();
        let tenant = packet.tenant.index();
        let before = self.queue.total_dropped();
        let ok = self.queue.push(packet);
        if !ok && !self.tenant_drops.is_empty() && self.queue.total_dropped() > before {
            let n = self.tenant_drops.len();
            self.tenant_drops[tenant % n] += 1;
        }
        if ok && was_empty {
            // The empty-poll run ends the instant a packet lands in
            // the ring. (A rejected descriptor never reaches the ring,
            // so the real loop would keep seeing it empty — the run
            // stays open in that case.)
            self.close_empty_run(now);
        }
        ok
    }

    /// Attaches a fault injector to the receive ring (descriptor-
    /// reject backpressure faults).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.queue.set_fault(fault);
    }

    /// Packets waiting in the ring.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when the service has nothing to do at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.queue.is_empty() && now >= self.busy_until
    }

    /// The instant software processing of in-flight packets finishes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Marks the core as cache/TLB-polluted (a vCPU just vacated it).
    pub fn mark_polluted(&mut self, now: SimTime) {
        self.polluted_until = now + self.config.pollution_window;
    }

    /// Drains and processes up to one burst starting no earlier than
    /// `ready` (the instant the DP context is actually restored on the
    /// CPU). Returns the completion time of the last packet, or `None`
    /// when the ring was empty.
    ///
    /// Every processed packet gets `completed_at` stamped and is
    /// recorded in the latency recorder.
    pub fn process_burst(&mut self, ready: SimTime, rng: &mut Rng) -> Option<SimTime> {
        let n = self.config.burst.min(self.queue.len());
        if n == 0 {
            return None;
        }
        self.empty_since = None;
        let mut t = ready.max(self.busy_until);
        self.meter.set_busy(t);
        // Pop straight off the ring — `rx_burst` would materialise the
        // batch in a fresh Vec on every call, and this is the hottest
        // packet path in the simulator.
        for _ in 0..n {
            // `n` is bounded by the queue length above, so `pop`
            // cannot fail today; break instead of panicking so a
            // future concurrent-drain refactor degrades to a shorter
            // burst rather than taking the whole run down.
            let Some(mut p) = self.queue.pop() else { break };
            let mut cost_ns = self.proc_cost.sample(rng) * self.exec_tax;
            if t < self.polluted_until {
                cost_ns *= self.config.pollution_tax;
            }
            t += SimDuration::from_nanos(cost_ns.round().max(1.0) as u64);
            p.completed_at = Some(t);
            self.recorder.record(&p);
            if p.dest_queue != 0 {
                self.tagged.record(&p);
            }
            if !self.tenant_recorders.is_empty() {
                let i = p.tenant.index() % self.tenant_recorders.len();
                self.tenant_recorders[i].record(&p);
                self.tenant_processed[i] += 1;
            }
            self.processed += 1;
        }
        self.busy_until = t;
        self.meter.set_idle(t);
        if self.queue.is_empty() {
            self.empty_since = Some(t);
        }
        Some(t)
    }

    /// Analytic Fig. 9 loop: the instant at which `threshold`
    /// consecutive empty polls will have accumulated, given the queue
    /// stays empty. `None` while packets are pending.
    pub fn idle_notify_time(&self, threshold: u32) -> Option<SimTime> {
        let since = self.empty_since?;
        if !self.queue.is_empty() {
            return None;
        }
        Some(
            since
                + self
                    .config
                    .poll_iteration
                    .saturating_mul(threshold as u64 + 1),
        )
    }

    /// Consecutive empty polls accumulated by `now` (analytic).
    pub fn empty_polls(&self, now: SimTime) -> u64 {
        match self.empty_since {
            Some(since) if self.queue.is_empty() && now > since => {
                now.saturating_since(since).as_nanos()
                    / self.config.poll_iteration.as_nanos().max(1)
            }
            _ => 0,
        }
    }

    /// Ends the open empty-poll run at `now`, folding its closed-form
    /// iteration count (`gap / poll_iteration`) into the fast-forward
    /// ledger — the O(1) replacement for iterating the Fig. 9 loop
    /// across the gap. A run opened in the future (processing still
    /// completing) contributes nothing.
    fn close_empty_run(&mut self, now: SimTime) {
        if let Some(since) = self.empty_since.take() {
            if now > since {
                self.ff_polls += now.saturating_since(since).as_nanos()
                    / self.config.poll_iteration.as_nanos().max(1);
            }
        }
    }

    /// Suspends the poll loop (a vCPU is about to take the core): the
    /// current empty-poll run closes at `now`, and no iterations
    /// accumulate until [`DpService::restart_polling`] — the grant
    /// window is vCPU time, not polling time.
    pub fn pause_polling(&mut self, now: SimTime) {
        self.close_empty_run(now);
    }

    /// Resets the empty-poll run to start at `now` (called when the DP
    /// context resumes polling after a vCPU borrowed the core). Any
    /// still-open run is discarded, not counted: polling was not
    /// executing in between (callers pair this with
    /// [`DpService::pause_polling`]).
    pub fn restart_polling(&mut self, now: SimTime) {
        if self.queue.is_empty() {
            self.empty_since = Some(now.max(self.busy_until));
        } else {
            self.empty_since = None;
        }
    }

    /// Empty-poll iterations elided by the analytic Fig. 9 loop:
    /// every closed run plus the still-open run measured at `now`. A
    /// pure function of the packet/grant schedule, so the value is
    /// identical across queue backends and skip modes.
    pub fn fast_forwarded_polls(&self, now: SimTime) -> u64 {
        self.ff_polls + self.empty_polls(now)
    }

    /// Latency/throughput records.
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Latency records for probe packets (non-zero destination queue).
    pub fn tagged_recorder(&self) -> &LatencyRecorder {
        &self.tagged
    }

    /// Takes the accumulated latency records, leaving an empty
    /// recorder behind. Epoch-oriented drivers (the fleet layer) drain
    /// each machine per epoch and fold the delta into a streaming
    /// aggregate, so no service retains its full history; counters
    /// (`processed`, `dropped`) stay cumulative.
    pub fn take_recorder(&mut self) -> LatencyRecorder {
        std::mem::take(&mut self.recorder)
    }

    /// Merges the accumulated latency records into `dest` and clears
    /// them in place — the allocation-free sibling of
    /// [`DpService::take_recorder`] for epoch-oriented drivers that
    /// drain every machine every epoch. Counters stay cumulative.
    pub fn drain_recorder_into(&mut self, dest: &mut LatencyRecorder) {
        self.recorder.drain_into(dest);
    }

    /// Per-tenant latency recorders (empty when single-tenant).
    pub fn tenant_recorders(&self) -> &[LatencyRecorder] {
        &self.tenant_recorders
    }

    /// Takes the per-tenant recorders, leaving empty ones behind (the
    /// per-tenant sibling of [`DpService::take_recorder`]). Counters
    /// stay cumulative.
    pub fn take_tenant_recorders(&mut self) -> Vec<LatencyRecorder> {
        let n = self.tenant_recorders.len();
        std::mem::replace(
            &mut self.tenant_recorders,
            (0..n).map(|_| LatencyRecorder::new()).collect(),
        )
    }

    /// Merges each tenant's records into `dest[t]` (growing `dest` to
    /// the tenant count if needed) and clears them in place — the
    /// allocation-free sibling of
    /// [`DpService::take_tenant_recorders`]. Counters stay cumulative.
    pub fn drain_tenant_recorders_into(&mut self, dest: &mut Vec<LatencyRecorder>) {
        if dest.len() < self.tenant_recorders.len() {
            dest.resize_with(self.tenant_recorders.len(), LatencyRecorder::new);
        }
        for (rec, d) in self.tenant_recorders.iter_mut().zip(dest.iter_mut()) {
            rec.drain_into(d);
        }
    }

    /// Per-tenant `(processed, ring drops)` counters (empty when
    /// single-tenant).
    pub fn tenant_counts(&self) -> Vec<(u64, u64)> {
        self.tenant_processed
            .iter()
            .zip(&self.tenant_drops)
            .map(|(&p, &d)| (p, d))
            .collect()
    }

    /// Total packets processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Packets dropped at the ring on overflow (genuine load
    /// shedding). Fault-injected descriptor rejects are *not* included
    /// — they are the injector's doing, already counted in its
    /// `enic_rejects` stat, and folding them in here double-charged
    /// the service (see [`DpService::rejected`]).
    pub fn dropped(&self) -> u64 {
        self.queue.total_dropped()
    }

    /// Packets rejected at the ring by injected backpressure faults.
    pub fn rejected(&self) -> u64 {
        self.queue.total_rejected()
    }

    /// Every packet this service's ring refused (overflow + fault
    /// rejects) — the conservation-audit view.
    pub fn lost(&self) -> u64 {
        self.queue.total_lost()
    }

    /// Deepest rx-ring occupancy ever observed.
    pub fn ring_high_watermark(&self) -> usize {
        self.queue.high_watermark()
    }

    /// Releases rx-ring backing storage beyond the current occupancy
    /// (the capacity bound is untouched; observably inert).
    pub fn compact(&mut self) {
        self.queue.compact();
    }

    /// Resident bytes of the rx ring's backing storage.
    pub fn ring_resident_bytes(&self) -> usize {
        self.queue.resident_bytes()
    }

    /// Busy fraction of the service since creation.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.meter.lifetime_utilization(now)
    }

    /// Busy fraction over the window since the last call, resetting it.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        self.meter.sample_and_reset(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_hw::{IoKind, PacketId};

    fn mk_service() -> DpService {
        DpService::new(
            CpuId(0),
            DpServiceConfig {
                proc_cost_ns: Dist::constant(1_000.0),
                ..DpServiceConfig::default()
            },
        )
    }

    fn delivered(id: u64, at_us: u64) -> Packet {
        let mut p = Packet::new(
            PacketId(id),
            IoKind::Network,
            256,
            CpuId(0),
            0,
            SimTime::from_micros(at_us.saturating_sub(4)),
        );
        let deliver = SimTime::from_micros(at_us);
        p.preprocessed_at = Some(
            deliver
                - deliver
                    .saturating_since(SimTime::ZERO)
                    .min(SimDuration::from_nanos(500)),
        );
        p.delivered_at = Some(deliver);
        p
    }

    #[test]
    fn burst_processing_is_serial() {
        let mut s = mk_service();
        let mut rng = Rng::new(1);
        let t = SimTime::from_micros(10);
        for i in 0..3 {
            assert!(s.enqueue(delivered(i, 10), t));
        }
        let done = s.process_burst(t, &mut rng).unwrap();
        assert_eq!(done.as_nanos(), 10_000 + 3_000);
        assert_eq!(s.processed(), 3);
        assert_eq!(s.recorder().packets(), 3);
        assert!(s.is_idle(done));
    }

    #[test]
    fn empty_burst_returns_none() {
        let mut s = mk_service();
        let mut rng = Rng::new(1);
        assert!(s.process_burst(SimTime::from_micros(1), &mut rng).is_none());
    }

    #[test]
    fn idle_notify_time_analytic() {
        let s = mk_service();
        // Idle since t=0, 120 ns/iteration, threshold 100: notify at
        // (100+1)*120 ns.
        let t = s.idle_notify_time(100).unwrap();
        assert_eq!(t.as_nanos(), 101 * 120);
    }

    #[test]
    fn empty_polls_accumulate_then_reset() {
        let mut s = mk_service();
        let mut rng = Rng::new(2);
        assert_eq!(s.empty_polls(SimTime::from_micros(12)), 100);
        // A packet arrives and is processed: counter resets, idle run
        // restarts at completion.
        let t = SimTime::from_micros(20);
        s.enqueue(delivered(1, 20), t);
        assert!(s.idle_notify_time(100).is_none());
        let done = s.process_burst(t, &mut rng).unwrap();
        assert_eq!(s.empty_polls(done), 0);
        assert!(s.idle_notify_time(100).unwrap() > done);
    }

    #[test]
    fn pollution_taxes_processing() {
        let mut s = mk_service();
        let mut rng = Rng::new(3);
        let t = SimTime::from_micros(100);
        s.mark_polluted(t);
        s.enqueue(delivered(1, 100), t);
        let done = s.process_burst(t, &mut rng).unwrap();
        // 1000 ns * 1.18 = 1180 ns.
        assert_eq!(done.as_nanos(), 100_000 + 1_180);
        // Past the window the tax disappears.
        let t2 = t + s.config.pollution_window + SimDuration::from_micros(1);
        s.enqueue(delivered(2, t2.as_nanos() / 1_000), t2);
        let done2 = s.process_burst(t2, &mut rng).unwrap();
        assert_eq!(done2.as_nanos(), t2.as_nanos() + 1_000);
    }

    #[test]
    fn exec_tax_applies_to_all_processing() {
        let mut s = mk_service();
        s.set_exec_tax(1.07);
        let mut rng = Rng::new(4);
        let t = SimTime::from_micros(50);
        s.enqueue(delivered(1, 50), t);
        let done = s.process_burst(t, &mut rng).unwrap();
        assert_eq!(done.as_nanos(), 50_000 + 1_070);
    }

    #[test]
    fn exec_tax_cannot_speed_up() {
        let mut s = mk_service();
        s.set_exec_tax(0.5);
        let mut rng = Rng::new(5);
        let t = SimTime::from_micros(50);
        s.enqueue(delivered(1, 50), t);
        let done = s.process_burst(t, &mut rng).unwrap();
        assert_eq!(done.as_nanos(), 50_000 + 1_000);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut s = DpService::new(
            CpuId(0),
            DpServiceConfig {
                ring_capacity: 2,
                ..DpServiceConfig::default()
            },
        );
        let t = SimTime::from_micros(1);
        assert!(s.enqueue(delivered(1, 1), t));
        assert!(s.enqueue(delivered(2, 1), t));
        assert!(!s.enqueue(delivered(3, 1), t));
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn utilization_reflects_processing() {
        let mut s = mk_service();
        let mut rng = Rng::new(6);
        let t = SimTime::from_micros(0);
        for i in 0..5 {
            s.enqueue(delivered(i, 0), t);
        }
        s.process_burst(t, &mut rng);
        // 5 µs busy out of 10 µs elapsed.
        let u = s.utilization(SimTime::from_micros(10));
        assert!((u - 0.5).abs() < 0.01, "utilization {u}");
    }

    #[test]
    fn fast_forward_counts_closed_and_open_runs() {
        let mut s = mk_service();
        let mut rng = Rng::new(8);
        // Idle run 0 → 12 µs closed by an arriving packet: 12000/120 =
        // 100 iterations, accounted in closed form.
        let t = SimTime::from_micros(12);
        s.enqueue(delivered(1, 12), t);
        assert_eq!(s.fast_forwarded_polls(t), 100);
        let done = s.process_burst(t, &mut rng).unwrap();
        // The new open run accumulates analytically from completion.
        let later = done + SimDuration::from_nanos(240);
        assert_eq!(s.fast_forwarded_polls(later), 102);
        // A grant window pauses the loop: the pre-grant tail counts,
        // the window itself does not.
        s.pause_polling(later);
        let resume = later + SimDuration::from_micros(50);
        s.restart_polling(resume);
        assert_eq!(s.fast_forwarded_polls(resume), 102);
    }

    #[test]
    fn restart_polling_after_vcpu_window() {
        let mut s = mk_service();
        // Service idle since 0; a vCPU borrowed the core until 500 µs.
        let resume = SimTime::from_micros(500);
        s.restart_polling(resume);
        let t = s.idle_notify_time(100).unwrap();
        assert_eq!(t.as_nanos(), 500_000 + 101 * 120);
    }

    #[test]
    fn sample_mid_burst_carries_busy_into_next_window() {
        let mut s = mk_service();
        let mut rng = Rng::new(9);
        let t = SimTime::ZERO;
        for i in 0..5 {
            s.enqueue(delivered(i, 0), t);
        }
        // Burst busy-time [0, 5 µs] is folded eagerly at t=0.
        s.process_burst(t, &mut rng);
        // A utilization sample lands mid-burst: the window must read
        // saturated (not >1.0), and the overhang must spill into the
        // next window instead of vanishing.
        let u1 = s.sample_utilization(SimTime::from_micros(2));
        assert!((u1 - 1.0).abs() < 1e-9, "mid-burst window: {u1}");
        let u2 = s.sample_utilization(SimTime::from_micros(10));
        assert!((u2 - 3.0 / 8.0).abs() < 1e-9, "spill window: {u2}");
        let u3 = s.sample_utilization(SimTime::from_micros(20));
        assert!(u3.abs() < 1e-9, "post-burst window must be idle: {u3}");
    }

    #[test]
    fn pause_restart_straddling_sample_stays_bounded() {
        let mut s = mk_service();
        let mut rng = Rng::new(10);
        let t = SimTime::ZERO;
        for i in 0..5 {
            s.enqueue(delivered(i, 0), t);
        }
        // Burst keeps the core busy over [0, 5 µs]. A vCPU takes the
        // core at 6 µs; the sample boundary at 7 µs falls inside the
        // grant window; polling resumes at 9 µs.
        s.process_burst(t, &mut rng);
        s.pause_polling(SimTime::from_micros(6));
        let u1 = s.sample_utilization(SimTime::from_micros(7));
        assert!(
            (0.0..=1.0).contains(&u1),
            "straddled window out of range: {u1}"
        );
        assert!((u1 - 5.0 / 7.0).abs() < 1e-9, "straddled window: {u1}");
        s.restart_polling(SimTime::from_micros(9));
        s.enqueue(delivered(9, 10), SimTime::from_micros(10));
        s.process_burst(SimTime::from_micros(10), &mut rng); // busy [10, 11 µs]
        let u2 = s.sample_utilization(SimTime::from_micros(12));
        assert!(
            (u2 - 1.0 / 5.0).abs() < 1e-9,
            "post-grant window must count only real processing: {u2}"
        );
    }

    #[test]
    fn fast_forwarded_empty_polls_are_not_busy_time() {
        let mut s = mk_service();
        // 0 → 12 µs of analytically fast-forwarded empty polling.
        assert_eq!(s.fast_forwarded_polls(SimTime::from_micros(12)), 100);
        let u = s.sample_utilization(SimTime::from_micros(12));
        assert!(
            u.abs() < 1e-9,
            "fast-forwarded empty-poll window must sample idle: {u}"
        );
        assert!(s.utilization(SimTime::from_micros(12)).abs() < 1e-9);
    }

    #[test]
    fn fault_rejects_do_not_count_as_service_drops() {
        use taichi_sim::{FaultInjector, FaultPlan};
        let mut s = mk_service();
        let f = FaultInjector::from_plan(
            &FaultPlan {
                enic_reject_rate: 1.0,
                ..FaultPlan::default()
            },
            7,
        )
        .expect("active plan");
        s.set_fault(f);
        let t = SimTime::from_micros(1);
        assert!(!s.enqueue(delivered(1, 1), t));
        assert_eq!(s.dropped(), 0, "a fault reject is not load shedding");
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.lost(), 1);
    }

    #[test]
    fn tenant_accounting_splits_by_packet_tag() {
        use taichi_hw::TenantId;
        let mut s = mk_service();
        s.set_tenants(2);
        let mut rng = Rng::new(11);
        let t = SimTime::from_micros(5);
        for i in 0..6u64 {
            let p = delivered(i, 5).with_tenant(TenantId((i % 2) as u32));
            assert!(s.enqueue(p, t));
        }
        s.process_burst(t, &mut rng);
        let counts = s.tenant_counts();
        assert_eq!(counts[0].0, 3);
        assert_eq!(counts[1].0, 3);
        assert_eq!(s.tenant_recorders()[0].packets(), 3);
        assert_eq!(s.tenant_recorders()[1].packets(), 3);
        // The merged recorder still sees everything.
        assert_eq!(s.recorder().packets(), 6);
        let drained = s.take_tenant_recorders();
        assert_eq!(drained.len(), 2);
        assert_eq!(s.tenant_recorders()[0].packets(), 0);
    }

    #[test]
    fn queue_wait_included_in_latency() {
        let mut s = mk_service();
        let mut rng = Rng::new(7);
        // Delivered at 10 µs but the DP context is only restored at
        // 60 µs (vCPU was on the core): software latency ≈ 51 µs.
        let t_deliver = SimTime::from_micros(10);
        s.enqueue(delivered(1, 10), t_deliver);
        let ready = SimTime::from_micros(60);
        s.process_burst(ready, &mut rng);
        let sw = s.recorder().software_latency().mean();
        assert!((sw - 51_000.0).abs() < 100.0, "software latency {sw}");
    }
}
