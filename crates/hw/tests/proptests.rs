//! Property-based tests for the hardware model.

use proptest::prelude::*;
use taichi_hw::{
    Accelerator, AcceleratorConfig, ApicFabric, CpuExecState, CpuId, HwWorkloadProbe,
    IoKind, IrqVector, Packet, PacketId, RxQueue,
};
use taichi_sim::{SimDuration, SimTime};

proptest! {
    /// The rx ring behaves exactly like a bounded VecDeque: FIFO order,
    /// drops only when full, conservation of packets.
    #[test]
    fn rx_queue_matches_model(
        cap in 1usize..64,
        ops in prop::collection::vec(prop_oneof![
            Just(None),                   // rx_burst
            (1u64..1000).prop_map(Some),  // push id
        ], 0..200),
        burst in 1usize..16,
    ) {
        let mut q = RxQueue::new(cap);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut pushed = 0u64;
        let mut dropped = 0u64;
        let mut popped = 0u64;
        for op in ops {
            match op {
                Some(id) => {
                    let p = Packet::new(
                        PacketId(id), IoKind::Network, 64, CpuId(0), 0, SimTime::ZERO,
                    );
                    if model.len() < cap {
                        model.push_back(id);
                        prop_assert!(q.push(p));
                        pushed += 1;
                    } else {
                        prop_assert!(!q.push(p));
                        dropped += 1;
                    }
                }
                None => {
                    let got: Vec<u64> = q.rx_burst(burst).iter().map(|p| p.id.0).collect();
                    let want: Vec<u64> = (0..burst.min(model.len()))
                        .map(|_| model.pop_front().expect("len checked"))
                        .collect();
                    prop_assert_eq!(&got, &want);
                    popped += got.len() as u64;
                }
            }
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert_eq!(q.total_enqueued(), pushed);
        prop_assert_eq!(q.total_dropped(), dropped);
        prop_assert_eq!(q.total_dequeued(), popped);
        prop_assert_eq!(pushed, popped + q.len() as u64);
    }

    /// Accelerator stage times are exact and per-channel issue order is
    /// monotone regardless of arrival pattern.
    #[test]
    fn accelerator_timing_invariants(
        arrivals in prop::collection::vec((0u64..1_000_000, 0u32..8, 64u32..9000), 1..100),
    ) {
        let cfg = AcceleratorConfig::default();
        let window = cfg.window();
        let mut acc = Accelerator::new(cfg);
        let mut probe = HwWorkloadProbe::new(12);
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut last_start = vec![SimTime::ZERO; 12];
        for (i, &(at_us, cpu, size)) in sorted.iter().enumerate() {
            let at = SimTime::from_micros(at_us);
            let mut p = Packet::new(
                PacketId(i as u64), IoKind::Network, size, CpuId(cpu), 0, at,
            );
            let out = acc.ingest(&mut p, at, &mut probe);
            // Stage arithmetic is exact.
            prop_assert_eq!(out.delivered_at - out.irq_at, window);
            prop_assert!(out.irq_at >= at, "cannot start before arrival");
            // Per-channel issue order is monotone.
            let ch = cpu as usize % 12;
            prop_assert!(out.irq_at >= last_start[ch]);
            last_start[ch] = out.irq_at;
            // Timestamps are stamped on the packet.
            prop_assert_eq!(p.delivered_at, Some(out.delivered_at));
        }
        prop_assert_eq!(acc.packets_ingested(), sorted.len() as u64);
    }

    /// The probe raises an IRQ iff enabled and the destination is in
    /// V-state, for any update/check interleaving.
    #[test]
    fn probe_is_a_pure_state_table(
        ops in prop::collection::vec((0u32..12, any::<bool>(), any::<bool>()), 0..200),
    ) {
        let mut probe = HwWorkloadProbe::new(12);
        let mut model = [CpuExecState::PState; 12];
        let mut enabled = true;
        for (cpu, set_vstate, toggle_enable) in ops {
            if toggle_enable {
                enabled = !enabled;
                probe.set_enabled(enabled);
            }
            let state = if set_vstate { CpuExecState::VState } else { CpuExecState::PState };
            probe.set_state(CpuId(cpu), state);
            model[cpu as usize] = state;
            let want = enabled && model[cpu as usize] == CpuExecState::VState;
            prop_assert_eq!(probe.check_on_packet(CpuId(cpu)), want);
        }
    }

    /// The APIC fabric never loses a masked interrupt: mask, deliver
    /// arbitrarily, unmask — everything pending is released once.
    #[test]
    fn apic_mask_conserves_interrupts(
        vectors in prop::collection::vec(0u8..255, 1..30),
    ) {
        let mut f = ApicFabric::new(4, SimDuration::from_nanos(300));
        f.mask(CpuId(1));
        let unique: std::collections::BTreeSet<u8> = vectors.iter().copied().collect();
        for &v in &vectors {
            prop_assert!(!f.deliver(CpuId(1), IrqVector(v)), "masked delivery");
        }
        let released = f.unmask(CpuId(1));
        prop_assert_eq!(released.len(), unique.len());
        for v in released {
            prop_assert!(unique.contains(&v.0));
            prop_assert!(f.ack(CpuId(1), v));
        }
        prop_assert!(f.pending(CpuId(1)).is_empty());
    }
}
