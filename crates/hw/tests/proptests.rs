//! Randomized property tests for the hardware model, driven by the
//! in-repo deterministic harness ([`taichi_sim::check`]).

use taichi_hw::{
    Accelerator, AcceleratorConfig, ApicFabric, CpuExecState, CpuId, HwWorkloadProbe, IoKind,
    IrqVector, Packet, PacketId, RxQueue,
};
use taichi_sim::check::run_cases;
use taichi_sim::{SimDuration, SimTime};

/// The rx ring behaves exactly like a bounded VecDeque: FIFO order,
/// drops only when full, conservation of packets.
#[test]
fn rx_queue_matches_model() {
    run_cases("rx_queue_matches_model", 128, |_, rng| {
        let cap = rng.gen_range(1, 64) as usize;
        let burst = rng.gen_range(1, 16) as usize;
        let nops = rng.next_below(200);
        let mut q = RxQueue::new(cap);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut pushed = 0u64;
        let mut dropped = 0u64;
        let mut popped = 0u64;
        for _ in 0..nops {
            if rng.chance(0.5) {
                let id = rng.gen_range(1, 1000);
                let p = Packet::new(
                    PacketId(id),
                    IoKind::Network,
                    64,
                    CpuId(0),
                    0,
                    SimTime::ZERO,
                );
                if model.len() < cap {
                    model.push_back(id);
                    assert!(q.push(p));
                    pushed += 1;
                } else {
                    assert!(!q.push(p));
                    dropped += 1;
                }
            } else {
                let got: Vec<u64> = q.rx_burst(burst).iter().map(|p| p.id.0).collect();
                let want: Vec<u64> = (0..burst.min(model.len()))
                    .map(|_| model.pop_front().expect("len checked"))
                    .collect();
                assert_eq!(&got, &want);
                popped += got.len() as u64;
            }
        }
        assert_eq!(q.len(), model.len());
        assert_eq!(q.total_enqueued(), pushed);
        assert_eq!(q.total_dropped(), dropped);
        assert_eq!(q.total_dequeued(), popped);
        assert_eq!(pushed, popped + q.len() as u64);
    });
}

/// Accelerator stage times are exact and per-channel issue order is
/// monotone regardless of arrival pattern.
#[test]
fn accelerator_timing_invariants() {
    run_cases("accelerator_timing_invariants", 128, |_, rng| {
        let n = rng.gen_range(1, 100);
        let mut arrivals: Vec<(u64, u32, u32)> = (0..n)
            .map(|_| {
                (
                    rng.next_below(1_000_000),
                    rng.next_below(8) as u32,
                    rng.gen_range(64, 9000) as u32,
                )
            })
            .collect();
        let cfg = AcceleratorConfig::default();
        let window = cfg.window();
        let mut acc = Accelerator::new(cfg);
        let mut probe = HwWorkloadProbe::new(12);
        arrivals.sort();
        let mut last_start = [SimTime::ZERO; 12];
        for (i, &(at_us, cpu, size)) in arrivals.iter().enumerate() {
            let at = SimTime::from_micros(at_us);
            let mut p = Packet::new(PacketId(i as u64), IoKind::Network, size, CpuId(cpu), 0, at);
            let out = acc.ingest(&mut p, at, &mut probe);
            // Stage arithmetic is exact.
            assert_eq!(out.delivered_at - out.irq_at, window);
            assert!(out.irq_at >= at, "cannot start before arrival");
            // Per-channel issue order is monotone.
            let ch = cpu as usize % 12;
            assert!(out.irq_at >= last_start[ch]);
            last_start[ch] = out.irq_at;
            // Timestamps are stamped on the packet.
            assert_eq!(p.delivered_at, Some(out.delivered_at));
        }
        assert_eq!(acc.packets_ingested(), arrivals.len() as u64);
    });
}

/// The probe raises an IRQ iff enabled and the destination is in
/// V-state, for any update/check interleaving.
#[test]
fn probe_is_a_pure_state_table() {
    run_cases("probe_is_a_pure_state_table", 128, |_, rng| {
        let mut probe = HwWorkloadProbe::new(12);
        let mut model = [CpuExecState::PState; 12];
        let mut enabled = true;
        let nops = rng.next_below(200);
        for _ in 0..nops {
            let cpu = rng.next_below(12) as u32;
            let set_vstate = rng.chance(0.5);
            let toggle_enable = rng.chance(0.5);
            if toggle_enable {
                enabled = !enabled;
                probe.set_enabled(enabled);
            }
            let state = if set_vstate {
                CpuExecState::VState
            } else {
                CpuExecState::PState
            };
            probe.set_state(CpuId(cpu), state);
            model[cpu as usize] = state;
            let want = enabled && model[cpu as usize] == CpuExecState::VState;
            assert_eq!(probe.check_on_packet(CpuId(cpu)), want);
        }
    });
}

/// The APIC fabric never loses a masked interrupt: mask, deliver
/// arbitrarily, unmask — everything pending is released once.
#[test]
fn apic_mask_conserves_interrupts() {
    run_cases("apic_mask_conserves_interrupts", 128, |_, rng| {
        let n = rng.gen_range(1, 30);
        let vectors: Vec<u8> = (0..n).map(|_| rng.next_below(255) as u8).collect();
        let mut f = ApicFabric::new(4, SimDuration::from_nanos(300));
        f.mask(CpuId(1));
        let unique: std::collections::BTreeSet<u8> = vectors.iter().copied().collect();
        for &v in &vectors {
            assert!(!f.deliver(CpuId(1), IrqVector(v)), "masked delivery");
        }
        let released = f.unmask(CpuId(1));
        assert_eq!(released.len(), unique.len());
        for v in released {
            assert!(unique.contains(&v.0));
            assert!(f.ack(CpuId(1), v));
        }
        assert!(f.pending(CpuId(1)).is_empty());
    });
}
