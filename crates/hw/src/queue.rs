//! Emulated-NIC receive queues (descriptor rings).
//!
//! The accelerator deposits preprocessed packets into a bounded ring in
//! memory shared with the data-plane service; the service drains it in
//! bursts (`rte_eth_rx_burst`-style). Overflow drops are counted — the
//! evaluation uses the drop counter to verify that no mode under test
//! sheds load instead of absorbing it.

use crate::packet::Packet;
use taichi_sim::{Counter, FaultInjector};

use std::collections::VecDeque;

/// A bounded receive descriptor ring.
#[derive(Clone, Debug)]
pub struct RxQueue {
    ring: VecDeque<Packet>,
    capacity: usize,
    enqueued: Counter,
    dequeued: Counter,
    dropped: Counter,
    rejected: Counter,
    high_watermark: usize,
    fault: Option<FaultInjector>,
}

impl RxQueue {
    /// Creates a ring with the given descriptor count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_eagerness(capacity, true)
    }

    /// Creates a ring with the given descriptor count, optionally
    /// deferring the backing-store reservation.
    ///
    /// The descriptor-count *bound* is `capacity` either way — `push`
    /// checks the logical length, so drop/reject accounting is
    /// identical. A lazy ring (`eager = false`) just lets the backing
    /// `VecDeque` grow to the occupancy the workload actually reaches,
    /// which is what fleet footprint profiles want: a mostly-idle
    /// machine's rings hold a handful of descriptors, not 1024.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_eagerness(capacity: usize, eager: bool) -> Self {
        assert!(capacity > 0, "rx ring needs at least one descriptor");
        RxQueue {
            ring: if eager {
                VecDeque::with_capacity(capacity)
            } else {
                VecDeque::new()
            },
            capacity,
            enqueued: Counter::new(),
            dequeued: Counter::new(),
            dropped: Counter::new(),
            rejected: Counter::new(),
            high_watermark: 0,
            fault: None,
        }
    }

    /// Attaches a fault injector (descriptor-reject backpressure).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = Some(fault);
    }

    /// Deposits a packet; returns `false` when the ring is full (counts
    /// an overflow drop) or the injected backpressure fault rejects the
    /// descriptor (counts a fault reject).
    ///
    /// The two loss causes are kept in separate counters: a fault
    /// reject is already attributed to the injector's `enic_rejects`
    /// stat, and folding it into the overflow counter double-charged it
    /// against the service-level drop metric the evaluation uses to
    /// check that no mode sheds load.
    #[inline]
    pub fn push(&mut self, packet: Packet) -> bool {
        if let Some(f) = &self.fault {
            if f.enic_reject(packet.dest_cpu.0) {
                self.rejected.inc();
                return false;
            }
        }
        if self.ring.len() >= self.capacity {
            self.dropped.inc();
            return false;
        }
        self.ring.push_back(packet);
        self.high_watermark = self.high_watermark.max(self.ring.len());
        self.enqueued.inc();
        true
    }

    /// Dequeues the packet at the head of the ring, if any.
    ///
    /// The allocation-free sibling of [`rx_burst`](Self::rx_burst):
    /// burst drains on the simulator's hot path pop packets one at a
    /// time instead of collecting them into a fresh `Vec`.
    #[inline]
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.ring.pop_front()?;
        self.dequeued.inc();
        Some(p)
    }

    /// Drains up to `burst` packets in FIFO order.
    pub fn rx_burst(&mut self, burst: usize) -> Vec<Packet> {
        let n = burst.min(self.ring.len());
        let out: Vec<Packet> = self.ring.drain(..n).collect();
        self.dequeued.add(out.len() as u64);
        out
    }

    /// Payload size of the packet at the head of the ring, if any —
    /// what a deficit-round-robin arbiter needs to decide whether the
    /// tenant's credit covers its next packet without popping it.
    #[inline]
    pub fn head_size(&self) -> Option<u32> {
        self.ring.front().map(|p| p.size_bytes)
    }

    /// Packets currently waiting.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no packets are waiting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total packets ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.get()
    }

    /// Total packets ever dequeued.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.get()
    }

    /// Packets dropped on overflow (genuine load shedding).
    pub fn total_dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Packets rejected by injected descriptor backpressure faults.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Every packet this ring refused, for conservation accounting:
    /// overflow drops plus fault rejects.
    pub fn total_lost(&self) -> u64 {
        self.dropped.get() + self.rejected.get()
    }

    /// Deepest occupancy ever observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Releases backing storage beyond the current occupancy. The
    /// logical capacity bound (and with it every future drop/reject
    /// decision) is untouched, so the call is observably inert — fleet
    /// drivers use it to shed a storm peak's retained ring memory.
    pub fn compact(&mut self) {
        self.ring.shrink_to_fit();
    }

    /// Resident bytes of the ring's backing storage.
    pub fn resident_bytes(&self) -> usize {
        self.ring.capacity() * std::mem::size_of::<Packet>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuId;
    use crate::packet::{IoKind, PacketId};
    use taichi_sim::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet::new(
            PacketId(id),
            IoKind::Network,
            64,
            CpuId(0),
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn fifo_order() {
        let mut q = RxQueue::new(8);
        for i in 0..5 {
            assert!(q.push(pkt(i)));
        }
        let burst = q.rx_burst(3);
        let ids: Vec<u64> = burst.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = RxQueue::new(2);
        assert!(q.push(pkt(0)));
        assert!(q.push(pkt(1)));
        assert!(!q.push(pkt(2)));
        assert_eq!(q.total_dropped(), 1);
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn burst_larger_than_queue_drains_all() {
        let mut q = RxQueue::new(8);
        q.push(pkt(0));
        q.push(pkt(1));
        let burst = q.rx_burst(32);
        assert_eq!(burst.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.total_dequeued(), 2);
    }

    #[test]
    fn empty_burst_is_empty() {
        let mut q = RxQueue::new(4);
        assert!(q.rx_burst(16).is_empty());
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut q = RxQueue::new(10);
        for i in 0..7 {
            q.push(pkt(i));
        }
        q.rx_burst(5);
        q.push(pkt(100));
        assert_eq!(q.high_watermark(), 7);
        assert_eq!(q.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one descriptor")]
    fn zero_capacity_panics() {
        RxQueue::new(0);
    }
}
