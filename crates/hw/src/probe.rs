//! The hardware workload probe (§4.3).
//!
//! In the real system this is a ~30-line change to the programmable I/O
//! accelerator: a per-CPU state register file (P-state = running the
//! data-plane service natively, V-state = a Tai Chi vCPU currently
//! occupies the core) plus a check executed at the *start* of packet
//! preprocessing. When the destination CPU of an incoming packet is in
//! V-state, the probe asynchronously raises an IRQ towards that CPU so
//! the vCPU scheduler can VM-exit the squatter and restore the DP
//! context *while* the accelerator is still busy with the 3.2 µs
//! preprocess+transfer window — hiding the 2 µs scheduling latency.
//!
//! The state table is written only by the vCPU scheduler (steps 5 and 4
//! of Fig. 7b); the accelerator only reads it. P-state doubles as an
//! interrupt mask: packets towards a P-state CPU never generate probe
//! IRQs, so a busy DP service is never disturbed.

use crate::cpu::CpuId;
use taichi_sim::Counter;

/// Execution state of one SmartNIC CPU as seen by the accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CpuExecState {
    /// Native data-plane context; probe IRQs are masked.
    #[default]
    PState,
    /// A vCPU context occupies the core; packet arrival raises an IRQ.
    VState,
}

/// The accelerator-resident CPU state table.
#[derive(Clone, Debug)]
pub struct HwWorkloadProbe {
    states: Vec<CpuExecState>,
    enabled: bool,
    checks: Counter,
    irqs_raised: Counter,
    suppressed: Counter,
}

impl HwWorkloadProbe {
    /// Creates a probe covering `num_cpus` physical CPUs, all in
    /// P-state, with the probe enabled.
    pub fn new(num_cpus: u32) -> Self {
        HwWorkloadProbe {
            states: vec![CpuExecState::PState; num_cpus as usize],
            enabled: true,
            checks: Counter::new(),
            irqs_raised: Counter::new(),
            suppressed: Counter::new(),
        }
    }

    /// Disables the probe (the "Tai Chi w/o HW probe" ablation of
    /// Table 5): checks always report "no IRQ".
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when the probe is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Updates the state register for `cpu` (vCPU scheduler write path).
    ///
    /// Out-of-range CPUs (vCPU IDs) are ignored: the accelerator only
    /// tracks physical cores.
    pub fn set_state(&mut self, cpu: CpuId, state: CpuExecState) {
        if let Some(slot) = self.states.get_mut(cpu.index()) {
            *slot = state;
        }
    }

    /// Reads the state register for `cpu` (defaults to P-state for
    /// out-of-range IDs).
    pub fn state(&self, cpu: CpuId) -> CpuExecState {
        self.states
            .get(cpu.index())
            .copied()
            .unwrap_or(CpuExecState::PState)
    }

    /// The check executed at the start of packet preprocessing.
    ///
    /// Returns `true` when an IRQ must be raised towards `dest_cpu`
    /// (i.e. the CPU is in V-state and the probe is enabled).
    pub fn check_on_packet(&mut self, dest_cpu: CpuId) -> bool {
        self.checks.inc();
        if !self.enabled {
            self.suppressed.inc();
            return false;
        }
        match self.state(dest_cpu) {
            CpuExecState::VState => {
                self.irqs_raised.inc();
                true
            }
            CpuExecState::PState => {
                self.suppressed.inc();
                false
            }
        }
    }

    /// Total packet-arrival checks performed.
    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    /// Total probe IRQs raised.
    pub fn irqs_raised(&self) -> u64 {
        self.irqs_raised.get()
    }

    /// Checks that did not raise an IRQ (P-state or probe disabled).
    pub fn suppressed(&self) -> u64 {
        self.suppressed.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_pstate_and_masks_irqs() {
        let mut p = HwWorkloadProbe::new(12);
        for i in 0..12 {
            assert_eq!(p.state(CpuId(i)), CpuExecState::PState);
            assert!(!p.check_on_packet(CpuId(i)));
        }
        assert_eq!(p.irqs_raised(), 0);
        assert_eq!(p.suppressed(), 12);
    }

    #[test]
    fn vstate_raises_irq() {
        let mut p = HwWorkloadProbe::new(12);
        p.set_state(CpuId(3), CpuExecState::VState);
        assert!(p.check_on_packet(CpuId(3)));
        assert!(!p.check_on_packet(CpuId(4)));
        assert_eq!(p.irqs_raised(), 1);
        assert_eq!(p.checks(), 2);
    }

    #[test]
    fn state_transition_masks_again() {
        let mut p = HwWorkloadProbe::new(4);
        p.set_state(CpuId(1), CpuExecState::VState);
        assert!(p.check_on_packet(CpuId(1)));
        // Scheduler restored the DP context and flipped to P-state.
        p.set_state(CpuId(1), CpuExecState::PState);
        assert!(!p.check_on_packet(CpuId(1)));
    }

    #[test]
    fn disabled_probe_never_fires() {
        let mut p = HwWorkloadProbe::new(4);
        p.set_state(CpuId(0), CpuExecState::VState);
        p.set_enabled(false);
        assert!(!p.is_enabled());
        assert!(!p.check_on_packet(CpuId(0)));
        assert_eq!(p.irqs_raised(), 0);
    }

    #[test]
    fn out_of_range_cpu_is_pstate() {
        let mut p = HwWorkloadProbe::new(4);
        p.set_state(CpuId(99), CpuExecState::VState); // ignored
        assert_eq!(p.state(CpuId(99)), CpuExecState::PState);
        assert!(!p.check_on_packet(CpuId(99)));
    }
}
