//! CPU identifiers and the SmartNIC SoC topology.

use std::fmt;

/// Identifies a CPU visible to the SmartNIC OS.
///
/// Physical CPUs occupy the low IDs; Tai Chi registers its vCPUs after
/// them (they look like additional physical cores to the OS, per §4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u32);

impl CpuId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Static role assigned to a physical CPU by the production partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuRole {
    /// Reserved for data-plane poll-mode services.
    DataPlane,
    /// Reserved for control-plane tasks.
    ControlPlane,
}

/// Description of the SmartNIC SoC.
///
/// Defaults follow the paper's evaluation platform (Table 4): 12 CPUs
/// split 8 data-plane / 4 control-plane, PCIe Gen3 x8, 200 Gb/s.
#[derive(Clone, Debug)]
pub struct SmartNicSpec {
    /// Number of physical CPUs on the SoC.
    pub num_cpus: u32,
    /// Number of those CPUs statically reserved for the data plane.
    pub dp_cpus: u32,
    /// Nominal CPU frequency in GHz (used only for cost-model scaling).
    pub cpu_ghz: f64,
    /// Physical network bandwidth in Gb/s.
    pub network_gbps: f64,
    /// PCIe lanes to the host.
    pub pcie_lanes: u32,
}

impl Default for SmartNicSpec {
    fn default() -> Self {
        SmartNicSpec {
            num_cpus: 12,
            dp_cpus: 8,
            cpu_ghz: 2.0,
            network_gbps: 200.0,
            pcie_lanes: 8,
        }
    }
}

impl SmartNicSpec {
    /// Creates a spec with an explicit DP/CP split.
    ///
    /// # Panics
    ///
    /// Panics when `dp_cpus > num_cpus` or either count is zero.
    pub fn with_split(num_cpus: u32, dp_cpus: u32) -> Self {
        assert!(num_cpus > 0, "SmartNIC needs at least one CPU");
        assert!(
            dp_cpus > 0 && dp_cpus < num_cpus,
            "need at least one DP and one CP CPU (got {dp_cpus}/{num_cpus})"
        );
        SmartNicSpec {
            num_cpus,
            dp_cpus,
            ..SmartNicSpec::default()
        }
    }

    /// Number of CPUs reserved for the control plane.
    pub fn cp_cpus(&self) -> u32 {
        self.num_cpus - self.dp_cpus
    }

    /// IDs of the data-plane CPUs (the low range, matching production
    /// practice of packing DP cores first).
    pub fn dp_cpu_ids(&self) -> Vec<CpuId> {
        (0..self.dp_cpus).map(CpuId).collect()
    }

    /// IDs of the control-plane CPUs.
    pub fn cp_cpu_ids(&self) -> Vec<CpuId> {
        (self.dp_cpus..self.num_cpus).map(CpuId).collect()
    }

    /// IDs of every physical CPU.
    pub fn all_cpu_ids(&self) -> Vec<CpuId> {
        (0..self.num_cpus).map(CpuId).collect()
    }

    /// Role of a given physical CPU.
    ///
    /// Returns `None` for IDs beyond the physical range (e.g. vCPU IDs).
    pub fn role_of(&self, cpu: CpuId) -> Option<CpuRole> {
        if cpu.0 < self.dp_cpus {
            Some(CpuRole::DataPlane)
        } else if cpu.0 < self.num_cpus {
            Some(CpuRole::ControlPlane)
        } else {
            None
        }
    }

    /// The first CPU ID available for registering vCPUs.
    pub fn first_vcpu_id(&self) -> CpuId {
        CpuId(self.num_cpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let s = SmartNicSpec::default();
        assert_eq!(s.num_cpus, 12);
        assert_eq!(s.dp_cpus, 8);
        assert_eq!(s.cp_cpus(), 4);
        assert_eq!(s.pcie_lanes, 8);
        assert_eq!(s.network_gbps, 200.0);
    }

    #[test]
    fn id_partitioning() {
        let s = SmartNicSpec::default();
        assert_eq!(s.dp_cpu_ids(), (0..8).map(CpuId).collect::<Vec<_>>());
        assert_eq!(s.cp_cpu_ids(), (8..12).map(CpuId).collect::<Vec<_>>());
        assert_eq!(s.all_cpu_ids().len(), 12);
        assert_eq!(s.first_vcpu_id(), CpuId(12));
    }

    #[test]
    fn roles() {
        let s = SmartNicSpec::default();
        assert_eq!(s.role_of(CpuId(0)), Some(CpuRole::DataPlane));
        assert_eq!(s.role_of(CpuId(7)), Some(CpuRole::DataPlane));
        assert_eq!(s.role_of(CpuId(8)), Some(CpuRole::ControlPlane));
        assert_eq!(s.role_of(CpuId(11)), Some(CpuRole::ControlPlane));
        assert_eq!(s.role_of(CpuId(12)), None);
    }

    #[test]
    fn custom_split() {
        let s = SmartNicSpec::with_split(16, 10);
        assert_eq!(s.cp_cpus(), 6);
        assert_eq!(s.role_of(CpuId(9)), Some(CpuRole::DataPlane));
        assert_eq!(s.role_of(CpuId(10)), Some(CpuRole::ControlPlane));
    }

    #[test]
    #[should_panic(expected = "at least one DP and one CP")]
    fn split_requires_both_planes() {
        SmartNicSpec::with_split(8, 8);
    }

    #[test]
    fn cpu_id_display() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(format!("{:?}", CpuId(3)), "cpu3");
        assert_eq!(CpuId(5).index(), 5);
    }
}
