//! The interrupt fabric: IPIs and IRQ lines.
//!
//! Models a local-APIC-like interrupt controller shared by all SmartNIC
//! CPUs: inter-processor interrupts carry `(source, destination,
//! vector)` and are delivered after a fixed fabric latency; each CPU has
//! a pending-vector set and a global mask bit (interrupts disabled while
//! in a non-preemptible kernel section).
//!
//! Tai Chi's unified IPI orchestrator (in `taichi-core`) hooks the send
//! path *above* this fabric — this module is plain hardware.

use crate::cpu::CpuId;
use taichi_sim::{Counter, FaultInjector, IpiFate, SimDuration, SimTime};

use std::collections::BTreeSet;

/// Interrupt vector number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IrqVector(pub u8);

impl IrqVector {
    /// Linux reschedule IPI vector.
    pub const RESCHEDULE: IrqVector = IrqVector(0xFD);
    /// Generic function-call IPI vector.
    pub const CALL_FUNCTION: IrqVector = IrqVector(0xFB);
    /// The dedicated Tai Chi vCPU-scheduling softirq kick.
    pub const TAICHI_KICK: IrqVector = IrqVector(0xF0);
    /// The hardware workload probe's preempt IRQ.
    pub const HW_PROBE: IrqVector = IrqVector(0xF1);
    /// CPU-hotplug INIT (vCPU registration boot sequence).
    pub const INIT: IrqVector = IrqVector(0x00);
    /// CPU-hotplug startup (SIPI).
    pub const SIPI: IrqVector = IrqVector(0x01);
}

/// One inter-processor interrupt message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpiMessage {
    /// Sending CPU.
    pub src: CpuId,
    /// Destination CPU.
    pub dst: CpuId,
    /// Interrupt vector.
    pub vector: IrqVector,
}

/// Per-CPU interrupt state.
#[derive(Clone, Debug, Default)]
struct LocalApic {
    pending: BTreeSet<u8>,
    masked: bool,
}

/// The interrupt fabric for all CPUs (physical and registered virtual).
#[derive(Clone, Debug)]
pub struct ApicFabric {
    lapics: Vec<LocalApic>,
    latency: SimDuration,
    sent: Counter,
    delivered: Counter,
    fault: Option<FaultInjector>,
}

impl ApicFabric {
    /// Creates a fabric covering `num_cpus` CPUs with the given
    /// delivery latency (typical x2APIC IPI: several hundred ns).
    pub fn new(num_cpus: u32, latency: SimDuration) -> Self {
        ApicFabric {
            lapics: vec![LocalApic::default(); num_cpus as usize],
            latency,
            sent: Counter::new(),
            delivered: Counter::new(),
            fault: None,
        }
    }

    /// Attaches a fault injector (fabric-level IRQ delay/drop).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = Some(fault);
    }

    /// Grows the fabric to cover newly registered (virtual) CPUs.
    pub fn ensure_cpus(&mut self, num_cpus: u32) {
        if num_cpus as usize > self.lapics.len() {
            self.lapics.resize(num_cpus as usize, LocalApic::default());
        }
    }

    /// Number of CPUs with local APIC state.
    pub fn num_cpus(&self) -> u32 {
        self.lapics.len() as u32
    }

    /// Fabric delivery latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Fault-aware delivery latency for a device IRQ headed to `cpu`:
    /// `None` when the message is lost in the fabric, otherwise the
    /// base latency plus any injected congestion delay. Without an
    /// injector this is always `Some(latency())`, so the happy path is
    /// byte-identical to the pre-fault fabric.
    pub fn irq_latency(&self, cpu: CpuId) -> Option<SimDuration> {
        let Some(f) = &self.fault else {
            return Some(self.latency);
        };
        match f.ipi_fate(cpu.0) {
            IpiFate::Drop => None,
            IpiFate::Delay(d) => Some(self.latency + d),
            IpiFate::Deliver => Some(self.latency),
        }
    }

    /// Initiates an IPI send at `now`; returns the delivery time.
    ///
    /// The caller (the OS IPI dispatch, or Tai Chi's orchestrator) is
    /// responsible for acting at the returned time via its event queue.
    pub fn send(&mut self, _msg: IpiMessage, now: SimTime) -> SimTime {
        self.sent.inc();
        now + self.latency
    }

    /// Marks a vector pending on `cpu` (called at delivery time).
    ///
    /// Returns `true` when the interrupt is immediately serviceable
    /// (the CPU is not masked); `false` when it stays pending behind a
    /// mask.
    pub fn deliver(&mut self, cpu: CpuId, vector: IrqVector) -> bool {
        let lapic = match self.lapics.get_mut(cpu.index()) {
            Some(l) => l,
            // Nothing was delivered: an out-of-range destination must
            // not inflate `total_delivered`.
            None => return false,
        };
        self.delivered.inc();
        lapic.pending.insert(vector.0);
        !lapic.masked
    }

    /// Disables interrupt servicing on `cpu` (IRQ-off section).
    pub fn mask(&mut self, cpu: CpuId) {
        if let Some(l) = self.lapics.get_mut(cpu.index()) {
            l.masked = true;
        }
    }

    /// Re-enables interrupt servicing on `cpu`; returns the vectors that
    /// were pending (now serviceable), lowest vector first.
    pub fn unmask(&mut self, cpu: CpuId) -> Vec<IrqVector> {
        match self.lapics.get_mut(cpu.index()) {
            Some(l) => {
                l.masked = false;
                l.pending.iter().map(|&v| IrqVector(v)).collect()
            }
            None => Vec::new(),
        }
    }

    /// True when `cpu` is masked.
    pub fn is_masked(&self, cpu: CpuId) -> bool {
        self.lapics
            .get(cpu.index())
            .map(|l| l.masked)
            .unwrap_or(false)
    }

    /// Acknowledges (clears) a pending vector on `cpu`; returns whether
    /// it was pending.
    pub fn ack(&mut self, cpu: CpuId, vector: IrqVector) -> bool {
        self.lapics
            .get_mut(cpu.index())
            .map(|l| l.pending.remove(&vector.0))
            .unwrap_or(false)
    }

    /// Pending vectors on `cpu`, lowest first.
    pub fn pending(&self, cpu: CpuId) -> Vec<IrqVector> {
        self.lapics
            .get(cpu.index())
            .map(|l| l.pending.iter().map(|&v| IrqVector(v)).collect())
            .unwrap_or_default()
    }

    /// Total IPIs initiated.
    pub fn total_sent(&self) -> u64 {
        self.sent.get()
    }

    /// Total interrupts delivered to a local APIC.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> ApicFabric {
        ApicFabric::new(12, SimDuration::from_nanos(300))
    }

    #[test]
    fn send_returns_delivery_time() {
        let mut f = fabric();
        let msg = IpiMessage {
            src: CpuId(0),
            dst: CpuId(3),
            vector: IrqVector::RESCHEDULE,
        };
        let at = f.send(msg, SimTime::from_micros(1));
        assert_eq!(at.as_nanos(), 1_000 + 300);
        assert_eq!(f.total_sent(), 1);
    }

    #[test]
    fn deliver_and_ack() {
        let mut f = fabric();
        assert!(f.deliver(CpuId(2), IrqVector::TAICHI_KICK));
        assert_eq!(f.pending(CpuId(2)), vec![IrqVector::TAICHI_KICK]);
        assert!(f.ack(CpuId(2), IrqVector::TAICHI_KICK));
        assert!(!f.ack(CpuId(2), IrqVector::TAICHI_KICK));
        assert!(f.pending(CpuId(2)).is_empty());
    }

    #[test]
    fn masked_delivery_stays_pending() {
        let mut f = fabric();
        f.mask(CpuId(1));
        assert!(f.is_masked(CpuId(1)));
        assert!(!f.deliver(CpuId(1), IrqVector::HW_PROBE));
        let released = f.unmask(CpuId(1));
        assert_eq!(released, vec![IrqVector::HW_PROBE]);
        assert!(!f.is_masked(CpuId(1)));
    }

    #[test]
    fn unmask_orders_by_vector() {
        let mut f = fabric();
        f.mask(CpuId(0));
        f.deliver(CpuId(0), IrqVector::RESCHEDULE);
        f.deliver(CpuId(0), IrqVector::TAICHI_KICK);
        let released = f.unmask(CpuId(0));
        assert_eq!(
            released,
            vec![IrqVector::TAICHI_KICK, IrqVector::RESCHEDULE]
        );
    }

    #[test]
    fn ensure_cpus_grows_for_vcpus() {
        let mut f = fabric();
        assert_eq!(f.num_cpus(), 12);
        f.ensure_cpus(20);
        assert_eq!(f.num_cpus(), 20);
        assert!(f.deliver(CpuId(19), IrqVector::INIT));
        // Shrinking is a no-op.
        f.ensure_cpus(5);
        assert_eq!(f.num_cpus(), 20);
    }

    #[test]
    fn out_of_range_cpu_is_harmless() {
        let mut f = fabric();
        assert!(!f.deliver(CpuId(99), IrqVector::SIPI));
        assert_eq!(f.total_delivered(), 0, "nothing reached a local APIC");
        assert!(f.pending(CpuId(99)).is_empty());
        assert!(!f.is_masked(CpuId(99)));
        assert!(f.unmask(CpuId(99)).is_empty());
    }

    #[test]
    fn duplicate_vector_collapses() {
        let mut f = fabric();
        f.deliver(CpuId(0), IrqVector::HW_PROBE);
        f.deliver(CpuId(0), IrqVector::HW_PROBE);
        assert_eq!(f.pending(CpuId(0)).len(), 1);
        assert_eq!(f.total_delivered(), 2);
    }
}
