//! I/O packet descriptors flowing through the SmartNIC.
//!
//! A [`Packet`] models one data-plane work item — a network frame or a
//! storage request — as it moves along the Fig. 1c blue path: submitted
//! by the host's device driver, preprocessed by the accelerator,
//! transferred into the memory shared with the data-plane service, then
//! software-processed by the poll-mode service. Per-stage timestamps are
//! recorded so the Fig. 6 breakdown and the end-to-end latency figures
//! can be reproduced directly from packet records.

use crate::cpu::CpuId;
use taichi_sim::{SimDuration, SimTime};

/// Unique packet/request identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Which tenant a data-plane work item belongs to.
///
/// The single-operator configuration of the paper is tenant 0; the
/// multi-tenant extension (DESIGN.md §3.11) tags every packet so the
/// eNIC can keep per-tenant rx rings and the accelerator can arbitrate
/// ingest bandwidth with deficit round robin. Tagging is free: the id
/// is stamped by the traffic generator, never drawn from an RNG.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit tenant of every pre-multi-tenant workload.
    pub const HOST: TenantId = TenantId(0);

    /// Index into per-tenant tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which data-plane subsystem a work item belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Network frame (DPDK-like service).
    Network,
    /// Storage request (SPDK-like service).
    Storage,
}

/// One in-flight I/O work item with per-stage timestamps.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique ID, assigned at submission.
    pub id: PacketId,
    /// Network or storage.
    pub kind: IoKind,
    /// Payload size in bytes (affects accelerator/PCIe occupancy).
    pub size_bytes: u32,
    /// Data-plane CPU that owns the destination queue.
    pub dest_cpu: CpuId,
    /// Destination rx queue index on that CPU's service.
    pub dest_queue: u32,
    /// Owning tenant (0 = the implicit single-operator tenant).
    pub tenant: TenantId,
    /// When the host driver submitted the request (stage ①).
    pub submitted_at: SimTime,
    /// When accelerator preprocessing finished (stage ②).
    pub preprocessed_at: Option<SimTime>,
    /// When the packet landed in shared memory (stage ③).
    pub delivered_at: Option<SimTime>,
    /// When the DP service finished software processing (stage ④).
    pub completed_at: Option<SimTime>,
}

impl Packet {
    /// Creates a freshly submitted packet.
    pub fn new(
        id: PacketId,
        kind: IoKind,
        size_bytes: u32,
        dest_cpu: CpuId,
        dest_queue: u32,
        submitted_at: SimTime,
    ) -> Self {
        Packet {
            id,
            kind,
            size_bytes,
            dest_cpu,
            dest_queue,
            tenant: TenantId::HOST,
            submitted_at,
            preprocessed_at: None,
            delivered_at: None,
            completed_at: None,
        }
    }

    /// Tags the packet with its owning tenant (builder style).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// End-to-end latency (submission → completion), if completed.
    pub fn total_latency(&self) -> Option<SimDuration> {
        self.completed_at.map(|c| c - self.submitted_at)
    }

    /// Hardware time (submission → shared-memory delivery), if delivered.
    pub fn hardware_latency(&self) -> Option<SimDuration> {
        self.delivered_at.map(|d| d - self.submitted_at)
    }

    /// Software time (delivery → completion), if completed.
    ///
    /// This includes any wait for the DP CPU to become available — the
    /// quantity Tai Chi's hardware probe exists to keep flat.
    pub fn software_latency(&self) -> Option<SimDuration> {
        match (self.delivered_at, self.completed_at) {
            (Some(d), Some(c)) => Some(c - d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::new(
            PacketId(1),
            IoKind::Network,
            1500,
            CpuId(2),
            0,
            SimTime::from_micros(10),
        )
    }

    #[test]
    fn latencies_none_until_stages_complete() {
        let p = pkt();
        assert!(p.total_latency().is_none());
        assert!(p.hardware_latency().is_none());
        assert!(p.software_latency().is_none());
    }

    #[test]
    fn latency_accounting() {
        let mut p = pkt();
        p.preprocessed_at = Some(SimTime::from_nanos(12_700));
        p.delivered_at = Some(SimTime::from_nanos(13_200));
        p.completed_at = Some(SimTime::from_nanos(15_200));
        assert_eq!(
            p.hardware_latency().unwrap(),
            SimDuration::from_nanos(3_200)
        );
        assert_eq!(
            p.software_latency().unwrap(),
            SimDuration::from_nanos(2_000)
        );
        assert_eq!(p.total_latency().unwrap(), SimDuration::from_nanos(5_200));
    }

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(IoKind::Network, IoKind::Storage);
    }

    #[test]
    fn tenant_defaults_to_host_and_tags_via_builder() {
        let p = pkt();
        assert_eq!(p.tenant, TenantId::HOST);
        let p = p.with_tenant(TenantId(3));
        assert_eq!(p.tenant.index(), 3);
    }
}
