//! The programmable I/O accelerator pipeline.
//!
//! Models the Fig. 6 data path: the device driver submits an I/O request
//! (①); the accelerator preprocesses it for 2.7 µs (②) — moving the
//! payload into an internal buffer and processing headers — then
//! transfers the result into the memory shared with the data-plane
//! service in 0.5 µs (③). Stages ② and ③ form the 3.2 µs window that
//! Tai Chi's hardware workload probe uses to hide the 2 µs vCPU switch.
//!
//! The pipeline is modelled per hardware channel: packets on one channel
//! serialize at the channel's issue rate (line-rate bound), while their
//! preprocessing latencies overlap — matching a deeply pipelined ASIC.

use crate::cpu::CpuId;
use crate::packet::Packet;
use crate::probe::HwWorkloadProbe;
use crate::queue::RxQueue;
use taichi_sim::{Counter, FaultInjector, SimDuration, SimTime, TraceKind, Tracer};

/// Timing configuration for the accelerator.
#[derive(Clone, Debug)]
pub struct AcceleratorConfig {
    /// Latency of stage ② (header/payload preprocessing). Paper: 2.7 µs.
    pub preprocess: SimDuration,
    /// Latency of stage ③ (transfer to shared memory). Paper: 0.5 µs.
    pub transfer: SimDuration,
    /// Minimum gap between packet issues on one channel (pipeline
    /// initiation interval). 40 ns ≈ 300 Mpps aggregate on 12 channels,
    /// far above anything the evaluation drives.
    pub issue_gap: SimDuration,
    /// Additional serialization per payload byte (line-rate bound);
    /// 0.04 ns/B ≈ 200 Gb/s.
    pub ns_per_byte: f64,
    /// Number of independent hardware channels (typically one per DP
    /// CPU's queue group).
    pub channels: u32,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            preprocess: SimDuration::from_nanos(2_700),
            transfer: SimDuration::from_nanos(500),
            issue_gap: SimDuration::from_nanos(40),
            ns_per_byte: 0.04,
            channels: 12,
        }
    }
}

impl AcceleratorConfig {
    /// The full preprocessing window (② + ③) the probe can hide
    /// scheduling latency inside.
    pub fn window(&self) -> SimDuration {
        self.preprocess + self.transfer
    }
}

/// Result of ingesting one packet into the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineOutput {
    /// Whether the hardware probe raised an IRQ towards the destination
    /// CPU (it was in V-state) — raised at `irq_at`, i.e. the *start* of
    /// preprocessing, before the packet is visible to software.
    pub probe_irq: Option<CpuId>,
    /// When the probe IRQ fires (= preprocessing start).
    pub irq_at: SimTime,
    /// When stage ② completes.
    pub preprocess_done: SimTime,
    /// When stage ③ completes and the packet is visible to the DP
    /// service's poll loop.
    pub delivered_at: SimTime,
}

/// Per-tenant eNIC ingress: bounded rx rings in front of the shared
/// accelerator ingest port, drained in deficit-round-robin order
/// (DESIGN.md §3.11).
///
/// The arbiter models the one resource N tenants genuinely share
/// *before* the per-channel pipelines: the eNIC→accelerator link.
/// Each issued packet occupies the port for its wire time
/// (`max(size × ns_per_byte, issue_gap)` — 200 Gb/s line rate), so a
/// tenant bursting to line rate backlogs every ring, and the DRR
/// credits decide whose head-of-line packet enters the pipeline next.
///
/// Classic DRR (Shreedhar & Varghese): when the round-robin cursor
/// *arrives* at a backlogged ring, the tenant's deficit grows by
/// `quantum × weight` bytes; the ring is then served while the deficit
/// covers its head-of-line packet. A ring that empties forfeits its
/// remaining credit — idle tenants cannot bank bandwidth, which is
/// what makes the discipline work-conserving.
#[derive(Clone, Debug)]
struct DrrArbiter {
    rings: Vec<RxQueue>,
    weights: Vec<u64>,
    deficit: Vec<u64>,
    /// Bytes of credit granted per weight unit per round visit.
    quantum: u64,
    cursor: usize,
    /// True when the cursor has just moved to `rings[cursor]` and the
    /// round-visit credit has not been granted yet.
    fresh_visit: bool,
    /// When the shared ingest port frees up.
    port_free: SimTime,
    issued_pkts: Vec<u64>,
    issued_bytes: Vec<u64>,
}

impl DrrArbiter {
    fn new(weights: &[u64], quantum: u64, ring_capacity: usize, eager: bool) -> Self {
        assert!(!weights.is_empty(), "arbiter needs at least one tenant");
        assert!(
            weights.iter().all(|&w| w > 0),
            "tenant weights must be positive"
        );
        assert!(quantum > 0, "DRR quantum must be positive");
        let n = weights.len();
        DrrArbiter {
            rings: (0..n)
                .map(|_| RxQueue::with_eagerness(ring_capacity, eager))
                .collect(),
            weights: weights.to_vec(),
            deficit: vec![0; n],
            quantum,
            cursor: 0,
            fresh_visit: true,
            port_free: SimTime::ZERO,
            issued_pkts: vec![0; n],
            issued_bytes: vec![0; n],
        }
    }

    #[inline]
    fn backlog(&self) -> usize {
        self.rings.iter().map(|q| q.len()).sum()
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.rings.len();
        self.fresh_visit = true;
    }

    /// Pops the next packet in DRR order. Terminates because every full
    /// cycle grants at least `quantum` bytes to each backlogged ring.
    fn pop_next(&mut self) -> Option<Packet> {
        if self.backlog() == 0 {
            return None;
        }
        loop {
            let i = self.cursor;
            if self.rings[i].is_empty() {
                self.deficit[i] = 0;
                self.advance();
                continue;
            }
            if self.fresh_visit {
                self.deficit[i] = self.deficit[i].saturating_add(self.quantum * self.weights[i]);
                self.fresh_visit = false;
            }
            let head = u64::from(self.rings[i].head_size().expect("ring is non-empty"));
            if self.deficit[i] >= head {
                self.deficit[i] -= head;
                let p = self.rings[i].pop().expect("ring is non-empty");
                self.issued_pkts[i] += 1;
                self.issued_bytes[i] += head;
                if self.rings[i].is_empty() {
                    // Forfeit leftover credit: no banking while idle.
                    self.deficit[i] = 0;
                    self.advance();
                }
                return Some(p);
            }
            self.advance();
        }
    }
}

/// The accelerator pipeline state.
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: AcceleratorConfig,
    /// Per-channel earliest next issue time.
    channel_free: Vec<SimTime>,
    ingested: Counter,
    bytes: Counter,
    tracer: Option<Tracer>,
    fault: Option<FaultInjector>,
    /// Multi-tenant ingress arbiter; `None` in the single-tenant
    /// configuration, where packets enter the pipeline directly and the
    /// engine is byte-identical to the pre-tenant code path.
    arbiter: Option<DrrArbiter>,
}

impl Accelerator {
    /// Creates an idle accelerator.
    ///
    /// Panics on a nonsensical timing config: a NaN or negative
    /// `ns_per_byte` would silently serialize every payload in zero
    /// time (`f64 as u64` saturates), and zero channels has no issue
    /// slot to serialize on.
    pub fn new(config: AcceleratorConfig) -> Self {
        assert!(
            config.ns_per_byte.is_finite() && config.ns_per_byte >= 0.0,
            "accelerator ns_per_byte must be finite and non-negative, got {}",
            config.ns_per_byte
        );
        assert!(
            config.channels > 0,
            "accelerator needs at least one hardware channel"
        );
        let channels = config.channels as usize;
        Accelerator {
            config,
            channel_free: vec![SimTime::ZERO; channels],
            ingested: Counter::new(),
            bytes: Counter::new(),
            tracer: None,
            fault: None,
            arbiter: None,
        }
    }

    /// Attaches a scheduler tracer (stage ② start and V-state checks
    /// are recorded).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attaches a fault injector (pipeline-stall faults).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = Some(fault);
    }

    /// Returns the configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Ingests `packet` at `now`, consulting (and counting on) the
    /// hardware probe before preprocessing begins.
    ///
    /// Stamps `preprocessed_at`/`delivered_at` on the packet and returns
    /// the stage times plus any probe IRQ. The channel is chosen by the
    /// packet's destination CPU so one DP CPU's traffic is serialized.
    pub fn ingest(
        &mut self,
        packet: &mut Packet,
        now: SimTime,
        probe: &mut HwWorkloadProbe,
    ) -> PipelineOutput {
        let ch = packet.dest_cpu.index() % self.channel_free.len();
        let mut start = now.max(self.channel_free[ch]);
        if let Some(f) = &self.fault {
            // A pipeline stall delays this packet's entry, which also
            // pushes back the channel's next issue slot: stalls
            // propagate as backpressure, exactly like a real ASIC
            // hiccup.
            if let Some(stall) = f.accel_stall(packet.dest_cpu.0) {
                start += stall;
            }
        }

        // Probe check happens before stage ② begins (Fig. 10).
        let probe_irq = if probe.check_on_packet(packet.dest_cpu) {
            Some(packet.dest_cpu)
        } else {
            None
        };

        let serialize = SimDuration::from_nanos(
            (packet.size_bytes as f64 * self.config.ns_per_byte).round() as u64,
        )
        .max(self.config.issue_gap);
        self.channel_free[ch] = start + serialize;

        let preprocess_done = start + self.config.preprocess;
        let delivered_at = preprocess_done + self.config.transfer;
        packet.preprocessed_at = Some(preprocess_done);
        packet.delivered_at = Some(delivered_at);

        self.ingested.inc();
        self.bytes.add(packet.size_bytes as u64);

        if let Some(t) = &self.tracer {
            let cpu = packet.dest_cpu.0;
            let pkt = packet.id.0;
            t.emit_at(start, cpu, TraceKind::AccelPreprocess { pkt });
            t.emit_at(
                start,
                cpu,
                TraceKind::AccelVCheck {
                    pkt,
                    vstate: probe_irq.is_some(),
                },
            );
        }

        PipelineOutput {
            probe_irq,
            irq_at: start,
            preprocess_done,
            delivered_at,
        }
    }

    /// Switches the ingress to multi-tenant mode: one bounded eNIC rx
    /// ring per tenant, drained by a weighted deficit-round-robin
    /// arbiter in front of the shared ingest port.
    ///
    /// `weights[i]` scales tenant *i*'s per-round byte credit;
    /// `quantum` is the base credit in bytes (one MTU is the classic
    /// choice); `ring_capacity` bounds each tenant's staging ring
    /// (overflow packets are dropped and counted against that tenant).
    pub fn enable_tenants(&mut self, weights: &[u64], quantum: u64, ring_capacity: usize) {
        self.enable_tenants_with_eagerness(weights, quantum, ring_capacity, true);
    }

    /// [`Accelerator::enable_tenants`] with control over whether each
    /// staging ring reserves its full capacity up front (`eager =
    /// true`, the default) or grows its backing store on demand (fleet
    /// footprint profiles). The per-tenant drop bound is identical
    /// either way.
    pub fn enable_tenants_with_eagerness(
        &mut self,
        weights: &[u64],
        quantum: u64,
        ring_capacity: usize,
        eager: bool,
    ) {
        self.arbiter = Some(DrrArbiter::new(weights, quantum, ring_capacity, eager));
    }

    /// True when the multi-tenant ingress arbiter is active.
    pub fn multi_tenant(&self) -> bool {
        self.arbiter.is_some()
    }

    /// Number of tenants the arbiter was configured with (1 when the
    /// arbiter is disabled).
    pub fn tenant_count(&self) -> usize {
        self.arbiter.as_ref().map_or(1, |a| a.rings.len())
    }

    /// Stages a packet on its tenant's rx ring; returns `false` (and
    /// counts a per-tenant drop) when the ring is full. Only valid in
    /// multi-tenant mode.
    pub fn stage(&mut self, packet: Packet) -> bool {
        let a = self
            .arbiter
            .as_mut()
            .expect("stage() needs enable_tenants()");
        let i = packet.tenant.index() % a.rings.len();
        a.rings[i].push(packet)
    }

    /// Packets currently waiting across all tenant rings.
    pub fn staged(&self) -> u64 {
        self.arbiter.as_ref().map_or(0, |a| a.backlog() as u64)
    }

    /// Packets dropped on tenant-ring overflow, summed over tenants.
    pub fn staged_dropped(&self) -> u64 {
        self.arbiter
            .as_ref()
            .map_or(0, |a| a.rings.iter().map(|q| q.total_lost()).sum())
    }

    /// Deepest occupancy ever observed across the tenant staging rings
    /// (0 when single-tenant).
    pub fn staged_high_watermark(&self) -> usize {
        self.arbiter.as_ref().map_or(0, |a| {
            a.rings
                .iter()
                .map(|q| q.high_watermark())
                .max()
                .unwrap_or(0)
        })
    }

    /// Releases each tenant staging ring's backing storage beyond its
    /// current occupancy (capacity bounds untouched; observably inert).
    pub fn compact_tenant_rings(&mut self) {
        if let Some(a) = &mut self.arbiter {
            for q in &mut a.rings {
                q.compact();
            }
        }
    }

    /// Resident bytes across the tenant staging rings' backing stores.
    pub fn tenant_ring_resident_bytes(&self) -> usize {
        self.arbiter
            .as_ref()
            .map_or(0, |a| a.rings.iter().map(|q| q.resident_bytes()).sum())
    }

    /// When the shared ingest port next frees up — the earliest time
    /// `issue_next` can do useful work.
    pub fn port_free(&self) -> SimTime {
        self.arbiter.as_ref().map_or(SimTime::ZERO, |a| a.port_free)
    }

    /// Issues the next staged packet (DRR order) into the pipeline at
    /// `now`, occupying the shared ingest port for the packet's wire
    /// time. Returns the packet plus its pipeline schedule, or `None`
    /// when every tenant ring is empty.
    pub fn issue_next(
        &mut self,
        now: SimTime,
        probe: &mut HwWorkloadProbe,
    ) -> Option<(Packet, PipelineOutput)> {
        let a = self.arbiter.as_mut()?;
        let mut packet = a.pop_next()?;
        let wire = SimDuration::from_nanos(
            (packet.size_bytes as f64 * self.config.ns_per_byte).round() as u64,
        )
        .max(self.config.issue_gap);
        self.arbiter.as_mut().expect("checked above").port_free = now + wire;
        let out = self.ingest(&mut packet, now, probe);
        Some((packet, out))
    }

    /// Per-tenant ingress accounting: `(issued packets, issued bytes,
    /// ring drops)` for each configured tenant. Empty when the arbiter
    /// is disabled.
    pub fn tenant_ingress_stats(&self) -> Vec<(u64, u64, u64)> {
        let Some(a) = self.arbiter.as_ref() else {
            return Vec::new();
        };
        (0..a.rings.len())
            .map(|i| (a.issued_pkts[i], a.issued_bytes[i], a.rings[i].total_lost()))
            .collect()
    }

    /// Per-tenant staging-ring ledger for the conservation audit:
    /// `(enqueued, dequeued, backlog, lost)` per tenant ring — the
    /// ring balances when `enqueued + lost` equals the packets offered
    /// to it and `enqueued == dequeued + backlog`. Empty when the
    /// arbiter is disabled.
    pub fn tenant_staging_stats(&self) -> Vec<(u64, u64, u64, u64)> {
        let Some(a) = self.arbiter.as_ref() else {
            return Vec::new();
        };
        a.rings
            .iter()
            .map(|q| {
                (
                    q.total_enqueued(),
                    q.total_dequeued(),
                    q.len() as u64,
                    q.total_lost(),
                )
            })
            .collect()
    }

    /// Total packets ingested.
    pub fn packets_ingested(&self) -> u64 {
        self.ingested.get()
    }

    /// Total payload bytes ingested.
    pub fn bytes_ingested(&self) -> u64 {
        self.bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{IoKind, PacketId};

    fn packet(dest: u32, size: u32, at_us: u64) -> Packet {
        Packet::new(
            PacketId(0),
            IoKind::Network,
            size,
            CpuId(dest),
            0,
            SimTime::from_micros(at_us),
        )
    }

    #[test]
    fn default_window_is_3_2_us() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.window(), SimDuration::from_nanos(3_200));
    }

    #[test]
    fn stage_times_match_paper_breakdown() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let mut p = packet(0, 64, 10);
        let out = acc.ingest(&mut p, SimTime::from_micros(10), &mut probe);
        assert_eq!(out.irq_at, SimTime::from_micros(10));
        assert_eq!(out.preprocess_done.as_nanos(), 10_000 + 2_700);
        assert_eq!(out.delivered_at.as_nanos(), 10_000 + 3_200);
        assert_eq!(p.preprocessed_at, Some(out.preprocess_done));
        assert_eq!(p.delivered_at, Some(out.delivered_at));
    }

    #[test]
    fn probe_irq_on_vstate_destination() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        probe.set_state(CpuId(2), crate::probe::CpuExecState::VState);
        let mut p = packet(2, 64, 1);
        let out = acc.ingest(&mut p, SimTime::from_micros(1), &mut probe);
        assert_eq!(out.probe_irq, Some(CpuId(2)));
        // IRQ precedes delivery by the full window.
        assert_eq!(out.delivered_at - out.irq_at, acc.config().window());
    }

    #[test]
    fn same_channel_serializes_issue() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let t = SimTime::from_micros(5);
        let mut p1 = packet(0, 64, 5);
        let mut p2 = packet(0, 64, 5);
        let o1 = acc.ingest(&mut p1, t, &mut probe);
        let o2 = acc.ingest(&mut p2, t, &mut probe);
        // Second packet starts one issue gap later but latencies overlap.
        assert_eq!(o2.irq_at - o1.irq_at, SimDuration::from_nanos(40));
        assert_eq!(
            o2.delivered_at - o1.delivered_at,
            SimDuration::from_nanos(40)
        );
    }

    #[test]
    fn different_channels_do_not_serialize() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let t = SimTime::from_micros(5);
        let mut p1 = packet(0, 64, 5);
        let mut p2 = packet(1, 64, 5);
        let o1 = acc.ingest(&mut p1, t, &mut probe);
        let o2 = acc.ingest(&mut p2, t, &mut probe);
        assert_eq!(o1.irq_at, o2.irq_at);
    }

    #[test]
    fn large_packets_serialize_at_line_rate() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let t = SimTime::from_micros(0);
        let mut p1 = packet(0, 4096, 0);
        let mut p2 = packet(0, 64, 0);
        let o1 = acc.ingest(&mut p1, t, &mut probe);
        let o2 = acc.ingest(&mut p2, t, &mut probe);
        // 4096 B * 0.04 ns/B ≈ 164 ns > 40 ns issue gap.
        let gap = o2.irq_at - o1.irq_at;
        assert_eq!(gap, SimDuration::from_nanos(164));
    }

    #[test]
    fn counters_accumulate() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        for i in 0..5 {
            let mut p = packet(i % 3, 100, 1);
            acc.ingest(&mut p, SimTime::from_micros(1), &mut probe);
        }
        assert_eq!(acc.packets_ingested(), 5);
        assert_eq!(acc.bytes_ingested(), 500);
    }

    #[test]
    #[should_panic(expected = "ns_per_byte must be finite")]
    fn rejects_nan_line_rate() {
        let cfg = AcceleratorConfig {
            ns_per_byte: f64::NAN,
            ..AcceleratorConfig::default()
        };
        let _ = Accelerator::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one hardware channel")]
    fn rejects_zero_channels() {
        let cfg = AcceleratorConfig {
            channels: 0,
            ..AcceleratorConfig::default()
        };
        let _ = Accelerator::new(cfg);
    }

    fn tenant_packet(id: u64, tenant: u32, size: u32) -> Packet {
        Packet::new(
            PacketId(id),
            IoKind::Network,
            size,
            CpuId(0),
            0,
            SimTime::ZERO,
        )
        .with_tenant(crate::packet::TenantId(tenant))
    }

    #[test]
    fn drr_equal_weights_serve_equal_demand_within_one_quantum() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        acc.enable_tenants(&[1, 1], 1500, 4096);
        for i in 0..1000u64 {
            assert!(acc.stage(tenant_packet(i, (i % 2) as u32, 512)));
        }
        let mut bytes = [0u64; 2];
        let mut t = SimTime::ZERO;
        for _ in 0..600 {
            let (p, _) = acc.issue_next(t, &mut probe).expect("backlogged");
            bytes[p.tenant.index()] += u64::from(p.size_bytes);
            t = acc.port_free();
        }
        let diff = bytes[0].abs_diff(bytes[1]);
        assert!(
            diff <= 1500,
            "equal-weight DRR must stay within one quantum of fair share, diff {diff}"
        );
    }

    #[test]
    fn drr_weights_partition_port_bandwidth() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        acc.enable_tenants(&[3, 1], 1500, 8192);
        for i in 0..4000u64 {
            assert!(acc.stage(tenant_packet(i, (i % 2) as u32, 500)));
        }
        let mut t = SimTime::ZERO;
        for _ in 0..2000 {
            acc.issue_next(t, &mut probe).expect("backlogged");
            t = acc.port_free();
        }
        let stats = acc.tenant_ingress_stats();
        let ratio = stats[0].1 as f64 / stats[1].1 as f64;
        assert!(
            (ratio - 3.0).abs() < 0.1,
            "3:1 weights must yield a ~3:1 byte split, got {ratio:.3}"
        );
    }

    #[test]
    fn drr_is_work_conserving_when_one_tenant_idles() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        acc.enable_tenants(&[1, 1], 1500, 64);
        for i in 0..10u64 {
            assert!(acc.stage(tenant_packet(i, 1, 512)));
        }
        let mut served = 0;
        let mut t = SimTime::ZERO;
        while let Some((p, _)) = acc.issue_next(t, &mut probe) {
            assert_eq!(p.tenant.index(), 1);
            served += 1;
            t = acc.port_free();
        }
        assert_eq!(served, 10, "idle tenant 0 must not block tenant 1");
        assert_eq!(acc.staged(), 0);
    }

    #[test]
    fn tenant_ring_overflow_counts_per_tenant() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        acc.enable_tenants(&[1, 1], 1500, 2);
        for i in 0..5u64 {
            acc.stage(tenant_packet(i, 0, 64));
        }
        assert!(acc.stage(tenant_packet(9, 1, 64)));
        assert_eq!(acc.staged_dropped(), 3);
        let stats = acc.tenant_ingress_stats();
        assert_eq!(stats[0].2, 3);
        assert_eq!(stats[1].2, 0);
        assert_eq!(acc.staged(), 3);
    }

    #[test]
    fn issue_occupies_shared_port_at_line_rate() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        acc.enable_tenants(&[1], 1500, 64);
        acc.stage(tenant_packet(0, 0, 4096));
        let (_, out) = acc.issue_next(SimTime::ZERO, &mut probe).unwrap();
        // 4096 B × 0.04 ns/B ≈ 164 ns of port occupancy.
        assert_eq!(acc.port_free(), SimTime::from_nanos(164));
        assert_eq!(out.delivered_at.as_nanos(), 3_200);
    }
}
