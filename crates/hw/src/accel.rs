//! The programmable I/O accelerator pipeline.
//!
//! Models the Fig. 6 data path: the device driver submits an I/O request
//! (①); the accelerator preprocesses it for 2.7 µs (②) — moving the
//! payload into an internal buffer and processing headers — then
//! transfers the result into the memory shared with the data-plane
//! service in 0.5 µs (③). Stages ② and ③ form the 3.2 µs window that
//! Tai Chi's hardware workload probe uses to hide the 2 µs vCPU switch.
//!
//! The pipeline is modelled per hardware channel: packets on one channel
//! serialize at the channel's issue rate (line-rate bound), while their
//! preprocessing latencies overlap — matching a deeply pipelined ASIC.

use crate::cpu::CpuId;
use crate::packet::Packet;
use crate::probe::HwWorkloadProbe;
use taichi_sim::{Counter, FaultInjector, SimDuration, SimTime, TraceKind, Tracer};

/// Timing configuration for the accelerator.
#[derive(Clone, Debug)]
pub struct AcceleratorConfig {
    /// Latency of stage ② (header/payload preprocessing). Paper: 2.7 µs.
    pub preprocess: SimDuration,
    /// Latency of stage ③ (transfer to shared memory). Paper: 0.5 µs.
    pub transfer: SimDuration,
    /// Minimum gap between packet issues on one channel (pipeline
    /// initiation interval). 40 ns ≈ 300 Mpps aggregate on 12 channels,
    /// far above anything the evaluation drives.
    pub issue_gap: SimDuration,
    /// Additional serialization per payload byte (line-rate bound);
    /// 0.04 ns/B ≈ 200 Gb/s.
    pub ns_per_byte: f64,
    /// Number of independent hardware channels (typically one per DP
    /// CPU's queue group).
    pub channels: u32,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            preprocess: SimDuration::from_nanos(2_700),
            transfer: SimDuration::from_nanos(500),
            issue_gap: SimDuration::from_nanos(40),
            ns_per_byte: 0.04,
            channels: 12,
        }
    }
}

impl AcceleratorConfig {
    /// The full preprocessing window (② + ③) the probe can hide
    /// scheduling latency inside.
    pub fn window(&self) -> SimDuration {
        self.preprocess + self.transfer
    }
}

/// Result of ingesting one packet into the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineOutput {
    /// Whether the hardware probe raised an IRQ towards the destination
    /// CPU (it was in V-state) — raised at `irq_at`, i.e. the *start* of
    /// preprocessing, before the packet is visible to software.
    pub probe_irq: Option<CpuId>,
    /// When the probe IRQ fires (= preprocessing start).
    pub irq_at: SimTime,
    /// When stage ② completes.
    pub preprocess_done: SimTime,
    /// When stage ③ completes and the packet is visible to the DP
    /// service's poll loop.
    pub delivered_at: SimTime,
}

/// The accelerator pipeline state.
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: AcceleratorConfig,
    /// Per-channel earliest next issue time.
    channel_free: Vec<SimTime>,
    ingested: Counter,
    bytes: Counter,
    tracer: Option<Tracer>,
    fault: Option<FaultInjector>,
}

impl Accelerator {
    /// Creates an idle accelerator.
    ///
    /// Panics on a nonsensical timing config: a NaN or negative
    /// `ns_per_byte` would silently serialize every payload in zero
    /// time (`f64 as u64` saturates), and zero channels has no issue
    /// slot to serialize on.
    pub fn new(config: AcceleratorConfig) -> Self {
        assert!(
            config.ns_per_byte.is_finite() && config.ns_per_byte >= 0.0,
            "accelerator ns_per_byte must be finite and non-negative, got {}",
            config.ns_per_byte
        );
        assert!(
            config.channels > 0,
            "accelerator needs at least one hardware channel"
        );
        let channels = config.channels as usize;
        Accelerator {
            config,
            channel_free: vec![SimTime::ZERO; channels],
            ingested: Counter::new(),
            bytes: Counter::new(),
            tracer: None,
            fault: None,
        }
    }

    /// Attaches a scheduler tracer (stage ② start and V-state checks
    /// are recorded).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attaches a fault injector (pipeline-stall faults).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = Some(fault);
    }

    /// Returns the configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Ingests `packet` at `now`, consulting (and counting on) the
    /// hardware probe before preprocessing begins.
    ///
    /// Stamps `preprocessed_at`/`delivered_at` on the packet and returns
    /// the stage times plus any probe IRQ. The channel is chosen by the
    /// packet's destination CPU so one DP CPU's traffic is serialized.
    pub fn ingest(
        &mut self,
        packet: &mut Packet,
        now: SimTime,
        probe: &mut HwWorkloadProbe,
    ) -> PipelineOutput {
        let ch = packet.dest_cpu.index() % self.channel_free.len();
        let mut start = now.max(self.channel_free[ch]);
        if let Some(f) = &self.fault {
            // A pipeline stall delays this packet's entry, which also
            // pushes back the channel's next issue slot: stalls
            // propagate as backpressure, exactly like a real ASIC
            // hiccup.
            if let Some(stall) = f.accel_stall(packet.dest_cpu.0) {
                start += stall;
            }
        }

        // Probe check happens before stage ② begins (Fig. 10).
        let probe_irq = if probe.check_on_packet(packet.dest_cpu) {
            Some(packet.dest_cpu)
        } else {
            None
        };

        let serialize = SimDuration::from_nanos(
            (packet.size_bytes as f64 * self.config.ns_per_byte).round() as u64,
        )
        .max(self.config.issue_gap);
        self.channel_free[ch] = start + serialize;

        let preprocess_done = start + self.config.preprocess;
        let delivered_at = preprocess_done + self.config.transfer;
        packet.preprocessed_at = Some(preprocess_done);
        packet.delivered_at = Some(delivered_at);

        self.ingested.inc();
        self.bytes.add(packet.size_bytes as u64);

        if let Some(t) = &self.tracer {
            let cpu = packet.dest_cpu.0;
            let pkt = packet.id.0;
            t.emit_at(start, cpu, TraceKind::AccelPreprocess { pkt });
            t.emit_at(
                start,
                cpu,
                TraceKind::AccelVCheck {
                    pkt,
                    vstate: probe_irq.is_some(),
                },
            );
        }

        PipelineOutput {
            probe_irq,
            irq_at: start,
            preprocess_done,
            delivered_at,
        }
    }

    /// Total packets ingested.
    pub fn packets_ingested(&self) -> u64 {
        self.ingested.get()
    }

    /// Total payload bytes ingested.
    pub fn bytes_ingested(&self) -> u64 {
        self.bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{IoKind, PacketId};

    fn packet(dest: u32, size: u32, at_us: u64) -> Packet {
        Packet::new(
            PacketId(0),
            IoKind::Network,
            size,
            CpuId(dest),
            0,
            SimTime::from_micros(at_us),
        )
    }

    #[test]
    fn default_window_is_3_2_us() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.window(), SimDuration::from_nanos(3_200));
    }

    #[test]
    fn stage_times_match_paper_breakdown() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let mut p = packet(0, 64, 10);
        let out = acc.ingest(&mut p, SimTime::from_micros(10), &mut probe);
        assert_eq!(out.irq_at, SimTime::from_micros(10));
        assert_eq!(out.preprocess_done.as_nanos(), 10_000 + 2_700);
        assert_eq!(out.delivered_at.as_nanos(), 10_000 + 3_200);
        assert_eq!(p.preprocessed_at, Some(out.preprocess_done));
        assert_eq!(p.delivered_at, Some(out.delivered_at));
    }

    #[test]
    fn probe_irq_on_vstate_destination() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        probe.set_state(CpuId(2), crate::probe::CpuExecState::VState);
        let mut p = packet(2, 64, 1);
        let out = acc.ingest(&mut p, SimTime::from_micros(1), &mut probe);
        assert_eq!(out.probe_irq, Some(CpuId(2)));
        // IRQ precedes delivery by the full window.
        assert_eq!(out.delivered_at - out.irq_at, acc.config().window());
    }

    #[test]
    fn same_channel_serializes_issue() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let t = SimTime::from_micros(5);
        let mut p1 = packet(0, 64, 5);
        let mut p2 = packet(0, 64, 5);
        let o1 = acc.ingest(&mut p1, t, &mut probe);
        let o2 = acc.ingest(&mut p2, t, &mut probe);
        // Second packet starts one issue gap later but latencies overlap.
        assert_eq!(o2.irq_at - o1.irq_at, SimDuration::from_nanos(40));
        assert_eq!(
            o2.delivered_at - o1.delivered_at,
            SimDuration::from_nanos(40)
        );
    }

    #[test]
    fn different_channels_do_not_serialize() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let t = SimTime::from_micros(5);
        let mut p1 = packet(0, 64, 5);
        let mut p2 = packet(1, 64, 5);
        let o1 = acc.ingest(&mut p1, t, &mut probe);
        let o2 = acc.ingest(&mut p2, t, &mut probe);
        assert_eq!(o1.irq_at, o2.irq_at);
    }

    #[test]
    fn large_packets_serialize_at_line_rate() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        let t = SimTime::from_micros(0);
        let mut p1 = packet(0, 4096, 0);
        let mut p2 = packet(0, 64, 0);
        let o1 = acc.ingest(&mut p1, t, &mut probe);
        let o2 = acc.ingest(&mut p2, t, &mut probe);
        // 4096 B * 0.04 ns/B ≈ 164 ns > 40 ns issue gap.
        let gap = o2.irq_at - o1.irq_at;
        assert_eq!(gap, SimDuration::from_nanos(164));
    }

    #[test]
    fn counters_accumulate() {
        let mut acc = Accelerator::new(AcceleratorConfig::default());
        let mut probe = HwWorkloadProbe::new(12);
        for i in 0..5 {
            let mut p = packet(i % 3, 100, 1);
            acc.ingest(&mut p, SimTime::from_micros(1), &mut probe);
        }
        assert_eq!(acc.packets_ingested(), 5);
        assert_eq!(acc.bytes_ingested(), 500);
    }

    #[test]
    #[should_panic(expected = "ns_per_byte must be finite")]
    fn rejects_nan_line_rate() {
        let cfg = AcceleratorConfig {
            ns_per_byte: f64::NAN,
            ..AcceleratorConfig::default()
        };
        let _ = Accelerator::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one hardware channel")]
    fn rejects_zero_channels() {
        let cfg = AcceleratorConfig {
            channels: 0,
            ..AcceleratorConfig::default()
        };
        let _ = Accelerator::new(cfg);
    }
}
