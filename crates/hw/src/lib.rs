//! SmartNIC hardware model.
//!
//! This crate models the hardware substrate the paper's evaluation runs
//! on: a 12-CPU SmartNIC SoC with a programmable I/O accelerator,
//! emulated-NIC descriptor queues, an interrupt (APIC/IPI) fabric, and a
//! PCIe Gen3 x8 host link. The timing constants default to the figures
//! published in the paper (Fig. 6: 2.7 µs accelerator preprocessing +
//! 0.5 µs shared-memory transfer; §3.4: 2 µs vCPU switch) and are all
//! configurable.
//!
//! The crate also hosts the *hardware workload probe* state table
//! ([`probe::HwWorkloadProbe`]) — the ~30-line accelerator firmware
//! change that is half of Tai Chi's hardware/software co-design: a
//! per-CPU V-state/P-state register file consulted on every packet
//! arrival, raising an IRQ towards CPUs currently running a vCPU.

pub mod accel;
pub mod apic;
pub mod cpu;
pub mod packet;
pub mod pcie;
pub mod probe;
pub mod queue;

pub use accel::{Accelerator, AcceleratorConfig, PipelineOutput};
pub use apic::{ApicFabric, IpiMessage, IrqVector};
pub use cpu::{CpuId, CpuRole, SmartNicSpec};
pub use packet::{IoKind, Packet, PacketId, TenantId};
pub use probe::{CpuExecState, HwWorkloadProbe};
pub use queue::RxQueue;
