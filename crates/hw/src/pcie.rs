//! PCIe host-link latency/bandwidth model.
//!
//! The SmartNIC attaches to the host over PCIe Gen3 x8 (Table 4).
//! Doorbell writes, DMA descriptor fetches and payload transfers all
//! cross this link; for scheduling purposes what matters is the fixed
//! per-transaction latency plus payload serialization at link bandwidth.

use taichi_sim::{Counter, SimDuration, SimTime};

/// PCIe link timing configuration.
#[derive(Clone, Debug)]
pub struct PcieConfig {
    /// One-way transaction latency (posted write / read completion).
    pub transaction_latency: SimDuration,
    /// Effective payload bandwidth in GB/s (Gen3 x8 ≈ 7.9 GB/s raw,
    /// ~6.5 GB/s effective after TLP overhead).
    pub effective_gbps: f64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig {
            transaction_latency: SimDuration::from_nanos(450),
            effective_gbps: 6.5,
        }
    }
}

/// A half-duplex-modelled PCIe link (each direction tracked separately
/// would only matter at saturation, which the evaluation never reaches).
#[derive(Clone, Debug)]
pub struct PcieLink {
    config: PcieConfig,
    busy_until: SimTime,
    transactions: Counter,
    bytes: Counter,
}

impl PcieLink {
    /// Creates an idle link.
    ///
    /// Panics when `effective_gbps` is not a positive finite number: a
    /// zero/negative/NaN bandwidth would make [`PcieLink::serialization`]
    /// saturate to `u64::MAX` nanoseconds and wedge every transfer at
    /// the end of simulated time instead of failing at the config site.
    pub fn new(config: PcieConfig) -> Self {
        assert!(
            config.effective_gbps.is_finite() && config.effective_gbps > 0.0,
            "pcie effective_gbps must be a positive finite bandwidth, got {}",
            config.effective_gbps
        );
        PcieLink {
            config,
            busy_until: SimTime::ZERO,
            transactions: Counter::new(),
            bytes: Counter::new(),
        }
    }

    /// Time to serialize `bytes` at link bandwidth.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        let ns = bytes as f64 / (self.config.effective_gbps * 1e9) * 1e9;
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// Issues a transfer of `bytes` at `now`; returns its completion
    /// time (queueing behind earlier transfers + latency + payload).
    pub fn transfer(&mut self, bytes: u32, now: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + self.config.transaction_latency + self.serialization(bytes);
        self.busy_until = start + self.serialization(bytes);
        self.transactions.inc();
        self.bytes.add(bytes as u64);
        done
    }

    /// Issues a zero-payload doorbell write at `now`; returns arrival.
    pub fn doorbell(&mut self, now: SimTime) -> SimTime {
        self.transactions.inc();
        now + self.config.transaction_latency
    }

    /// Total transactions issued.
    pub fn total_transactions(&self) -> u64 {
        self.transactions.get()
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doorbell_is_pure_latency() {
        let mut l = PcieLink::new(PcieConfig::default());
        let at = l.doorbell(SimTime::from_micros(1));
        assert_eq!(at.as_nanos(), 1_000 + 450);
    }

    #[test]
    fn serialization_scales_with_size() {
        let l = PcieLink::new(PcieConfig::default());
        let s4k = l.serialization(4096);
        let s64 = l.serialization(64);
        assert!(s4k > s64.saturating_mul(50));
        // 4 KiB at 6.5 GB/s = ~630 ns.
        assert!((s4k.as_nanos() as i64 - 630).abs() < 10, "{s4k:?}");
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut l = PcieLink::new(PcieConfig::default());
        let t = SimTime::from_micros(0);
        let d1 = l.transfer(4096, t);
        let d2 = l.transfer(4096, t);
        assert!(d2 > d1);
        assert_eq!((d2 - d1).as_nanos(), l.serialization(4096).as_nanos());
        assert_eq!(l.total_transactions(), 2);
        assert_eq!(l.total_bytes(), 8192);
    }

    #[test]
    fn idle_link_has_no_queueing() {
        let mut l = PcieLink::new(PcieConfig::default());
        let d1 = l.transfer(64, SimTime::from_micros(0));
        // Long after the first completes.
        let d2 = l.transfer(64, SimTime::from_micros(100));
        assert_eq!((d1.as_nanos()) as i64 - 450 - 10, 0);
        assert_eq!(d2.as_nanos(), 100_000 + 450 + 10);
    }

    #[test]
    #[should_panic(expected = "positive finite bandwidth")]
    fn rejects_zero_bandwidth() {
        let cfg = PcieConfig {
            effective_gbps: 0.0,
            ..PcieConfig::default()
        };
        let _ = PcieLink::new(cfg);
    }
}
