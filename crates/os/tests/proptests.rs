//! Randomized property tests for the kernel model: random programs on
//! random topologies must always run to completion with exact CPU-time
//! accounting. Driven by the in-repo deterministic harness
//! ([`taichi_sim::check`]).

use taichi_hw::CpuId;
use taichi_os::{
    ActionBuf, CpuSet, Kernel, KernelAction, KernelConfig, LockId, Program, Segment, ThreadId,
    ThreadState,
};
use taichi_sim::check::run_cases;
use taichi_sim::{EventQueue, Rng, SimDuration, SimTime};

/// Drives a kernel to quiescence (same pattern as the unit tests, but
/// over arbitrary generated workloads). `pending` carries actions
/// returned by calls made outside the drive loop (spawns, pauses).
fn drive(kernel: &mut Kernel, pending: &ActionBuf, until: SimTime) {
    drive_with_pulses(kernel, pending, &[], until);
}

/// Like [`drive`], additionally applying externally scheduled
/// pause/resume pulses (hypervisor behaviour) at fixed instants, all
/// within one persistent event queue so no timer is ever lost.
fn drive_with_pulses(
    kernel: &mut Kernel,
    pending: &ActionBuf,
    pulses: &[(u64, u64)], // (pause_at_us, resume_at_us) on CPU 0
    until: SimTime,
) {
    #[derive(Debug)]
    enum Ev {
        Decide(CpuId),
        Wake(ThreadId),
        Pause(CpuId),
        Resume(CpuId),
    }
    let mut q: EventQueue<Ev> = EventQueue::new();
    let arm = |k: &Kernel, q: &mut EventQueue<Ev>, cpu: CpuId, now: SimTime| {
        if let Some(t) = k.next_decision_time(cpu, now) {
            q.schedule(t.max(now), Ev::Decide(cpu));
        }
    };
    for a in pending.iter() {
        if let KernelAction::ArmWakeup { tid, at } = a {
            q.schedule(at, Ev::Wake(tid));
        }
    }
    for &(p_at, r_at) in pulses {
        q.schedule(SimTime::from_micros(p_at), Ev::Pause(CpuId(0)));
        q.schedule(SimTime::from_micros(r_at), Ev::Resume(CpuId(0)));
    }
    for cpu in kernel.known_cpus() {
        arm(kernel, &mut q, cpu, SimTime::ZERO);
    }
    let mut acts = ActionBuf::new();
    while let Some((t, ev)) = q.pop() {
        if t > until {
            break;
        }
        acts.clear();
        match ev {
            Ev::Decide(cpu) => kernel.decide(cpu, t, &mut acts),
            Ev::Wake(tid) => kernel.wakeup(tid, t, &mut acts),
            Ev::Pause(cpu) => kernel.pause_cpu(cpu, t, &mut acts),
            Ev::Resume(cpu) => kernel.resume_cpu(cpu, t, &mut acts),
        };
        for a in acts.iter() {
            match a {
                KernelAction::ArmWakeup { tid, at } => {
                    q.schedule(at, Ev::Wake(tid));
                }
                KernelAction::Rearm { cpu } => arm(kernel, &mut q, cpu, t),
                _ => {}
            }
        }
    }
}

/// A generated program segment (durations in µs, bounded to keep test
/// horizons small).
fn random_segment(rng: &mut Rng) -> Segment {
    match rng.next_below(6) {
        0 => Segment::UserCompute(SimDuration::from_micros(rng.gen_range(1, 500))),
        1 => Segment::KernelPreemptible(SimDuration::from_micros(rng.gen_range(1, 300))),
        2 => Segment::nonpreemptible(SimDuration::from_micros(rng.gen_range(1, 800))),
        3 => Segment::locked(
            SimDuration::from_micros(rng.gen_range(1, 400)),
            LockId(rng.next_below(3) as u32),
        ),
        4 => Segment::Sleep(SimDuration::from_micros(rng.gen_range(1, 200))),
        _ => Segment::Yield,
    }
}

fn random_program(rng: &mut Rng) -> Program {
    let n = rng.gen_range(1, 8);
    let mut p = Program::new();
    for _ in 0..n {
        p = p.then(random_segment(rng));
    }
    p
}

/// Every generated workload runs to completion, with CPU time exactly
/// equal to the programs' total demand.
#[test]
fn all_threads_finish_with_exact_accounting() {
    run_cases("all_threads_finish_with_exact_accounting", 64, |_, rng| {
        let nprogs = rng.gen_range(1, 12);
        let programs: Vec<Program> = (0..nprogs).map(|_| random_program(rng)).collect();
        let ncpus = rng.gen_range(1, 5) as u32;
        let cpus: Vec<CpuId> = (0..ncpus).map(CpuId).collect();
        let mut k = Kernel::new(KernelConfig::default(), &cpus);
        let affinity: CpuSet = cpus.iter().copied().collect();
        let mut expect = SimDuration::ZERO;
        let mut tids = Vec::new();
        let mut pending = ActionBuf::new();
        for p in &programs {
            expect += p.total_cpu_time();
            let tid = k.spawn(p.clone(), affinity, SimTime::ZERO, &mut pending);
            tids.push(tid);
        }
        drive(&mut k, &pending, SimTime::from_secs(60));
        let mut total = SimDuration::ZERO;
        for tid in tids {
            let t = k.thread_info(tid);
            assert_eq!(
                t.state,
                ThreadState::Finished,
                "{tid:?} stuck at pc {}",
                t.pc
            );
            assert!(t.holding.is_none(), "finished holding a lock");
            total += t.cpu_time;
        }
        assert_eq!(total, expect, "CPU-time accounting drifted");
    });
}

/// Pausing and resuming CPUs at arbitrary instants never loses or
/// invents work.
#[test]
fn pause_resume_preserves_accounting() {
    run_cases("pause_resume_preserves_accounting", 64, |_, rng| {
        let nprogs = rng.gen_range(1, 6);
        let programs: Vec<Program> = (0..nprogs).map(|_| random_program(rng)).collect();
        let npauses = rng.gen_range(1, 10);
        let pauses: Vec<(u64, u64)> = (0..npauses)
            .map(|_| (rng.next_below(20_000), rng.gen_range(1, 5_000)))
            .collect();
        let cpus: Vec<CpuId> = (0..2).map(CpuId).collect();
        let mut k = Kernel::new(KernelConfig::default(), &cpus);
        let affinity: CpuSet = cpus.iter().copied().collect();
        let mut expect = SimDuration::ZERO;
        let mut tids = Vec::new();
        let mut pending = ActionBuf::new();
        for p in &programs {
            expect += p.total_cpu_time();
            let tid = k.spawn(p.clone(), affinity, SimTime::ZERO, &mut pending);
            tids.push(tid);
        }
        // Non-overlapping pause/resume pulses on CPU 0.
        let mut pulses = Vec::new();
        let mut clock = 0u64;
        for (start_us, len_us) in pauses {
            clock = clock.max(start_us);
            pulses.push((clock, clock + len_us));
            clock += len_us + 1;
        }
        drive_with_pulses(&mut k, &pending, &pulses, SimTime::from_secs(120));
        let mut total = SimDuration::ZERO;
        for tid in tids {
            let t = k.thread_info(tid);
            assert_eq!(t.state, ThreadState::Finished, "{tid:?} stuck");
            total += t.cpu_time;
        }
        assert_eq!(total, expect);
    });
}

/// Turnaround is never less than the program's own CPU demand plus its
/// sleeps (causality).
#[test]
fn turnaround_respects_causality() {
    run_cases("turnaround_respects_causality", 64, |_, rng| {
        let program = random_program(rng);
        let cpus = [CpuId(0)];
        let mut k = Kernel::new(KernelConfig::default(), &cpus);
        let sleeps: SimDuration = program
            .segments()
            .iter()
            .filter_map(|s| match s {
                Segment::Sleep(d) => Some(*d),
                _ => None,
            })
            .fold(SimDuration::ZERO, |a, b| a + b);
        let floor = program.total_cpu_time() + sleeps;
        let mut acts = ActionBuf::new();
        let tid = k.spawn(program, CpuSet::single(CpuId(0)), SimTime::ZERO, &mut acts);
        drive(&mut k, &acts, SimTime::from_secs(60));
        let t = k.thread_info(tid);
        assert_eq!(t.state, ThreadState::Finished);
        assert!(t.turnaround().expect("finished") >= floor);
    });
}

/// CpuSet behaves like a reference set implementation.
#[test]
fn cpuset_matches_btreeset() {
    run_cases("cpuset_matches_btreeset", 128, |_, rng| {
        let mut set = CpuSet::EMPTY;
        let mut model = std::collections::BTreeSet::new();
        let nops = rng.next_below(100);
        for _ in 0..nops {
            let id = rng.next_below(64) as u32;
            if rng.chance(0.5) {
                set.insert(CpuId(id));
                model.insert(id);
            } else {
                set.remove(CpuId(id));
                model.remove(&id);
            }
        }
        assert_eq!(set.len() as usize, model.len());
        let got: Vec<u32> = set.iter().map(|c| c.0).collect();
        let want: Vec<u32> = model.into_iter().collect();
        assert_eq!(got, want);
    });
}
