//! Property-based tests for the kernel model: random programs on
//! random topologies must always run to completion with exact CPU-time
//! accounting.

use proptest::prelude::*;
use taichi_hw::CpuId;
use taichi_os::{CpuSet, Kernel, KernelAction, KernelConfig, LockId, Program, Segment, ThreadId, ThreadState};
use taichi_sim::{EventQueue, SimDuration, SimTime};

/// Drives a kernel to quiescence (same pattern as the unit tests, but
/// over arbitrary generated workloads). `pending` carries actions
/// returned by calls made outside the drive loop (spawns, pauses).
fn drive(kernel: &mut Kernel, pending: Vec<KernelAction>, until: SimTime) {
    drive_with_pulses(kernel, pending, &[], until);
}

/// Like [`drive`], additionally applying externally scheduled
/// pause/resume pulses (hypervisor behaviour) at fixed instants, all
/// within one persistent event queue so no timer is ever lost.
fn drive_with_pulses(
    kernel: &mut Kernel,
    pending: Vec<KernelAction>,
    pulses: &[(u64, u64)], // (pause_at_us, resume_at_us) on CPU 0
    until: SimTime,
) {
    #[derive(Debug)]
    enum Ev {
        Decide(CpuId),
        Wake(ThreadId),
        Pause(CpuId),
        Resume(CpuId),
    }
    let mut q: EventQueue<Ev> = EventQueue::new();
    let arm = |k: &Kernel, q: &mut EventQueue<Ev>, cpu: CpuId, now: SimTime| {
        if let Some(t) = k.next_decision_time(cpu, now) {
            q.schedule(t.max(now), Ev::Decide(cpu));
        }
    };
    for a in pending {
        if let KernelAction::ArmWakeup { tid, at } = a {
            q.schedule(at, Ev::Wake(tid));
        }
    }
    for &(p_at, r_at) in pulses {
        q.schedule(SimTime::from_micros(p_at), Ev::Pause(CpuId(0)));
        q.schedule(SimTime::from_micros(r_at), Ev::Resume(CpuId(0)));
    }
    for cpu in kernel.known_cpus() {
        arm(kernel, &mut q, cpu, SimTime::ZERO);
    }
    while let Some((t, ev)) = q.pop() {
        if t > until {
            break;
        }
        let acts = match ev {
            Ev::Decide(cpu) => kernel.decide(cpu, t),
            Ev::Wake(tid) => kernel.wakeup(tid, t),
            Ev::Pause(cpu) => kernel.pause_cpu(cpu, t),
            Ev::Resume(cpu) => kernel.resume_cpu(cpu, t),
        };
        for a in acts {
            match a {
                KernelAction::ArmWakeup { tid, at } => {
                    q.schedule(at, Ev::Wake(tid));
                }
                KernelAction::Rearm { cpu } => arm(kernel, &mut q, cpu, t),
                _ => {}
            }
        }
    }
}

/// A generated program segment (durations in µs, bounded to keep
/// test horizons small).
fn segment_strategy() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (1u64..500).prop_map(|us| Segment::UserCompute(SimDuration::from_micros(us))),
        (1u64..300).prop_map(|us| Segment::KernelPreemptible(SimDuration::from_micros(us))),
        (1u64..800).prop_map(|us| Segment::nonpreemptible(SimDuration::from_micros(us))),
        (1u64..400, 0u32..3).prop_map(|(us, l)| Segment::locked(
            SimDuration::from_micros(us),
            LockId(l)
        )),
        (1u64..200).prop_map(|us| Segment::Sleep(SimDuration::from_micros(us))),
        Just(Segment::Yield),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(segment_strategy(), 1..8).prop_map(|segs| {
        let mut p = Program::new();
        for s in segs {
            p = p.then(s);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated workload runs to completion, with CPU time
    /// exactly equal to the programs' total demand.
    #[test]
    fn all_threads_finish_with_exact_accounting(
        programs in prop::collection::vec(program_strategy(), 1..12),
        ncpus in 1u32..5,
    ) {
        let cpus: Vec<CpuId> = (0..ncpus).map(CpuId).collect();
        let mut k = Kernel::new(KernelConfig::default(), &cpus);
        let affinity: CpuSet = cpus.iter().copied().collect();
        let mut expect = SimDuration::ZERO;
        let mut tids = Vec::new();
        let mut pending = Vec::new();
        for p in &programs {
            expect += p.total_cpu_time();
            let (tid, acts) = k.spawn(p.clone(), affinity, SimTime::ZERO);
            pending.extend(acts);
            tids.push(tid);
        }
        drive(&mut k, pending, SimTime::from_secs(60));
        let mut total = SimDuration::ZERO;
        for tid in tids {
            let t = k.thread_info(tid);
            prop_assert_eq!(t.state, ThreadState::Finished, "{:?} stuck at pc {}", tid, t.pc);
            prop_assert!(t.holding.is_none(), "finished holding a lock");
            total += t.cpu_time;
        }
        prop_assert_eq!(total, expect, "CPU-time accounting drifted");
    }

    /// Pausing and resuming CPUs at arbitrary instants never loses or
    /// invents work.
    #[test]
    fn pause_resume_preserves_accounting(
        programs in prop::collection::vec(program_strategy(), 1..6),
        pauses in prop::collection::vec((0u64..20_000, 1u64..5_000), 1..10),
    ) {
        let cpus: Vec<CpuId> = (0..2).map(CpuId).collect();
        let mut k = Kernel::new(KernelConfig::default(), &cpus);
        let affinity: CpuSet = cpus.iter().copied().collect();
        let mut expect = SimDuration::ZERO;
        let mut tids = Vec::new();
        let mut pending = Vec::new();
        for p in &programs {
            expect += p.total_cpu_time();
            let (tid, acts) = k.spawn(p.clone(), affinity, SimTime::ZERO);
            pending.extend(acts);
            tids.push(tid);
        }
        // Non-overlapping pause/resume pulses on CPU 0.
        let mut pulses = Vec::new();
        let mut clock = 0u64;
        for (start_us, len_us) in pauses {
            clock = clock.max(start_us);
            pulses.push((clock, clock + len_us));
            clock += len_us + 1;
        }
        drive_with_pulses(&mut k, pending, &pulses, SimTime::from_secs(120));
        let mut total = SimDuration::ZERO;
        for tid in tids {
            let t = k.thread_info(tid);
            prop_assert_eq!(t.state, ThreadState::Finished, "{:?} stuck", tid);
            total += t.cpu_time;
        }
        prop_assert_eq!(total, expect);
    }

    /// Turnaround is never less than the program's own CPU demand plus
    /// its sleeps (causality).
    #[test]
    fn turnaround_respects_causality(program in program_strategy()) {
        let cpus = [CpuId(0)];
        let mut k = Kernel::new(KernelConfig::default(), &cpus);
        let sleeps: SimDuration = program
            .segments()
            .iter()
            .filter_map(|s| match s {
                Segment::Sleep(d) => Some(*d),
                _ => None,
            })
            .fold(SimDuration::ZERO, |a, b| a + b);
        let floor = program.total_cpu_time() + sleeps;
        let (tid, acts) = k.spawn(program, CpuSet::single(CpuId(0)), SimTime::ZERO);
        drive(&mut k, acts, SimTime::from_secs(60));
        let t = k.thread_info(tid);
        prop_assert_eq!(t.state, ThreadState::Finished);
        prop_assert!(t.turnaround().expect("finished") >= floor);
    }

    /// CpuSet behaves like a reference set implementation.
    #[test]
    fn cpuset_matches_btreeset(ops in prop::collection::vec((0u32..64, any::<bool>()), 0..100)) {
        let mut set = CpuSet::EMPTY;
        let mut model = std::collections::BTreeSet::new();
        for (id, insert) in ops {
            if insert {
                set.insert(CpuId(id));
                model.insert(id);
            } else {
                set.remove(CpuId(id));
                model.remove(&id);
            }
        }
        prop_assert_eq!(set.len() as usize, model.len());
        let got: Vec<u32> = set.iter().map(|c| c.0).collect();
        let want: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
