//! Allocation-free action buffer for the kernel's out-parameter API.
//!
//! Every kernel mutator used to return a fresh `Vec<KernelAction>`;
//! with millions of scheduler decisions per simulated second that heap
//! churn dominated the hot loop. [`ActionBuf`] is a small-vector
//! (backed by the shared [`taichi_sim::InlineVec`]) with inline
//! capacity sized for the common case (a decide emits 1–4 actions):
//! the first [`ActionBuf::INLINE_CAP`] pushes touch only the buffer
//! itself, and only pathological bursts spill to the heap — and the
//! spill keeps its capacity across [`ActionBuf::clear`], so a reused
//! scratch buffer stops allocating entirely after warm-up.
//!
//! The convention: drivers own one scratch `ActionBuf`, pass it as the
//! `out` parameter to every kernel call, apply the drained actions, and
//! clear it for the next call. Kernel code only ever *appends*; it
//! never reads the buffer.

use taichi_sim::InlineVec;

use crate::kernel::KernelAction;

/// A grow-only buffer of [`KernelAction`]s with inline storage.
#[derive(Clone, Debug, Default)]
pub struct ActionBuf {
    buf: InlineVec<KernelAction, { ActionBuf::INLINE_CAP }>,
}

impl ActionBuf {
    /// Actions stored inline before spilling to the heap.
    pub const INLINE_CAP: usize = 8;

    /// Creates an empty buffer (no heap allocation).
    pub fn new() -> Self {
        ActionBuf {
            buf: InlineVec::new(),
        }
    }

    /// Appends one action.
    #[inline]
    pub fn push(&mut self, action: KernelAction) {
        self.buf.push(action);
    }

    /// Number of buffered actions.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The action at `index` (panics when out of bounds). Actions are
    /// `Copy`, so drivers iterate by index while holding `&mut` access
    /// to everything else.
    #[inline]
    pub fn get(&self, index: usize) -> KernelAction {
        self.buf.get(index)
    }

    /// Iterates the buffered actions in push order.
    pub fn iter(&self) -> impl Iterator<Item = KernelAction> + '_ {
        self.buf.iter()
    }

    /// Copies the actions into a `Vec` (tests and cold paths).
    pub fn to_vec(&self) -> Vec<KernelAction> {
        self.buf.to_vec()
    }

    /// Empties the buffer, retaining spill capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taichi_hw::CpuId;

    fn rearm(i: u32) -> KernelAction {
        KernelAction::Rearm { cpu: CpuId(i) }
    }

    #[test]
    fn push_get_iter_roundtrip() {
        let mut b = ActionBuf::new();
        assert!(b.is_empty());
        for i in 0..20 {
            b.push(rearm(i));
        }
        assert_eq!(b.len(), 20);
        for i in 0..20 {
            assert_eq!(b.get(i), rearm(i as u32));
        }
        let collected: Vec<_> = b.iter().collect();
        assert_eq!(collected, (0..20).map(rearm).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut b = ActionBuf::new();
        for i in 0..12 {
            b.push(rearm(i));
        }
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        b.push(rearm(99));
        assert_eq!(b.to_vec(), vec![rearm(99)]);
    }

    #[test]
    fn inline_boundary_exact() {
        let mut b = ActionBuf::new();
        for i in 0..(ActionBuf::INLINE_CAP as u32) {
            b.push(rearm(i));
        }
        assert_eq!(b.len(), ActionBuf::INLINE_CAP);
        assert_eq!(
            b.to_vec(),
            (0..ActionBuf::INLINE_CAP as u32)
                .map(rearm)
                .collect::<Vec<_>>()
        );
    }
}
