//! Spinlocks with explicit waiter queues.
//!
//! Contended spinlocks are the canonical non-preemptible routine in the
//! paper's production traces (Fig. 4 uses a driver spinlock as its
//! example). The table tracks, per lock, the holding thread and the
//! FIFO of spinning waiters. Spinning burns CPU on the waiter's core —
//! which is why a descheduled lock *holder* (a paused vCPU) is so
//! dangerous, and why Tai Chi's safe CP-to-DP rescheduling (§4.1)
//! immediately re-places a preempted lock-holding vCPU.

use crate::thread::ThreadId;
use std::collections::HashMap;
use std::collections::VecDeque;
use taichi_sim::Counter;

/// Identifies a kernel spinlock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl std::fmt::Debug for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lock{}", self.0)
    }
}

#[derive(Clone, Debug, Default)]
struct LockSlot {
    holder: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

/// The global lock table.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    slots: HashMap<LockId, LockSlot>,
    acquisitions: Counter,
    contentions: Counter,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire `lock` for `tid`.
    ///
    /// Returns `true` on success; on failure the thread is queued as a
    /// spinning waiter (FIFO) and `false` is returned.
    pub fn acquire(&mut self, lock: LockId, tid: ThreadId) -> bool {
        let slot = self.slots.entry(lock).or_default();
        if slot.holder.is_none() {
            slot.holder = Some(tid);
            self.acquisitions.inc();
            true
        } else {
            debug_assert_ne!(slot.holder, Some(tid), "recursive spinlock acquire");
            if !slot.waiters.contains(&tid) {
                slot.waiters.push_back(tid);
            }
            self.contentions.inc();
            false
        }
    }

    /// Releases `lock` held by `tid`; returns the next waiter (now the
    /// new holder), if any.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock — releasing a lock you do
    /// not own is a kernel bug we want the simulation to catch loudly.
    pub fn release(&mut self, lock: LockId, tid: ThreadId) -> Option<ThreadId> {
        let slot = self
            .slots
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("release of unknown {lock:?}"));
        assert_eq!(
            slot.holder,
            Some(tid),
            "{tid:?} released {lock:?} held by {:?}",
            slot.holder
        );
        let next = slot.waiters.pop_front();
        slot.holder = next;
        if next.is_some() {
            self.acquisitions.inc();
        }
        next
    }

    /// Current holder of `lock`.
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.slots.get(&lock).and_then(|s| s.holder)
    }

    /// Number of spinning waiters on `lock`.
    pub fn waiter_count(&self, lock: LockId) -> usize {
        self.slots.get(&lock).map(|s| s.waiters.len()).unwrap_or(0)
    }

    /// Removes `tid` from a lock's waiter queue (e.g. thread killed).
    pub fn cancel_wait(&mut self, lock: LockId, tid: ThreadId) {
        if let Some(slot) = self.slots.get_mut(&lock) {
            slot.waiters.retain(|&w| w != tid);
        }
    }

    /// Total successful acquisitions (immediate + handed over).
    pub fn total_acquisitions(&self) -> u64 {
        self.acquisitions.get()
    }

    /// Total contended acquire attempts.
    pub fn total_contentions(&self) -> u64 {
        self.contentions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_release() {
        let mut t = LockTable::new();
        assert!(t.acquire(LockId(1), ThreadId(10)));
        assert_eq!(t.holder(LockId(1)), Some(ThreadId(10)));
        assert_eq!(t.release(LockId(1), ThreadId(10)), None);
        assert_eq!(t.holder(LockId(1)), None);
        assert_eq!(t.total_acquisitions(), 1);
        assert_eq!(t.total_contentions(), 0);
    }

    #[test]
    fn contended_fifo_handover() {
        let mut t = LockTable::new();
        assert!(t.acquire(LockId(1), ThreadId(1)));
        assert!(!t.acquire(LockId(1), ThreadId(2)));
        assert!(!t.acquire(LockId(1), ThreadId(3)));
        assert_eq!(t.waiter_count(LockId(1)), 2);
        assert_eq!(t.release(LockId(1), ThreadId(1)), Some(ThreadId(2)));
        assert_eq!(t.holder(LockId(1)), Some(ThreadId(2)));
        assert_eq!(t.release(LockId(1), ThreadId(2)), Some(ThreadId(3)));
        assert_eq!(t.release(LockId(1), ThreadId(3)), None);
        assert_eq!(t.total_contentions(), 2);
        assert_eq!(t.total_acquisitions(), 3);
    }

    #[test]
    fn duplicate_wait_not_queued_twice() {
        let mut t = LockTable::new();
        t.acquire(LockId(1), ThreadId(1));
        t.acquire(LockId(1), ThreadId(2));
        t.acquire(LockId(1), ThreadId(2));
        assert_eq!(t.waiter_count(LockId(1)), 1);
    }

    #[test]
    fn cancel_wait_removes() {
        let mut t = LockTable::new();
        t.acquire(LockId(1), ThreadId(1));
        t.acquire(LockId(1), ThreadId(2));
        t.cancel_wait(LockId(1), ThreadId(2));
        assert_eq!(t.waiter_count(LockId(1)), 0);
        assert_eq!(t.release(LockId(1), ThreadId(1)), None);
    }

    #[test]
    #[should_panic(expected = "released")]
    fn release_by_non_holder_panics() {
        let mut t = LockTable::new();
        t.acquire(LockId(1), ThreadId(1));
        t.release(LockId(1), ThreadId(2));
    }

    #[test]
    fn independent_locks() {
        let mut t = LockTable::new();
        assert!(t.acquire(LockId(1), ThreadId(1)));
        assert!(t.acquire(LockId(2), ThreadId(2)));
        assert_eq!(t.holder(LockId(1)), Some(ThreadId(1)));
        assert_eq!(t.holder(LockId(2)), Some(ThreadId(2)));
    }
}
